#!/usr/bin/env python3
"""CI smoke test for `sqlts serve`.

Drives a release-build server over real sockets: three concurrent
subscriptions share one 10k-tuple feed, one client is killed mid-stream
and resumes from its checkpoint on a fresh connection, and every
subscription's final result must be byte-identical to the batch run over
the same tuples.  Also scrapes /metrics and sanity-checks the exposition.

The server runs fully armed (--log span log, --sample-profile sampling
profiler), so the byte-identical assertions double as proof that
observability never perturbs results.  After a graceful SIGTERM drain
the smoke validates the artifacts: the span log is balanced JSONL,
GET /status parses as JSON, the profiler's collapsed stacks are
well-formed, and `sqlts trace-agg` folds the span log into a cost tree.

Usage: python3 ci/server_smoke.py target/release/sqlts
"""

import json
import signal
import socket
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

QUERY = (
    "SELECT X.name, Z.day AS day FROM quote "
    "CLUSTER BY name SEQUENCE BY day AS (X, *Y, Z) "
    "WHERE Y.price > Y.previous.price AND Z.price < Z.previous.price"
)
# Eight standing queries with a common predicate prefix and a
# member-specific tail — the shared-matcher phase subscribes all of them
# on one channel and expects one shared pass over the feed.
SHARED_QUERIES = [
    "SELECT X.name, Z.day AS day FROM quote "
    "CLUSTER BY name SEQUENCE BY day AS (X, Y, Z) "
    f"WHERE X.price > 95 AND Y.price > 90 AND Z.price < {100 + i}"
    for i in range(8)
]
SCHEMA = "name:str,day:int,price:float"
NAMES = ["AAA", "BBB", "CCC", "DDD", "EEE"]
DAYS = 2000  # 5 names x 2000 days = 10k tuples


def workload():
    rows = []
    for day in range(DAYS):
        for i, name in enumerate(NAMES):
            price = 100 + ((day + i) % 7) * 3 - ((day + i) % 3) * 5
            rows.append(f"{name},{day},{price}")
    return rows


class Client:
    """One framed-protocol connection (frame = len SP payload LF)."""

    def __init__(self, addr):
        host, port = addr.rsplit(":", 1)
        self.sock = socket.create_connection((host, int(port)), timeout=60)
        self.buf = b""

    def _exact(self, n):
        while len(self.buf) < n:
            chunk = self.sock.recv(65536)
            assert chunk, "server closed the connection"
            self.buf += chunk
        out, self.buf = self.buf[:n], self.buf[n:]
        return out

    def recv(self):
        head = b""
        while not head.endswith(b" "):
            head += self._exact(1)
        n = int(head[:-1])
        payload = self._exact(n)
        assert self._exact(1) == b"\n", "frame check byte"
        return payload.decode()

    def send(self, payload):
        data = payload.encode()
        self.sock.sendall(str(len(data)).encode() + b" " + data + b"\n")
        return self.recv()

    def kill(self):
        self.sock.close()


def expect(reply, prefix):
    assert reply.startswith(prefix), f"expected {prefix!r}, got {reply!r}"
    return reply


def result_body(reply, sub, code):
    head, _, body = reply.partition("\n")
    assert head.startswith(f"RESULT {sub} {code} "), f"bad result head: {head!r}"
    return body


def check_collapsed(text, what):
    """Every line must be `frame;frame count` with a numeric count."""
    lines = text.splitlines()
    assert lines, f"{what} is empty"
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert ";" in stack and " " not in stack, f"bad {what} stack: {line!r}"
        assert count.isdigit(), f"bad {what} count: {line!r}"
    return lines


def check_span_log(path):
    """The span log must be valid JSONL with balanced begin/end spans."""
    begins, ends, names = 0, 0, set()
    for line in path.read_text().splitlines():
        rec = json.loads(line)  # raises on torn/invalid lines
        assert isinstance(rec, dict) and "ts" in rec and "k" in rec, rec
        names.add(rec["name"])
        if rec["k"] == "b":
            begins += 1
        elif rec["k"] == "e":
            ends += 1
    assert begins == ends > 0, f"unbalanced spans: {begins} begins, {ends} ends"
    for name in ["accept", "dispatch", "fanout", "drain"]:
        assert name in names, f"span log never recorded {name!r}: {sorted(names)}"
    return begins


def metric(text, name):
    """The value of a single unlabelled metric line in an exposition."""
    for line in text.splitlines():
        if line.startswith(name + " "):
            return int(line.rsplit(" ", 1)[1])
    raise AssertionError(f"missing {name} in scrape")


def shared_matcher_phase(bin_path, rows):
    """8 prefix-sharing subscriptions on one channel, one shared pass.

    Every subscription's result must be byte-identical to its batch run,
    and /metrics must show cross-query sharing: tests_shared > 0 with
    the physically evaluated total strictly below the 8-query logical
    sum (which equals what 8 solo passes would have cost).
    """
    batches = [
        subprocess.run([bin_path, "--csv", "smoke.csv", "--schema", SCHEMA, q],
                       capture_output=True, text=True, check=True).stdout
        for q in SHARED_QUERIES
    ]
    assert all(b.count("\n") > 1 for b in batches), "shared family found no matches"

    server = subprocess.Popen(
        [bin_path, "serve", "--listen", "127.0.0.1:0", "--shared-matcher", "on"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        announce = server.stdout.readline().strip()
        assert announce.startswith("listening on "), announce
        addr = announce.removeprefix("listening on ")

        conn = Client(addr)
        expect(conn.send(f"OPEN quote {SCHEMA}"), "OK opened quote")
        for i, q in enumerate(SHARED_QUERIES):
            expect(conn.send(f"SUBSCRIBE p{i} quote\n{q}"), f"OK subscribed p{i}")
        for start in range(0, len(rows), 500):
            chunk = rows[start:start + 500]
            expect(conn.send("FEED quote\n" + "\n".join(chunk)),
                   f"OK fed {len(chunk)} subs=8")

        # Scrape while the subscriptions are live: the logical total is
        # summed over live sessions, the savings over the channel registry.
        with urllib.request.urlopen(f"http://{addr}/metrics", timeout=60) as r:
            metrics = r.read().decode()
        logical = metric(metrics, "sqlts_patternset_tests_logical")
        evaluated = metric(metrics, "sqlts_patternset_tests_evaluated")
        saved = metric(metrics, "sqlts_patternset_tests_saved")
        shared = metric(metrics, "sqlts_patternset_tests_shared")
        assert metric(metrics, "sqlts_patternset_queries") == 8, metrics
        assert shared > 0, "no cross-query sharing recorded"
        assert evaluated + saved == logical, f"{evaluated}+{saved} != {logical}"
        assert evaluated < logical, (
            f"shared pass saved nothing: evaluated {evaluated} of {logical}"
        )

        for i, batch in enumerate(batches):
            body = result_body(conn.send(f"UNSUBSCRIBE p{i}"), f"p{i}", 0)
            assert body == batch, (
                f"p{i} diverged from batch under --shared-matcher: "
                f"{len(body.splitlines())} vs {len(batch.splitlines())} lines"
            )
        conn.kill()
        server.send_signal(signal.SIGTERM)
        assert server.wait(timeout=60) == 0, "shared server must drain to exit 0"
        return logical, evaluated, shared
    finally:
        server.kill()
        server.wait()


def main():
    bin_path = sys.argv[1]
    rows = workload()

    # Batch reference.
    with open("smoke.csv", "w") as f:
        f.write("name,day,price\n")
        f.write("\n".join(rows) + "\n")
    batch = subprocess.run(
        [bin_path, "--csv", "smoke.csv", "--schema", SCHEMA, QUERY],
        capture_output=True, text=True, check=True,
    ).stdout
    assert batch.count("\n") > 1, "batch produced no matches"

    art = Path(tempfile.mkdtemp(prefix="sqlts-smoke-"))
    span_log = art / "server.log.jsonl"
    profile = art / "profile.folded"
    server = subprocess.Popen(
        [bin_path, "serve", "--listen", "127.0.0.1:0",
         "--log", str(span_log), "--log-level", "debug",
         "--sample-profile", str(profile), "--sample-hz", "200"],
        stdout=subprocess.PIPE, text=True,
    )
    try:
        announce = server.stdout.readline().strip()
        assert announce.startswith("listening on "), announce
        addr = announce.removeprefix("listening on ")

        main_conn = Client(addr)
        doomed = Client(addr)
        expect(main_conn.send("PING"), "OK pong")
        expect(main_conn.send(f"OPEN quote {SCHEMA}"), "OK opened quote")
        expect(main_conn.send(f"SUBSCRIBE s1 quote\n{QUERY}"), "OK subscribed s1")
        expect(main_conn.send(f"SUBSCRIBE s3 quote\n{QUERY}"), "OK subscribed s3")
        expect(doomed.send(f"SUBSCRIBE s2 quote\n{QUERY}"), "OK subscribed s2")

        chunks = [rows[i:i + 500] for i in range(0, len(rows), 500)]
        half = len(chunks) // 2
        for chunk in chunks[:half]:
            expect(main_conn.send("FEED quote\n" + "\n".join(chunk)),
                   f"OK fed {len(chunk)} subs=3")

        # Checkpoint s2, then kill its connection without so much as a
        # goodbye; the server reaps it while the feed keeps flowing.
        cp = doomed.send("CHECKPOINT s2")
        assert cp.startswith("CHECKPOINT s2\nsqlts-checkpoint v1\n"), cp[:80]
        checkpoint = cp.partition("\n")[2]
        doomed.kill()

        resumer = Client(addr)
        expect(resumer.send(f"RESUME s2r quote\n{QUERY}\n{checkpoint}"),
               "OK resumed s2r")
        for chunk in chunks[half:]:
            expect(main_conn.send("FEED quote\n" + "\n".join(chunk)),
                   f"OK fed {len(chunk)} subs=3")

        with urllib.request.urlopen(f"http://{addr}/metrics", timeout=60) as r:
            metrics = r.read().decode()
        for needle in ["sqlts_server_connections_total",
                       'sqlts_sub_records{tenant="s1"}',
                       'sqlts_sub_tripped{tenant="s2r"} 0']:
            assert needle in metrics, f"missing {needle} in scrape"

        with urllib.request.urlopen(f"http://{addr}/status", timeout=60) as r:
            status = json.loads(r.read().decode())
        assert status["draining"] is False, status
        live = {sub["id"] for sub in status["subscriptions"]}
        assert {"s1", "s3", "s2r"} <= live, f"/status missing tenants: {live}"

        for conn, sub in [(main_conn, "s1"), (main_conn, "s3"), (resumer, "s2r")]:
            body = result_body(conn.send(f"UNSUBSCRIBE {sub}"), sub, 0)
            assert body == batch, (
                f"{sub} diverged from batch: "
                f"{len(body.splitlines())} vs {len(batch.splitlines())} lines"
            )
        main_conn.kill()
        resumer.kill()

        # Graceful drain flushes the span log and the profiler output.
        server.send_signal(signal.SIGTERM)
        assert server.wait(timeout=60) == 0, "drained server must exit 0"

        spans = check_span_log(span_log)
        check_collapsed(profile.read_text(), "profiler")

        agg = subprocess.run(
            [bin_path, "trace-agg", str(span_log),
             "--collapsed", str(art / "spans.folded")],
            capture_output=True, text=True, check=True,
        )
        assert agg.stdout.startswith("span log:"), agg.stdout[:80]
        assert "dispatch" in agg.stdout, agg.stdout
        check_collapsed((art / "spans.folded").read_text(), "trace-agg")

        print(f"server smoke OK: 3 subscriptions x {len(rows)} tuples, "
              f"{batch.count(chr(10)) - 1} matches each, kill+resume "
              f"byte-identical while armed; {spans} spans logged, "
              f"profiler and trace-agg stacks well-formed")
    finally:
        server.kill()
        server.wait()

    logical, evaluated, shared = shared_matcher_phase(bin_path, rows)
    print(f"shared-matcher smoke OK: 8 subscriptions byte-identical to "
          f"batch; {evaluated} of {logical} logical tests evaluated "
          f"({shared} answered across queries)")


if __name__ == "__main__":
    main()
