#!/usr/bin/env python3
"""CI crash-safety smoke test for `sqlts serve --data-dir`.

Drives a release-build server through the full durability story over
real sockets and real signals:

  phase 1  feed part of a 10k-tuple stream, then SIGKILL the server with
           a FEED in flight;
  phase 2  restart on the same --data-dir, confirm recovery re-opened
           the channel and respawned the subscription, resume feeding
           from the durable row count OPEN reports, and require the
           final result to be byte-identical to the batch run;
  phase 3  SIGTERM the server mid-stream and require a graceful drain:
           exit code 0, a parting ERR on the live connection, the LOCK
           released, and a restart that recovers the drained
           subscription and still finishes byte-identical.

Usage: python3 ci/crash_smoke.py target/release/sqlts
"""

import os
import shutil
import signal
import socket
import subprocess
import sys
import time
import urllib.request

QUERY = (
    "SELECT X.name, Z.day AS day FROM quote "
    "CLUSTER BY name SEQUENCE BY day AS (X, *Y, Z) "
    "WHERE Y.price > Y.previous.price AND Z.price < Z.previous.price"
)
SCHEMA = "name:str,day:int,price:float"
NAMES = ["AAA", "BBB", "CCC", "DDD", "EEE"]
DAYS = 2000  # 5 names x 2000 days = 10k tuples
DATA_DIR = "crash-smoke-data"


def workload():
    rows = []
    for day in range(DAYS):
        for i, name in enumerate(NAMES):
            price = 100 + ((day + i) % 7) * 3 - ((day + i) % 3) * 5
            rows.append(f"{name},{day},{price}")
    return rows


class Client:
    """One framed-protocol connection (frame = len SP payload LF)."""

    def __init__(self, addr):
        host, port = addr.rsplit(":", 1)
        self.sock = socket.create_connection((host, int(port)), timeout=60)
        self.buf = b""

    def _exact(self, n):
        while len(self.buf) < n:
            chunk = self.sock.recv(65536)
            assert chunk, "server closed the connection"
            self.buf += chunk
        out, self.buf = self.buf[:n], self.buf[n:]
        return out

    def recv(self):
        head = b""
        while not head.endswith(b" "):
            head += self._exact(1)
        n = int(head[:-1])
        payload = self._exact(n)
        assert self._exact(1) == b"\n", "frame check byte"
        return payload.decode()

    def send(self, payload):
        self.send_only(payload)
        return self.recv()

    def send_only(self, payload):
        data = payload.encode()
        self.sock.sendall(str(len(data)).encode() + b" " + data + b"\n")


def expect(reply, prefix):
    assert reply.startswith(prefix), f"expected {prefix!r}, got {reply!r}"
    return reply


def result_body(reply, sub, code):
    head, _, body = reply.partition("\n")
    assert head.startswith(f"RESULT {sub} {code} "), f"bad result head: {head!r}"
    return body


def spawn(bin_path, data_dir=DATA_DIR, extra=()):
    """Start a durable server and return (process, addr, recovery line).

    Skips informational startup lines (standby/replication banners)
    between the recovery report and the listen announcement.
    """
    server = subprocess.Popen(
        [bin_path, "serve", "--listen", "127.0.0.1:0", "--data-dir", data_dir,
         "--checkpoint-every-frames", "4", *extra],
        stdout=subprocess.PIPE, text=True,
    )
    recovered = server.stdout.readline().strip()
    assert recovered.startswith("recovered "), recovered
    announce = server.stdout.readline().strip()
    while not announce.startswith("listening on "):
        announce = server.stdout.readline().strip()
        assert announce, "server exited before announcing its address"
    return server, announce.removeprefix("listening on "), recovered


def scrape(addr):
    with urllib.request.urlopen(f"http://{addr}/metrics", timeout=60) as r:
        return r.read().decode()


def metric(exposition, name):
    for line in exposition.splitlines():
        if line.startswith(name + " "):
            return int(float(line.split()[1]))
    raise AssertionError(f"missing {name} in scrape")


def main():
    bin_path = sys.argv[1]
    rows = workload()
    chunks = [rows[i:i + 500] for i in range(0, len(rows), 500)]
    shutil.rmtree(DATA_DIR, ignore_errors=True)

    # Batch reference.
    with open("crash-smoke.csv", "w") as f:
        f.write("name,day,price\n")
        f.write("\n".join(rows) + "\n")
    batch = subprocess.run(
        [bin_path, "--csv", "crash-smoke.csv", "--schema", SCHEMA, QUERY],
        capture_output=True, text=True, check=True,
    ).stdout
    assert batch.count("\n") > 1, "batch produced no matches"

    # Phase 1: feed part of the stream, then SIGKILL with a FEED in
    # flight — the kill can land anywhere inside the append/fan-out path.
    server, addr, recovered = spawn(bin_path)
    expect(recovered, "recovered 0 channel(s), 0 subscription(s)")
    client = Client(addr)
    expect(client.send(f"OPEN quote {SCHEMA}"), "OK opened quote rows=0")
    expect(client.send(f"SUBSCRIBE s1 quote\n{QUERY}"), "OK subscribed s1")
    for chunk in chunks[:6]:
        expect(client.send("FEED quote\n" + "\n".join(chunk)),
               f"OK fed {len(chunk)} subs=1")
    acknowledged = 6 * 500
    client.send_only("FEED quote\n" + "\n".join(chunks[6]))
    server.kill()
    server.wait()
    assert os.path.exists(os.path.join(DATA_DIR, "LOCK")), \
        "SIGKILL leaves the LOCK behind"

    # Phase 2: restart, recover, resume feeding from the durable count.
    server, addr, recovered = spawn(bin_path)
    try:
        expect(recovered, "recovered 1 channel(s), 1 subscription(s)")
        client = Client(addr)
        reply = expect(client.send(f"OPEN quote {SCHEMA}"), "OK opened quote rows=")
        durable = int(reply.rpartition("=")[2])
        assert acknowledged <= durable <= len(rows), \
            f"durable count {durable} lost acknowledged rows ({acknowledged})"
        if durable < len(rows):
            expect(client.send("FEED quote\n" + "\n".join(rows[durable:])),
                   "OK fed ")
        with urllib.request.urlopen(f"http://{addr}/metrics", timeout=60) as r:
            metrics = r.read().decode()
        for needle in ["sqlts_server_recovered_subscriptions_total 1",
                       "sqlts_server_wal_appends_total"]:
            assert needle in metrics, f"missing {needle} in scrape"
        body = result_body(client.send("UNSUBSCRIBE s1"), "s1", 0)
        assert body == batch, (
            f"recovered subscription diverged from batch: "
            f"{len(body.splitlines())} vs {len(batch.splitlines())} lines"
        )
    finally:
        server.kill()
        server.wait()

    # Phase 3: graceful drain under SIGTERM, then recover the drained
    # subscription and finish the stream byte-identically.
    shutil.rmtree(DATA_DIR)
    server, addr, _ = spawn(bin_path)
    client = Client(addr)
    expect(client.send(f"OPEN quote {SCHEMA}"), "OK opened quote rows=0")
    expect(client.send(f"SUBSCRIBE s1 quote\n{QUERY}"), "OK subscribed s1")
    half = len(chunks) // 2
    for chunk in chunks[:half]:
        expect(client.send("FEED quote\n" + "\n".join(chunk)),
               f"OK fed {len(chunk)} subs=1")
    server.send_signal(signal.SIGTERM)
    assert server.wait(timeout=60) == 0, "drain must exit 0"
    expect(client.recv(), "ERR 4 server draining")
    rest = server.stdout.read()
    assert "drained" in rest, f"missing drain announcement: {rest!r}"
    assert not os.path.exists(os.path.join(DATA_DIR, "LOCK")), \
        "drain must release the LOCK"

    server, addr, recovered = spawn(bin_path)
    try:
        expect(recovered, "recovered 1 channel(s), 1 subscription(s)")
        client = Client(addr)
        reply = expect(client.send(f"OPEN quote {SCHEMA}"), "OK opened quote rows=")
        durable = int(reply.rpartition("=")[2])
        assert durable == half * 500, \
            f"drain must persist every acknowledged row, got {durable}"
        expect(client.send("FEED quote\n" + "\n".join(rows[durable:])), "OK fed ")
        body = result_body(client.send("UNSUBSCRIBE s1"), "s1", 0)
        assert body == batch, "post-drain recovery diverged from batch"
    finally:
        server.kill()
        server.wait()

    # Phase 4: replication failover.  A primary streams its WAL to a warm
    # standby with sync acks; SIGKILL the primary with a FEED in flight,
    # promote the standby via SIGUSR1 (the CLI relay), and require the
    # promoted server to finish the stream byte-identical to batch.
    standby_dir = DATA_DIR + "-standby"
    shutil.rmtree(DATA_DIR, ignore_errors=True)
    shutil.rmtree(standby_dir, ignore_errors=True)
    standby, standby_addr, _ = spawn(bin_path, data_dir=standby_dir,
                                     extra=["--standby"])
    try:
        server, addr, _ = spawn(
            bin_path, extra=["--replicate-to", standby_addr,
                             "--repl-ack", "sync"])
        client = Client(addr)
        expect(client.send(f"OPEN quote {SCHEMA}"), "OK opened quote rows=0")
        expect(client.send(f"SUBSCRIBE s1 quote\n{QUERY}"), "OK subscribed s1")
        for chunk in chunks[:10]:
            expect(client.send("FEED quote\n" + "\n".join(chunk)),
                   f"OK fed {len(chunk)} subs=1")
        acked = 10 * 500

        # The primary's exposition shows a connected, caught-up stream;
        # the standby's shows the frames landing.
        prom = scrape(addr)
        assert metric(prom, "sqlts_repl_connected") == 1, prom
        assert metric(prom, "sqlts_repl_lag_rows") == 0, prom
        assert metric(prom, "sqlts_repl_frames_sent_total") >= 10, prom
        assert metric(prom, "sqlts_repl_acks_total") >= 10, prom
        sprom = scrape(standby_addr)
        assert metric(sprom, "sqlts_standby") == 1, sprom
        assert metric(sprom, "sqlts_repl_frames_received_total") >= 10, sprom

        # SIGKILL the primary with a FEED in flight, then promote.
        client.send_only("FEED quote\n" + "\n".join(chunks[10]))
        server.kill()
        server.wait()
        standby.send_signal(signal.SIGUSR1)
        sclient = Client(standby_addr)
        for _ in range(300):
            reply = sclient.send(f"OPEN quote {SCHEMA}")
            if reply.startswith("OK opened quote rows="):
                break
            assert reply.startswith("ERR 4 "), reply
            time.sleep(0.1)
        else:
            raise AssertionError("standby never promoted after SIGUSR1")
        durable = int(reply.rpartition("=")[2])
        assert acked <= durable <= acked + 500 and durable % 500 == 0, \
            f"promoted standby lost sync-acked rows: {durable}"
        sprom = scrape(standby_addr)
        assert metric(sprom, "sqlts_standby") == 0, sprom
        assert metric(sprom, "sqlts_repl_promotions_total") == 1, sprom
        if durable < len(rows):
            expect(sclient.send("FEED quote\n" + "\n".join(rows[durable:])),
                   "OK fed ")
        body = result_body(sclient.send("UNSUBSCRIBE s1"), "s1", 0)
        assert body == batch, "promoted standby diverged from batch"
    finally:
        standby.kill()
        standby.wait()
        try:
            server.kill()
            server.wait()
        except OSError:
            pass
    shutil.rmtree(standby_dir, ignore_errors=True)

    print(f"crash smoke OK: SIGKILL mid-feed, SIGTERM drain, and "
          f"replication failover all recovered byte-identical results "
          f"over {len(rows)} tuples ({batch.count(chr(10)) - 1} matches)")


if __name__ == "__main__":
    main()
