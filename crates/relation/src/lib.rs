#![warn(missing_docs)]

//! A minimal in-memory relational substrate for SQL-TS.
//!
//! The paper (§2) views *sorted relations as sequences*: rows are grouped
//! by the `CLUSTER BY` attributes (each group processed as a separate
//! stream) and ordered within each group by the `SEQUENCE BY` attributes.
//! This crate provides exactly the storage and partitioning machinery that
//! view needs — nothing more:
//!
//! * [`Value`], [`ColumnType`] — a small dynamic value model (integers,
//!   floats, strings, dates, null);
//! * [`Date`] — a proleptic-Gregorian calendar date stored as a day number,
//!   so `SEQUENCE BY date` is a plain integer sort;
//! * [`Schema`], [`Table`] — row-oriented tables with schema validation;
//! * CSV import/export (the DJIA workloads and the examples ship as CSV);
//! * [`Table::cluster_by`] — the `CLUSTER BY` + `SEQUENCE BY` pipeline,
//!   producing [`Cluster`] views whose row order is the stream order the
//!   pattern engines consume.

mod csv;
mod date;
#[cfg(feature = "failpoints")]
pub mod failpoints;
mod table;
mod value;

pub use csv::{parse_headerless_row, CsvError, CsvRecords};
pub use date::Date;
pub use table::{Cluster, Column, Schema, Table, TableError};
pub use value::{ColumnType, Value};
