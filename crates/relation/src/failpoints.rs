//! Deterministic fault injection (compiled only with
//! `--features failpoints`).
//!
//! A *failpoint* is a named site in production code —
//! `failpoints::hit("executor::cluster", idx)` — that normally costs one
//! mutex-guarded map lookup and does nothing.  Robustness tests
//! [`configure`] the registry to make a specific site misbehave in a
//! specific, reproducible way:
//!
//! * [`FailAction::Panic`] — panic with a recognizable message (exercises
//!   the executor's per-cluster panic isolation);
//! * [`FailAction::DelayMs`] — sleep, to force deadline trips at a chosen
//!   point rather than by racing the clock;
//! * [`FailAction::InjectError`] — ask the site to surface its own error
//!   type ([`hit`] returns [`Injected::InjectError`]; the site decides what
//!   that means — the CSV reader turns it into a parse error);
//! * [`FailAction::ExhaustBudget`] — ask the site to behave as if a
//!   resource budget just ran out (the governor trips its step budget).
//!
//! Determinism comes from *triggers*, not randomness: a rule fires when
//! the site's hit counter reaches `on_hit` (1-based) and, optionally, only
//! when the site's `detail` argument matches — e.g. "panic on cluster 2"
//! is `detail: Some(2)`.  The registry is process-global, so tests that
//! use it must serialize (share one `Mutex`) and [`reset`] when done.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What a triggered failpoint does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Panic inside [`hit`] with a message naming the site.
    Panic,
    /// Sleep for the given number of milliseconds inside [`hit`].
    DelayMs(u64),
    /// Return [`Injected::InjectError`]; the site maps it to its own error.
    InjectError,
    /// Return [`Injected::ExhaustBudget`]; the site treats a budget as
    /// spent.
    ExhaustBudget,
}

/// What [`hit`] reports back to the site when a rule fired and its effect
/// is the *site's* responsibility (Panic and DelayMs are handled inside
/// [`hit`] itself and reported only for completeness).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injected {
    /// The site should surface its own error type.
    InjectError,
    /// The site should behave as if a resource budget ran out.
    ExhaustBudget,
    /// A delay was already performed inside [`hit`].
    Delayed,
}

/// One armed rule at one site.
#[derive(Clone, Debug)]
struct Rule {
    action: FailAction,
    /// Fire on the n-th hit of the site (1-based; 1 = first hit).
    on_hit: u64,
    /// Only fire when the site's `detail` argument equals this.
    detail: Option<u64>,
    /// Fire at most once (`true`) or on every hit from `on_hit` on
    /// (`false`).
    once: bool,
    /// Set once a `once` rule has fired.
    spent: bool,
}

#[derive(Default)]
struct Registry {
    rules: HashMap<&'static str, Vec<Rule>>,
    hits: HashMap<&'static str, u64>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Arm `site` with `action`, firing every time the site is hit (any
/// `detail`).  Sugar for [`configure_rule`] with `on_hit = 1`,
/// `detail = None`, `once = false`.
pub fn configure(site: &'static str, action: FailAction) {
    configure_rule(site, action, 1, None, false);
}

/// Arm `site` with `action`, firing from the `on_hit`-th hit (1-based)
/// on — or exactly once if `once` — and only for hits whose `detail`
/// matches (when `Some`).  Multiple rules on one site are evaluated in
/// configuration order; the first that fires wins for that hit.
pub fn configure_rule(
    site: &'static str,
    action: FailAction,
    on_hit: u64,
    detail: Option<u64>,
    once: bool,
) {
    let mut reg = registry().lock().expect("failpoint registry");
    reg.rules.entry(site).or_default().push(Rule {
        action,
        on_hit,
        detail,
        once,
        spent: false,
    });
}

/// Disarm every site and zero every hit counter.  Tests call this in a
/// guard/teardown so one test's rules never leak into the next.
pub fn reset() {
    let mut reg = registry().lock().expect("failpoint registry");
    reg.rules.clear();
    reg.hits.clear();
}

/// How many times `site` has been hit since the last [`reset`].
pub fn hit_count(site: &str) -> u64 {
    let reg = registry().lock().expect("failpoint registry");
    reg.hits.get(site).copied().unwrap_or(0)
}

/// The instrumentation call production code places at a named site.
///
/// `detail` is a site-specific discriminator (cluster index, record
/// number, consumed-step total, …) that rules can match on.  Returns
/// `None` when no rule fired.  `Panic` fires here (so the panic
/// originates at the site); `DelayMs` sleeps here and returns
/// [`Injected::Delayed`]; the other actions are returned for the site to
/// interpret.  The registry lock is released before panicking or
/// sleeping.
pub fn hit(site: &'static str, detail: u64) -> Option<Injected> {
    let fired = {
        let mut reg = registry().lock().expect("failpoint registry");
        let count = reg.hits.entry(site).or_insert(0);
        *count += 1;
        let count = *count;
        let rules = reg.rules.get_mut(site)?;
        let rule = rules.iter_mut().find(|r| {
            !r.spent
                && count >= r.on_hit
                && (r.on_hit == count || !r.once)
                && r.detail.map_or(true, |d| d == detail)
        })?;
        if rule.once {
            rule.spent = true;
        }
        rule.action
    };
    match fired {
        FailAction::Panic => panic!("failpoint '{site}' injected panic (detail {detail})"),
        FailAction::DelayMs(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Some(Injected::Delayed)
        }
        FailAction::InjectError => Some(Injected::InjectError),
        FailAction::ExhaustBudget => Some(Injected::ExhaustBudget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The registry is process-global; every test takes this lock and
    // resets on entry and exit.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        guard
    }

    #[test]
    fn unarmed_site_is_a_noop() {
        let _guard = serial();
        assert_eq!(hit("tests::noop", 0), None);
        assert_eq!(hit_count("tests::noop"), 1);
        reset();
        assert_eq!(hit_count("tests::noop"), 0);
    }

    #[test]
    fn inject_error_fires_every_time() {
        let _guard = serial();
        configure("tests::err", FailAction::InjectError);
        assert_eq!(hit("tests::err", 0), Some(Injected::InjectError));
        assert_eq!(hit("tests::err", 1), Some(Injected::InjectError));
        reset();
        assert_eq!(hit("tests::err", 2), None);
    }

    #[test]
    fn detail_and_on_hit_select_the_trigger() {
        let _guard = serial();
        configure_rule("tests::sel", FailAction::ExhaustBudget, 2, Some(7), false);
        assert_eq!(hit("tests::sel", 7), None, "hit 1 < on_hit");
        assert_eq!(hit("tests::sel", 3), None, "detail mismatch");
        assert_eq!(hit("tests::sel", 7), Some(Injected::ExhaustBudget));
        reset();
    }

    #[test]
    fn once_rules_fire_exactly_once() {
        let _guard = serial();
        configure_rule("tests::once", FailAction::InjectError, 1, None, true);
        assert_eq!(hit("tests::once", 0), Some(Injected::InjectError));
        assert_eq!(hit("tests::once", 0), None);
        reset();
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _guard = serial();
        configure("tests::boom", FailAction::Panic);
        let err = std::panic::catch_unwind(|| hit("tests::boom", 42)).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("tests::boom"), "{msg}");
        assert!(msg.contains("42"), "{msg}");
        reset();
    }

    #[test]
    fn delay_action_sleeps_inline() {
        let _guard = serial();
        configure("tests::slow", FailAction::DelayMs(5));
        let t0 = std::time::Instant::now();
        assert_eq!(hit("tests::slow", 0), Some(Injected::Delayed));
        assert!(t0.elapsed() >= Duration::from_millis(5));
        reset();
    }
}
