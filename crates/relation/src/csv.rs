//! CSV import/export for [`Table`].
//!
//! A deliberately small dialect: comma-separated, one header line, optional
//! double-quoting with `""` escapes.  This is all the workload files and
//! examples need; it is not a general-purpose CSV library.

use crate::table::{Schema, Table, TableError};
use crate::value::{ColumnType, Value};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Errors raised by CSV import.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A header column is missing from the file.
    MissingColumn(String),
    /// A cell failed to parse as its column's type.
    Parse {
        /// 1-based line number in the file.
        line: usize,
        /// Column name.
        column: String,
        /// Offending cell text.
        value: String,
        /// The type it should have parsed as.
        expected: ColumnType,
    },
    /// A data line has the wrong number of fields.
    Arity {
        /// 1-based line number in the file.
        line: usize,
        /// Header field count.
        expected: usize,
        /// Fields found on the line.
        got: usize,
    },
    /// A line is not valid UTF-8.
    Utf8 {
        /// 1-based line number in the file.
        line: usize,
    },
    /// Schema/row validation failure.
    Table(TableError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::MissingColumn(c) => write!(f, "CSV header is missing column {c:?}"),
            CsvError::Parse {
                line,
                column,
                value,
                expected,
            } => write!(
                f,
                "line {line}: cannot parse {value:?} as {expected} for column {column:?}"
            ),
            CsvError::Arity {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected} fields, found {got}"),
            CsvError::Utf8 { line } => write!(f, "line {line}: input is not valid UTF-8"),
            CsvError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> CsvError {
        CsvError::Io(e)
    }
}

impl From<TableError> for CsvError {
    fn from(e: TableError) -> CsvError {
        CsvError::Table(e)
    }
}

/// Split one CSV line into fields, honouring double quotes.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

fn quote_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn parse_cell(raw: &str, ty: ColumnType, line: usize, column: &str) -> Result<Value, CsvError> {
    let raw = raw.trim();
    if raw.is_empty() || raw.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    let err = || CsvError::Parse {
        line,
        column: column.to_string(),
        value: raw.to_string(),
        expected: ty,
    };
    match ty {
        ColumnType::Int => raw.parse::<i64>().map(Value::Int).map_err(|_| err()),
        ColumnType::Float => {
            let v: f64 = raw.parse().map_err(|_| err())?;
            if v.is_nan() {
                Err(err())
            } else {
                Ok(Value::Float(v))
            }
        }
        ColumnType::Str => Ok(Value::Str(raw.to_string())),
        ColumnType::Date => raw.parse().map(Value::Date).map_err(|_| err()),
    }
}

/// Read one `\n`-terminated line as UTF-8.  Reading bytes first (instead of
/// `BufRead::lines`) lets a non-UTF-8 byte be reported with the line it sits
/// on rather than as an opaque I/O error.
fn read_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    line: usize,
) -> Result<Option<String>, CsvError> {
    buf.clear();
    if reader.read_until(b'\n', buf)? == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    match std::str::from_utf8(buf) {
        Ok(s) => Ok(Some(s.to_string())),
        Err(_) => Err(CsvError::Utf8 { line }),
    }
}

/// Parse one headerless CSV line into a typed row, fields in schema
/// column order (identity mapping).  Network feeds use this: the sender
/// declares the schema once when opening a channel and then ships bare
/// rows, so there is no header line to map through.  Shares the dialect
/// (quoting, `null`/empty cells, trailing `\r`) and error reporting of
/// [`CsvRecords`]; `line` is the 1-based number used in errors.  Extra
/// trailing fields are ignored, matching the header-driven reader.
pub fn parse_headerless_row(
    schema: &Schema,
    text: &str,
    line: usize,
) -> Result<Vec<Value>, CsvError> {
    let fields = split_line(text.trim_end_matches('\r'));
    if fields.len() < schema.arity() {
        return Err(CsvError::Arity {
            line,
            expected: schema.arity(),
            got: fields.len(),
        });
    }
    schema
        .columns()
        .iter()
        .enumerate()
        .map(|(i, col)| parse_cell(&fields[i], col.ty, line, &col.name))
        .collect()
}

/// An incremental CSV record source: parses the header eagerly, then
/// yields one typed row per data line.  The streaming (`--follow`)
/// counterpart of [`Table::from_csv`], sharing its dialect, header
/// mapping, and per-line error reporting — a bad record surfaces as an
/// `Err` item and iteration can continue past it, which is what a
/// quarantine policy needs.
pub struct CsvRecords<R: Read> {
    reader: BufReader<R>,
    schema: Schema,
    /// For each schema column, the index of the matching file field.
    mapping: Vec<usize>,
    header_arity: usize,
    lineno: usize,
    buf: Vec<u8>,
    /// Set when the header was absent (empty input): nothing to yield.
    done: bool,
}

impl<R: Read> CsvRecords<R> {
    /// Open a record source, reading and validating the header line.
    ///
    /// Columns are matched by (case-insensitive) header name, so the file's
    /// column order need not match the schema's; extra file columns are
    /// ignored.
    pub fn new(schema: Schema, reader: R) -> Result<CsvRecords<R>, CsvError> {
        let mut reader = BufReader::new(reader);
        let mut buf = Vec::new();
        let Some(header) = read_line(&mut reader, &mut buf, 1)? else {
            return Ok(CsvRecords {
                reader,
                schema,
                mapping: Vec::new(),
                header_arity: 0,
                lineno: 1,
                buf,
                done: true,
            });
        };
        let header_fields = split_line(header.trim_end_matches('\r'));
        let mut mapping = Vec::with_capacity(schema.arity());
        for col in schema.columns() {
            let idx = header_fields
                .iter()
                .position(|h| h.trim().eq_ignore_ascii_case(&col.name))
                .ok_or_else(|| CsvError::MissingColumn(col.name.clone()))?;
            mapping.push(idx);
        }
        Ok(CsvRecords {
            reader,
            schema,
            mapping,
            header_arity: header_fields.len(),
            lineno: 1,
            buf,
            done: false,
        })
    }

    /// The schema records are typed against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// 1-based line number of the most recently read line.
    pub fn line(&self) -> usize {
        self.lineno
    }

    fn parse_record(&mut self, line: &str) -> Result<Vec<Value>, CsvError> {
        let lineno = self.lineno;
        #[cfg(feature = "failpoints")]
        if matches!(
            crate::failpoints::hit("csv::record", lineno as u64),
            Some(crate::failpoints::Injected::InjectError)
        ) {
            return Err(CsvError::Io(io::Error::other(format!(
                "failpoint 'csv::record' injected error at line {lineno}"
            ))));
        }
        let fields = split_line(line);
        if fields.len() < self.header_arity {
            return Err(CsvError::Arity {
                line: lineno,
                expected: self.header_arity,
                got: fields.len(),
            });
        }
        self.mapping
            .iter()
            .zip(self.schema.columns().to_vec())
            .map(|(&fi, col)| parse_cell(&fields[fi], col.ty, lineno, &col.name))
            .collect()
    }
}

impl<R: Read> Iterator for CsvRecords<R> {
    type Item = Result<Vec<Value>, CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.lineno += 1;
            let line = match read_line(&mut self.reader, &mut self.buf, self.lineno) {
                Ok(Some(line)) => line,
                Ok(None) => {
                    self.done = true;
                    return None;
                }
                Err(e) => return Some(Err(e)),
            };
            let line = line.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            let line = line.to_string();
            return Some(self.parse_record(&line));
        }
    }
}

impl Table {
    /// Read a CSV with a header line into a table with the given schema.
    ///
    /// Columns are matched by (case-insensitive) header name, so the file's
    /// column order need not match the schema's; extra file columns are
    /// ignored.
    pub fn from_csv<R: Read>(schema: Schema, reader: R) -> Result<Table, CsvError> {
        let mut records = CsvRecords::new(schema, reader)?;
        let mut table = Table::new(records.schema().clone());
        for row in &mut records {
            table.push_row(row?)?;
        }
        Ok(table)
    }

    /// Parse a CSV from a string.
    pub fn from_csv_str(schema: Schema, data: &str) -> Result<Table, CsvError> {
        Table::from_csv(schema, data.as_bytes())
    }

    /// Read a CSV file from disk.
    pub fn from_csv_path(schema: Schema, path: &std::path::Path) -> Result<Table, CsvError> {
        Table::from_csv(schema, std::fs::File::open(path)?)
    }

    /// Write the table as CSV (header + rows).
    pub fn to_csv<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = io::BufWriter::new(writer);
        let header: Vec<String> = self
            .schema()
            .columns()
            .iter()
            .map(|c| quote_field(&c.name))
            .collect();
        writeln!(w, "{}", header.join(","))?;
        for row in self.rows() {
            let fields: Vec<String> = row
                .iter()
                .map(|v| match v {
                    Value::Null => String::new(),
                    other => quote_field(&other.to_string()),
                })
                .collect();
            writeln!(w, "{}", fields.join(","))?;
        }
        w.flush()
    }

    /// Render the table as a CSV string.
    pub fn to_csv_string(&self) -> String {
        let mut out = Vec::new();
        self.to_csv(&mut out).expect("writing to Vec cannot fail");
        String::from_utf8(out).expect("CSV output is UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    fn quote_schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    const SAMPLE: &str = "\
name,date,price
INTC,1999-01-25,60
INTC,1999-01-26,63.5
IBM,1999-01-25,81
";

    #[test]
    fn round_trip() {
        let t = Table::from_csv_str(quote_schema(), SAMPLE).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.cell(0, 0), &Value::from("INTC"));
        assert_eq!(t.cell(1, 2), &Value::from(63.5));
        assert_eq!(t.cell(2, 1), &Value::Date(Date::from_ymd(1999, 1, 25)));
        let rendered = t.to_csv_string();
        let t2 = Table::from_csv_str(quote_schema(), &rendered).unwrap();
        assert_eq!(t.len(), t2.len());
        for (a, b) in t.rows().zip(t2.rows()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn header_order_is_flexible_and_extras_ignored() {
        let data = "price,extra,name,date\n42.5,zzz,IBM,1999-01-25\n";
        let t = Table::from_csv_str(quote_schema(), data).unwrap();
        assert_eq!(t.cell(0, 0), &Value::from("IBM"));
        assert_eq!(t.cell(0, 2), &Value::from(42.5));
    }

    #[test]
    fn missing_column_is_reported() {
        let data = "name,date\nIBM,1999-01-25\n";
        assert!(matches!(
            Table::from_csv_str(quote_schema(), data),
            Err(CsvError::MissingColumn(c)) if c == "price"
        ));
    }

    #[test]
    fn parse_errors_carry_location() {
        let data = "name,date,price\nIBM,1999-01-25,not-a-number\n";
        match Table::from_csv_str(quote_schema(), data) {
            Err(CsvError::Parse { line, column, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(column, "price");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_cells_become_null() {
        let data = "name,date,price\nIBM,1999-01-25,\n";
        let t = Table::from_csv_str(quote_schema(), data).unwrap();
        assert!(t.cell(0, 2).is_null());
    }

    #[test]
    fn quoted_fields() {
        let schema = Schema::new([("a", ColumnType::Str), ("b", ColumnType::Int)]).unwrap();
        let data = "a,b\n\"hello, \"\"world\"\"\",7\n";
        let t = Table::from_csv_str(schema, data).unwrap();
        assert_eq!(t.cell(0, 0), &Value::from("hello, \"world\""));
        let rendered = t.to_csv_string();
        assert!(rendered.contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    fn empty_input_yields_empty_table() {
        let t = Table::from_csv_str(quote_schema(), "").unwrap();
        assert!(t.is_empty());
        let t2 = Table::from_csv_str(quote_schema(), "name,date,price\n").unwrap();
        assert!(t2.is_empty());
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let data = "name,date,price\r\nIBM,1999-01-25,81\r\n\r\n";
        let t = Table::from_csv_str(quote_schema(), data).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_mismatch_detected() {
        let data = "name,date,price\nIBM,1999-01-25\n";
        assert!(matches!(
            Table::from_csv_str(quote_schema(), data),
            Err(CsvError::Arity { line: 2, .. })
        ));
    }

    #[test]
    fn truncated_final_row_is_reported_with_its_line() {
        // A file cut off mid-record (no trailing newline, missing fields).
        let data = "name,date,price\nIBM,1999-01-25,81\nIBM,1999-01-26";
        match Table::from_csv_str(quote_schema(), data) {
            Err(CsvError::Arity {
                line,
                expected,
                got,
            }) => {
                assert_eq!(line, 3);
                assert_eq!(expected, 3);
                assert_eq!(got, 2);
            }
            other => panic!("expected arity error, got {other:?}"),
        }
    }

    #[test]
    fn bad_date_is_reported_with_line_and_column() {
        let data = "name,date,price\nIBM,1999-01-25,81\nIBM,1999-13-88,82\n";
        match Table::from_csv_str(quote_schema(), data) {
            Err(CsvError::Parse {
                line,
                column,
                value,
                expected,
            }) => {
                assert_eq!(line, 3);
                assert_eq!(column, "date");
                assert_eq!(value, "1999-13-88");
                assert_eq!(expected, ColumnType::Date);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn incremental_records_match_batch_and_survive_bad_lines() {
        // Good, bad (unparsable price), good: the iterator reports the bad
        // line as an Err item and keeps going — the contract quarantine
        // policies rely on.
        let data = "name,date,price\nIBM,1999-01-25,81\nIBM,1999-01-26,oops\nIBM,1999-01-27,84\n";
        let mut records = CsvRecords::new(quote_schema(), data.as_bytes()).unwrap();
        let first = records.next().unwrap().unwrap();
        assert_eq!(first[2], Value::from(81.0));
        assert_eq!(records.line(), 2);
        match records.next().unwrap() {
            Err(CsvError::Parse { line: 3, .. }) => {}
            other => panic!("expected parse error on line 3, got {other:?}"),
        }
        let third = records.next().unwrap().unwrap();
        assert_eq!(third[2], Value::from(84.0));
        assert!(records.next().is_none());
        assert!(records.next().is_none());

        // Empty input: header never arrives, no records.
        let mut empty = CsvRecords::new(quote_schema(), "".as_bytes()).unwrap();
        assert!(empty.next().is_none());
    }

    #[test]
    fn headerless_rows_parse_in_schema_order() {
        let row = parse_headerless_row(&quote_schema(), "IBM,1999-01-25,81\r", 7).unwrap();
        assert_eq!(row[0], Value::from("IBM"));
        assert_eq!(row[1], Value::Date(Date::from_ymd(1999, 1, 25)));
        assert_eq!(row[2], Value::from(81.0));
        // Quoting, nulls and extra trailing fields follow the same dialect.
        let row = parse_headerless_row(&quote_schema(), "\"A,B\",1999-01-26,,extra", 1).unwrap();
        assert_eq!(row[0], Value::from("A,B"));
        assert!(row[2].is_null());
        match parse_headerless_row(&quote_schema(), "IBM,1999-01-25", 9) {
            Err(CsvError::Arity {
                line: 9, got: 2, ..
            }) => {}
            other => panic!("expected arity error, got {other:?}"),
        }
        match parse_headerless_row(&quote_schema(), "IBM,not-a-date,81", 3) {
            Err(CsvError::Parse {
                line: 3, column, ..
            }) => assert_eq!(column, "date"),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn non_utf8_bytes_are_reported_with_their_line() {
        let mut data = b"name,date,price\nIBM,1999-01-25,81\n".to_vec();
        data.extend_from_slice(b"IB\xffM,1999-01-26,82\n");
        match Table::from_csv(quote_schema(), &data[..]) {
            Err(CsvError::Utf8 { line }) => assert_eq!(line, 3),
            other => panic!("expected UTF-8 error, got {other:?}"),
        }
        // And in the header too.
        let err = Table::from_csv(quote_schema(), &b"na\xffme,date,price\n"[..]).unwrap_err();
        assert!(matches!(err, CsvError::Utf8 { line: 1 }), "{err:?}");
        assert!(err.to_string().contains("not valid UTF-8"));
    }
}
