//! [`Date`]: a calendar date stored as days since 1970-01-01.
//!
//! `SEQUENCE BY date` sorts millions of rows, so the representation is a
//! single `i32`; conversion to and from year/month/day uses the standard
//! civil-calendar algorithms and is exact over the full proleptic
//! Gregorian range we care about.

use std::fmt;
use std::str::FromStr;

/// A calendar date, stored as the number of days since 1970-01-01
/// (negative for earlier dates).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Date {
    days: i32,
}

/// Error parsing a [`Date`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDateError {
    input: String,
}

impl fmt::Display for ParseDateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid date literal: {:?} (expected YYYY-MM-DD)",
            self.input
        )
    }
}

impl std::error::Error for ParseDateError {}

impl Date {
    /// Construct from the raw day number (days since 1970-01-01).
    pub const fn from_days(days: i32) -> Date {
        Date { days }
    }

    /// The raw day number.
    pub const fn days(self) -> i32 {
        self.days
    }

    /// Construct from a civil year/month/day.
    ///
    /// # Panics
    /// Panics if the month or day are out of range for the given month.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Date {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} out of range for {year}-{month:02}"
        );
        // Howard Hinnant's days_from_civil.
        let y = i64::from(year) - i64::from(month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(month);
        let d = i64::from(day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Date {
            days: (era * 146_097 + doe - 719_468) as i32,
        }
    }

    /// The civil `(year, month, day)` triple.
    pub fn ymd(self) -> (i32, u32, u32) {
        // Howard Hinnant's civil_from_days.
        let z = i64::from(self.days) + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn plus_days(self, n: i32) -> Date {
        Date {
            days: self.days + n,
        }
    }

    /// ISO weekday, Monday = 1 … Sunday = 7.
    pub fn weekday(self) -> u32 {
        // 1970-01-01 was a Thursday (4).
        (((i64::from(self.days) + 3).rem_euclid(7)) + 1) as u32
    }

    /// `true` for Saturday/Sunday — used by the trading-calendar generator.
    pub fn is_weekend(self) -> bool {
        self.weekday() >= 6
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month validated by caller"),
    }
}

impl FromStr for Date {
    type Err = ParseDateError;

    fn from_str(s: &str) -> Result<Date, ParseDateError> {
        let err = || ParseDateError {
            input: s.to_string(),
        };
        let mut parts = s.trim().splitn(3, '-');
        let year: i32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
            return Err(err());
        }
        Ok(Date::from_ymd(year, month, day))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch() {
        let d = Date::from_ymd(1970, 1, 1);
        assert_eq!(d.days(), 0);
        assert_eq!(d.ymd(), (1970, 1, 1));
        assert_eq!(d.weekday(), 4); // Thursday
    }

    #[test]
    fn known_dates() {
        assert_eq!(Date::from_ymd(1999, 1, 25).to_string(), "1999-01-25");
        assert_eq!(Date::from_ymd(2000, 2, 29).ymd(), (2000, 2, 29));
        assert_eq!(Date::from_ymd(1975, 1, 2).weekday(), 4); // Thursday
        assert!(Date::from_ymd(2026, 7, 4).is_weekend()); // a Saturday
    }

    #[test]
    fn ordering_follows_calendar() {
        let a = Date::from_ymd(1999, 1, 25);
        let b = Date::from_ymd(1999, 1, 26);
        let c = Date::from_ymd(2000, 1, 1);
        assert!(a < b && b < c);
        assert_eq!(a.plus_days(1), b);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["1999-01-25", "1970-01-01", "2000-02-29", "1875-12-31"] {
            let d: Date = s.parse().unwrap();
            assert_eq!(d.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "1999",
            "1999-13-01",
            "1999-02-30",
            "01/25/1999",
            "1999-1",
        ] {
            assert!(bad.parse::<Date>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    #[should_panic]
    fn from_ymd_rejects_bad_day() {
        Date::from_ymd(1999, 2, 29);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(1996));
        assert!(!is_leap(1999));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn days_round_trip(days in -200_000i32..200_000) {
                let d = Date::from_days(days);
                let (y, m, dd) = d.ymd();
                prop_assert_eq!(Date::from_ymd(y, m, dd), d);
            }

            #[test]
            fn plus_one_day_is_monotone(days in -200_000i32..200_000) {
                let d = Date::from_days(days);
                prop_assert!(d.plus_days(1) > d);
                let w = d.weekday();
                let w2 = d.plus_days(1).weekday();
                prop_assert_eq!(w % 7 + 1, w2);
            }
        }
    }
}
