//! [`Schema`], [`Table`] and the `CLUSTER BY` / `SEQUENCE BY` pipeline.

use crate::value::{ColumnType, Value};
use std::collections::BTreeMap;
use std::fmt;

/// One column of a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name (matched case-insensitively by lookups).
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

/// An ordered list of named, typed columns.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

/// Errors raised by table construction and row insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row had the wrong number of cells.
    Arity {
        /// Schema arity.
        expected: usize,
        /// Row length.
        got: usize,
    },
    /// A cell value did not fit its column's type.
    Type {
        /// Column name.
        column: String,
        /// Declared column type.
        expected: ColumnType,
        /// Rendering of the offending value.
        got: String,
    },
    /// A referenced column does not exist.
    NoSuchColumn(String),
    /// Two columns share a name.
    DuplicateColumn(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Arity { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} columns")
            }
            TableError::Type {
                column,
                expected,
                got,
            } => write!(
                f,
                "value {got} does not fit column {column} of type {expected}"
            ),
            TableError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            TableError::DuplicateColumn(c) => write!(f, "duplicate column name: {c}"),
        }
    }
}

impl std::error::Error for TableError {}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Errors
    /// Fails on duplicate (case-insensitive) column names.
    pub fn new<I, S>(columns: I) -> Result<Schema, TableError>
    where
        I: IntoIterator<Item = (S, ColumnType)>,
        S: Into<String>,
    {
        let mut out = Schema::default();
        for (name, ty) in columns {
            let name = name.into();
            if out.index_of(&name).is_some() {
                return Err(TableError::DuplicateColumn(name));
            }
            out.columns.push(Column { name, ty });
        }
        Ok(out)
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Case-insensitive lookup of a column index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Lookup that reports an error for unknown names.
    pub fn require(&self, name: &str) -> Result<usize, TableError> {
        self.index_of(name)
            .ok_or_else(|| TableError::NoSuchColumn(name.to_string()))
    }

    /// Validate a row's arity and column types without storing it (the
    /// same checks [`Table::push_row`] applies).
    pub fn validate_row(&self, row: &[Value]) -> Result<(), TableError> {
        if row.len() != self.arity() {
            return Err(TableError::Arity {
                expected: self.arity(),
                got: row.len(),
            });
        }
        for (value, column) in row.iter().zip(self.columns()) {
            if !value.fits(column.ty) {
                return Err(TableError::Type {
                    column: column.name.clone(),
                    expected: column.ty,
                    got: value.to_string(),
                });
            }
        }
        Ok(())
    }
}

/// A row-oriented in-memory table.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row after validating arity and column types.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), TableError> {
        self.schema.validate_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Drop the first `k` rows (bounded-window compaction for streaming
    /// sessions; `k` is clamped to the current length).
    pub fn remove_prefix(&mut self, k: usize) {
        let k = k.min(self.rows.len());
        drop(self.rows.drain(..k));
    }

    /// The row at `index`.
    pub fn row(&self, index: usize) -> &[Value] {
        &self.rows[index]
    }

    /// Iterate over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }

    /// Partition the table per `CLUSTER BY` and order each partition per
    /// `SEQUENCE BY` (§2 of the paper, Figure 1).
    ///
    /// * `cluster_by` — column names whose values identify a stream; may be
    ///   empty, in which case the whole table is one cluster.
    /// * `sequence_by` — column names to sort ascending within each
    ///   cluster; the sort is stable, so input order breaks ties.
    ///
    /// Clusters are returned ordered by their keys so output is
    /// deterministic.
    pub fn cluster_by(
        &self,
        cluster_by: &[&str],
        sequence_by: &[&str],
    ) -> Result<Vec<Cluster<'_>>, TableError> {
        let cluster_cols: Vec<usize> = cluster_by
            .iter()
            .map(|c| self.schema.require(c))
            .collect::<Result<_, _>>()?;
        let sequence_cols: Vec<usize> = sequence_by
            .iter()
            .map(|c| self.schema.require(c))
            .collect::<Result<_, _>>()?;

        let mut groups: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            let key: Vec<Value> = cluster_cols.iter().map(|&c| row[c].clone()).collect();
            groups.entry(key).or_default().push(i);
        }
        Ok(groups
            .into_iter()
            .map(|(key, mut indices)| {
                indices.sort_by(|&a, &b| {
                    let ka = sequence_cols.iter().map(|&c| &self.rows[a][c]);
                    let kb = sequence_cols.iter().map(|&c| &self.rows[b][c]);
                    ka.cmp(kb)
                });
                Cluster {
                    table: self,
                    key,
                    row_indices: indices,
                    base: 0,
                }
            })
            .collect())
    }
}

/// One `CLUSTER BY` partition, with rows in `SEQUENCE BY` order.
///
/// This is the *stream* the pattern engines traverse: `cluster.get(i)`
/// is the paper's `t_{i+1}` (engines use 0-based positions internally).
#[derive(Clone)]
pub struct Cluster<'a> {
    table: &'a Table,
    key: Vec<Value>,
    row_indices: Vec<usize>,
    /// Stream position of the first buffered row.  0 for batch clusters;
    /// a streaming session raises it as it compacts its window, so stream
    /// positions stay absolute while only `len() - base` rows are held.
    base: usize,
}

impl<'a> Cluster<'a> {
    /// A bounded-window view for streaming: `table` holds the rows at
    /// stream positions `base..base + table.len()` in arrival order;
    /// positions below `base` have been compacted away and must not be
    /// accessed.
    pub fn windowed(table: &'a Table, key: Vec<Value>, base: usize) -> Cluster<'a> {
        Cluster {
            table,
            key,
            row_indices: (0..table.len()).collect(),
            base,
        }
    }

    /// The cluster key (values of the `CLUSTER BY` columns).
    pub fn key(&self) -> &[Value] {
        &self.key
    }

    /// Number of rows in the stream (for a windowed cluster this counts
    /// the compacted prefix too: positions are absolute).
    pub fn len(&self) -> usize {
        self.base + self.row_indices.len()
    }

    /// `true` iff the cluster is empty (cannot happen for clusters produced
    /// by [`Table::cluster_by`], but synthetic clusters may be empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `pos`-th row of the stream (0-based; panics below a windowed
    /// cluster's base).
    pub fn get(&self, pos: usize) -> &'a [Value] {
        self.table.row(self.row_indices[pos - self.base])
    }

    /// The underlying table row index of stream position `pos`.
    pub fn table_index(&self, pos: usize) -> usize {
        self.row_indices[pos - self.base]
    }

    /// Iterate the buffered rows in stream order (everything for a batch
    /// cluster; the retained window for a windowed one).
    pub fn iter(&self) -> impl Iterator<Item = &'a [Value]> + '_ {
        self.row_indices.iter().map(move |&i| self.table.row(i))
    }

    /// The table this cluster views.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// A view of this cluster with the stream order reversed (used by the
    /// reverse-direction search of the paper's §8).  Not meaningful for
    /// windowed clusters.
    pub fn reversed(&self) -> Cluster<'a> {
        debug_assert_eq!(self.base, 0, "cannot reverse a windowed cluster");
        Cluster {
            table: self.table,
            key: self.key.clone(),
            row_indices: self.row_indices.iter().rev().copied().collect(),
            base: 0,
        }
    }
}

impl fmt::Debug for Cluster<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cluster(key={:?}, rows={})", self.key, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    fn quote_schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    fn quotes() -> Table {
        // The paper's Figure 1 data (INTC and IBM, 1/25/99–1/27/99),
        // deliberately inserted out of order to exercise the pipeline.
        let mut t = Table::new(quote_schema());
        let d = |day| Value::Date(Date::from_ymd(1999, 1, day));
        for (name, day, price) in [
            ("IBM", 27, 84.0),
            ("INTC", 25, 60.0),
            ("IBM", 25, 81.0),
            ("INTC", 27, 62.0),
            ("IBM", 26, 80.5),
            ("INTC", 26, 63.5),
        ] {
            t.push_row(vec![Value::from(name), d(day), Value::from(price)])
                .unwrap();
        }
        t
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let s = quote_schema();
        assert_eq!(s.index_of("PRICE"), Some(2));
        assert_eq!(s.index_of("Price"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.require("nope").is_err());
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new([("a", ColumnType::Int), ("A", ColumnType::Str)]).unwrap_err();
        assert_eq!(err, TableError::DuplicateColumn("A".into()));
    }

    #[test]
    fn push_row_validates() {
        let mut t = Table::new(quote_schema());
        assert!(matches!(
            t.push_row(vec![Value::from("IBM")]),
            Err(TableError::Arity {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            t.push_row(vec![
                Value::from("IBM"),
                Value::from("oops"),
                Value::from(1.0)
            ]),
            Err(TableError::Type { .. })
        ));
        // Int into Float column is fine; NULLs are fine.
        t.push_row(vec![
            Value::from("IBM"),
            Value::Date(Date::from_days(0)).clone(),
            Value::Int(81),
        ])
        .unwrap();
        t.push_row(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn cluster_by_groups_and_sorts_like_figure1() {
        let t = quotes();
        let clusters = t.cluster_by(&["name"], &["date"]).unwrap();
        assert_eq!(clusters.len(), 2);
        // BTreeMap ordering: IBM before INTC.
        assert_eq!(clusters[0].key(), &[Value::from("IBM")]);
        assert_eq!(clusters[1].key(), &[Value::from("INTC")]);
        let ibm_prices: Vec<f64> = clusters[0].iter().map(|r| r[2].as_f64().unwrap()).collect();
        assert_eq!(ibm_prices, vec![81.0, 80.5, 84.0]);
        let intc_prices: Vec<f64> = clusters[1].iter().map(|r| r[2].as_f64().unwrap()).collect();
        assert_eq!(intc_prices, vec![60.0, 63.5, 62.0]);
    }

    #[test]
    fn empty_cluster_by_yields_single_stream() {
        let t = quotes();
        let clusters = t.cluster_by(&[], &["date", "name"]).unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 6);
        assert!(clusters[0].key().is_empty());
        // Sorted by (date, name): 25th IBM, 25th INTC, 26th IBM, ...
        let first = clusters[0].get(0);
        assert_eq!(first[0], Value::from("IBM"));
    }

    #[test]
    fn cluster_by_unknown_column_errors() {
        let t = quotes();
        assert!(matches!(
            t.cluster_by(&["ticker"], &["date"]),
            Err(TableError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn stable_sort_preserves_insert_order_on_ties() {
        let mut t = Table::new(
            Schema::new([
                ("k", ColumnType::Str),
                ("seq", ColumnType::Int),
                ("id", ColumnType::Int),
            ])
            .unwrap(),
        );
        for (id, seq) in [(1, 5), (2, 5), (3, 4)] {
            t.push_row(vec![Value::from("a"), Value::Int(seq), Value::Int(id)])
                .unwrap();
        }
        let c = t.cluster_by(&["k"], &["seq"]).unwrap();
        let ids: Vec<i64> = c[0]
            .iter()
            .map(|r| match r[2] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![3, 1, 2]);
    }

    #[test]
    fn windowed_cluster_keeps_absolute_positions() {
        let mut t = Table::new(quote_schema());
        let d = |day| Value::Date(Date::from_ymd(1999, 1, day));
        for (day, price) in [(25, 81.0), (26, 80.5), (27, 84.0)] {
            t.push_row(vec![Value::from("IBM"), d(day), Value::from(price)])
                .unwrap();
        }
        // Compact the first row away; positions 1..=3 remain addressable.
        t.remove_prefix(1);
        let w = Cluster::windowed(&t, vec![Value::from("IBM")], 1);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        assert_eq!(w.get(1)[2], Value::from(80.5));
        assert_eq!(w.get(2)[2], Value::from(84.0));
        assert_eq!(w.table_index(1), 0);
        assert_eq!(w.iter().count(), 2);
        // remove_prefix clamps.
        t.remove_prefix(100);
        assert!(t.is_empty());
    }

    #[test]
    fn validate_row_matches_push_row() {
        let s = quote_schema();
        assert!(s.validate_row(&[Value::from("IBM")]).is_err());
        assert!(s
            .validate_row(&[Value::from("IBM"), Value::from("oops"), Value::from(1.0)])
            .is_err());
        assert!(s
            .validate_row(&[
                Value::from("IBM"),
                Value::Date(Date::from_days(0)),
                Value::Int(81)
            ])
            .is_ok());
    }

    #[test]
    fn cluster_accessors() {
        let t = quotes();
        let clusters = t.cluster_by(&["name"], &["date"]).unwrap();
        let ibm = &clusters[0];
        assert!(!ibm.is_empty());
        assert_eq!(ibm.get(0)[2], Value::from(81.0));
        let tbl_idx = ibm.table_index(0);
        assert_eq!(t.row(tbl_idx)[2], Value::from(81.0));
        assert!(format!("{ibm:?}").contains("rows=3"));
        assert_eq!(ibm.table().len(), 6);
    }
}
