//! [`Value`] — the dynamic cell type — and [`ColumnType`].

use crate::date::Date;
use std::cmp::Ordering;
use std::fmt;

/// The declared type of a table column.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (prices, index levels).
    Float,
    /// UTF-8 string (symbols, names).
    Str,
    /// Calendar date.
    Date,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "VARCHAR",
            ColumnType::Date => "DATE",
        })
    }
}

/// A single cell value.
///
/// Numeric comparisons treat `Int` and `Float` as one numeric domain
/// (`Value::Int(10)` equals `Value::Float(10.0)`), matching SQL semantics.
/// `Null` compares less than everything, so sorting is total.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// An integer.
    Int(i64),
    /// A float. Must not be NaN (the constructors in this crate never
    /// produce one; CSV import rejects them).
    Float(f64),
    /// A string.
    Str(String),
    /// A date.
    Date(Date),
}

impl Value {
    /// The column type this value inhabits, or `None` for NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Str(_) => Some(ColumnType::Str),
            Value::Date(_) => Some(ColumnType::Date),
        }
    }

    /// Numeric view (ints widen to float), or `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Date view.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// `true` iff the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` iff this value can be stored in a column of type `ty`
    /// (NULL fits everywhere; ints fit float columns).
    #[allow(clippy::match_like_matches_macro)] // table form reads better
    pub fn fits(&self, ty: ColumnType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), ColumnType::Int | ColumnType::Float) => true,
            (Value::Float(_), ColumnType::Float) => true,
            (Value::Str(_), ColumnType::Str) => true,
            (Value::Date(_), ColumnType::Date) => true,
            _ => false,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
            Value::Date(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b)
        .expect("NaN values are rejected at construction")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                // Render integral floats without the trailing ".0" noise
                // except to keep the type visible in debug contexts.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        assert!(!v.is_nan(), "NaN cannot be stored in a Value");
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Value {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(10), Value::Float(10.0));
        assert!(Value::Int(10) < Value::Float(10.5));
        assert!(Value::Float(9.5) < Value::Int(10));
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(1), Value::Null, Value::Int(-5)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn fits_matrix() {
        assert!(Value::Int(1).fits(ColumnType::Float));
        assert!(Value::Int(1).fits(ColumnType::Int));
        assert!(!Value::Float(1.5).fits(ColumnType::Int));
        assert!(Value::Null.fits(ColumnType::Str));
        assert!(!Value::Str("x".into()).fits(ColumnType::Date));
        assert!(Value::Date(Date::from_days(0)).fits(ColumnType::Date));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("IBM".into()).as_str(), Some("IBM"));
        assert_eq!(Value::Null.as_f64(), None);
        let d = Date::from_ymd(1999, 1, 25);
        assert_eq!(Value::Date(d).as_date(), Some(d));
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let _ = Value::from(f64::NAN);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(60).to_string(), "60");
        assert_eq!(Value::Float(63.5).to_string(), "63.5");
        assert_eq!(Value::Float(84.0).to_string(), "84.0");
        assert_eq!(Value::Str("INTC".into()).to_string(), "INTC");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Value::Str("IBM".into()) < Value::Str("INTC".into()));
    }
}
