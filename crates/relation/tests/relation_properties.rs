//! Property tests for the relational substrate: total value ordering,
//! CSV round-trips, and clustering invariants.

use proptest::prelude::*;
use sqlts_relation::{ColumnType, Date, Schema, Table, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-1_000i64..1_000).prop_map(Value::Int),
        (-1_000i64..1_000).prop_map(|i| Value::Float(i as f64 / 4.0)),
        "[a-zA-Z0-9 ,\"]{0,12}".prop_map(Value::Str),
        (-50_000i32..50_000).prop_map(|d| Value::Date(Date::from_days(d))),
    ]
}

proptest! {
    /// Value ordering is a total order: antisymmetric, transitive, total.
    #[test]
    fn value_ordering_is_total(
        a in arb_value(),
        b in arb_value(),
        c in arb_value(),
    ) {
        use std::cmp::Ordering;
        // Totality + antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Consistency of Eq with Ord.
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }

    /// Any table of generated values survives a CSV round-trip, except
    /// that floats are rendered decimally (quarter-steps are exact).
    #[test]
    fn csv_round_trip(
        rows in proptest::collection::vec(
            (
                // Avoid the literal "null", which CSV import maps to NULL.
                "[a-zA-Z0-9 ,\"']{0,10}"
                    .prop_filter("not the NULL literal", |s| {
                        !s.trim().eq_ignore_ascii_case("null")
                    }),
                -20_000i32..20_000,
                -1_000i64..1_000,
            ),
            0..40,
        )
    ) {
        let schema = Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ]).unwrap();
        let mut table = Table::new(schema.clone());
        for (name, days, q) in &rows {
            // CSV import trims whitespace, so normalize names likewise.
            let name = name.trim().to_string();
            table.push_row(vec![
                Value::Str(name),
                Value::Date(Date::from_days(*days)),
                Value::Float(*q as f64 / 4.0),
            ]).unwrap();
        }
        let rendered = table.to_csv_string();
        let parsed = Table::from_csv_str(schema, &rendered).unwrap();
        prop_assert_eq!(parsed.len(), table.len());
        for (a, b) in parsed.rows().zip(table.rows()) {
            // Empty strings become NULL on import; everything else must
            // round-trip exactly.
            if let (Value::Null, Value::Str(s)) = (&a[0], &b[0]) {
                prop_assert!(s.is_empty());
            } else {
                prop_assert_eq!(&a[0], &b[0]);
            }
            prop_assert_eq!(&a[1], &b[1]);
            prop_assert_eq!(&a[2], &b[2]);
        }
    }

    /// Clustering partitions the row set exactly: every row appears in
    /// exactly one cluster, and within clusters the sequence column is
    /// non-decreasing.
    #[test]
    fn clustering_partitions_and_sorts(
        rows in proptest::collection::vec((0u8..4, -100i32..100), 0..60)
    ) {
        let schema = Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ]).unwrap();
        let mut table = Table::new(schema);
        for (k, d) in &rows {
            table.push_row(vec![
                Value::Str(format!("S{k}")),
                Value::Date(Date::from_days(*d)),
                Value::Float(1.0),
            ]).unwrap();
        }
        let clusters = table.cluster_by(&["name"], &["date"]).unwrap();
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, table.len());
        for cluster in &clusters {
            prop_assert!(!cluster.is_empty());
            let mut prev: Option<Date> = None;
            for row in cluster.iter() {
                prop_assert_eq!(&row[0], &cluster.key()[0]);
                let d = row[1].as_date().unwrap();
                if let Some(p) = prev {
                    prop_assert!(d >= p);
                }
                prev = Some(d);
            }
            // Reversal reverses.
            let rev = cluster.reversed();
            prop_assert_eq!(rev.len(), cluster.len());
            if !cluster.is_empty() {
                prop_assert_eq!(rev.get(0), cluster.get(cluster.len() - 1));
            }
        }
    }
}
