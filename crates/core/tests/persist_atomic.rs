//! Regression test for the torn-checkpoint bug (`--features failpoints`):
//! a crash in the middle of writing a checkpoint must leave the previous
//! good checkpoint intact.  Before `atomic_write`, the CLI's
//! `save_checkpoint` used a bare `std::fs::write`, so a mid-write crash
//! destroyed exactly the file whose job is to survive crashes.

#![cfg(feature = "failpoints")]

use sqlts_core::failpoints::{self, FailAction};
use sqlts_core::{atomic_write, CompileOptions, SessionCheckpoint, StreamOptions, StreamSession};
use sqlts_relation::{ColumnType, Schema, Value};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static GATE: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    failpoints::reset();
    guard
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlts-persist-fp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn simulated_mid_write_crash_leaves_previous_checkpoint_intact() {
    let _guard = lock();
    let path = temp_path("crash.checkpoint");
    atomic_write(&path, b"previous good checkpoint").unwrap();
    failpoints::configure("persist::atomic_write", FailAction::InjectError);
    let err = atomic_write(&path, b"new checkpoint, torn halfway through");
    failpoints::reset();
    assert!(err.is_err(), "the injected crash must surface");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        b"previous good checkpoint",
        "a torn write must never damage the previous checkpoint"
    );
    // Once the fault clears, the same path updates normally.
    atomic_write(&path, b"recovered").unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), b"recovered");
}

#[test]
fn torn_session_checkpoint_still_resumes_from_the_previous_snapshot() {
    let _guard = lock();
    // End to end through the real checkpoint codec: snapshot a live
    // session, crash while overwriting the file, and verify the surviving
    // file still parses and resumes.
    let schema = Schema::new([
        ("name", ColumnType::Str),
        ("day", ColumnType::Int),
        ("price", ColumnType::Float),
    ])
    .unwrap();
    let sql = "SELECT X.name FROM q CLUSTER BY name SEQUENCE BY day AS (X, Z) \
               WHERE Z.price < X.price";
    let query = sqlts_core::compile(sql, &schema, &CompileOptions::default()).unwrap();
    let options = StreamOptions::default();
    let mut session = StreamSession::new(&query, options.clone()).unwrap();
    let row = |day: i64, price: f64| {
        vec![
            Value::Str("AAA".into()),
            Value::Int(day),
            Value::Float(price),
        ]
    };
    session.feed(row(1, 50.0)).unwrap();
    let first = session.snapshot().unwrap();
    let path = temp_path("session.checkpoint");
    atomic_write(&path, first.to_text().as_bytes()).unwrap();

    session.feed(row(2, 40.0)).unwrap();
    let second = session.snapshot().unwrap();
    failpoints::configure("persist::atomic_write", FailAction::InjectError);
    assert!(atomic_write(&path, second.to_text().as_bytes()).is_err());
    failpoints::reset();

    let surviving = std::fs::read_to_string(&path).unwrap();
    let parsed = SessionCheckpoint::from_text(&surviving).unwrap();
    assert_eq!(parsed.records(), 1, "the first snapshot survived the crash");
    let resumed = StreamSession::resume(&query, options, parsed).unwrap();
    assert_eq!(resumed.records(), 1);
}
