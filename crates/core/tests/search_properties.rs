//! Search-behaviour properties of the engines beyond match equivalence:
//! cursor discipline (OPS backtracks less than naive, as Figure 5
//! claims), determinism, and controlled match-density workloads.

use sqlts_core::engine::{find_matches, SearchOptions};
use sqlts_core::{compile, CompileOptions, EngineKind, EvalCounter, FirstTuplePolicy, SearchTrace};
use sqlts_datagen::{embed_motif, integer_walk, prices_to_table};
use sqlts_relation::{Date, Table};

fn table_of(prices: &[f64]) -> Table {
    prices_to_table("T", Date::from_ymd(1985, 1, 1), prices)
}

fn traced(query_src: &str, table: &Table, engine: EngineKind) -> (SearchTrace, u64, usize) {
    let query = compile(query_src, table.schema(), &CompileOptions::default()).unwrap();
    let clusters = table.cluster_by(&[], &["date"]).unwrap();
    let mut trace = SearchTrace::new();
    let counter = EvalCounter::new();
    let matches = find_matches(
        &query.elements,
        &clusters[0],
        engine,
        &SearchOptions {
            policy: FirstTuplePolicy::Fail,
        },
        &counter,
        Some(&mut trace),
    );
    (trace, counter.total(), matches.len())
}

const CHAIN: &str = "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C, D) \
     WHERE A.price < A.previous.price \
     AND B.price < B.previous.price AND B.price > 3 AND B.price < 9 \
     AND C.price > C.previous.price AND C.price < 10 \
     AND D.price > D.previous.price";

#[test]
fn ops_backtracks_no_more_than_naive() {
    // Figure 5's qualitative claim, checked across many seeds.
    for seed in 0..20u64 {
        let table = table_of(&integer_walk(400, 1, 12, 2, seed));
        let (naive_trace, naive_cost, naive_matches) = traced(CHAIN, &table, EngineKind::Naive);
        let (ops_trace, ops_cost, ops_matches) = traced(CHAIN, &table, EngineKind::Ops);
        assert_eq!(naive_matches, ops_matches, "seed {seed}");
        assert!(ops_cost <= naive_cost, "seed {seed}");
        assert!(
            ops_trace.backtrack_episodes() <= naive_trace.backtrack_episodes(),
            "seed {seed}: OPS backtracked more ({} vs {})",
            ops_trace.backtrack_episodes(),
            naive_trace.backtrack_episodes()
        );
    }
}

#[test]
fn trace_length_equals_cost_metric_for_all_engines() {
    let table = table_of(&integer_walk(300, 1, 12, 2, 5));
    for engine in [
        EngineKind::Naive,
        EngineKind::NaiveBacktrack,
        EngineKind::Ops,
        EngineKind::OpsShiftOnly,
    ] {
        let (trace, cost, _) = traced(CHAIN, &table, engine);
        assert_eq!(trace.path_len() as u64, cost, "{engine:?}");
    }
}

#[test]
fn search_is_deterministic() {
    let table = table_of(&integer_walk(500, 1, 12, 2, 9));
    let (t1, c1, m1) = traced(CHAIN, &table, EngineKind::Ops);
    let (t2, c2, m2) = traced(CHAIN, &table, EngineKind::Ops);
    assert_eq!(t1.steps, t2.steps);
    assert_eq!(c1, c2);
    assert_eq!(m1, m2);
}

#[test]
fn embedded_motifs_are_all_found() {
    // Plant an unmistakable motif (spike up to 90 then crash to 20 then
    // recover to 60) into a low-amplitude walk; the pattern must find
    // exactly the planted copies, with every engine.
    let mut prices = integer_walk(3_000, 30, 50, 2, 17);
    let motif = [90.0, 20.0, 60.0];
    embed_motif(&mut prices, &motif, 150, 4);
    let expected = prices.windows(3).filter(|w| w == &motif).count();
    assert!(expected >= 5, "embedding produced only {expected} motifs");

    let table = table_of(&prices);
    let query = "SELECT X.date FROM t SEQUENCE BY date AS (X, Y, Z) \
                 WHERE X.price = 90 AND Y.price = 20 AND Z.price = 60";
    for engine in [
        EngineKind::Naive,
        EngineKind::NaiveBacktrack,
        EngineKind::Ops,
    ] {
        let (_, _, matches) = traced(query, &table, engine);
        assert_eq!(matches, expected, "{engine:?}");
    }
}

#[test]
fn ops_cost_is_linear_on_constant_equality_patterns() {
    // The KMP guarantee carried over: on equality patterns OPS performs at
    // most 2n predicate tests regardless of the data.
    for seed in 0..5u64 {
        let prices: Vec<f64> = integer_walk(5_000, 0, 3, 3, seed);
        let table = table_of(&prices);
        let query = "SELECT X.date FROM t SEQUENCE BY date AS (X, Y, Z) \
                     WHERE X.price = 1 AND Y.price = 2 AND Z.price = 1";
        let (_, cost, _) = traced(query, &table, EngineKind::Ops);
        assert!(
            cost <= 2 * 5_000,
            "seed {seed}: {cost} tests exceeds the 2n bound"
        );
    }
}

#[test]
fn long_streams_with_no_matches_stay_cheap() {
    // A pattern that can never match (contradictory band) must cost ~n:
    // the compile-time analysis proves every shift impossible.
    let table = table_of(&integer_walk(10_000, 1, 12, 2, 3));
    let query = "SELECT A.date FROM t SEQUENCE BY date AS (A, B) \
                 WHERE A.price < A.previous.price AND A.price > 100 \
                 AND B.price > B.previous.price";
    let (_, cost, matches) = traced(query, &table, EngineKind::Ops);
    assert_eq!(matches, 0);
    assert!(cost <= 10_000 + 1, "cost {cost}");
}
