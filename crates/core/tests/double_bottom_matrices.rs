//! Compile-time analysis of the paper's Example 10 (the relaxed double
//! bottom): the θ/φ structure the ratio-predicate solver must discover
//! for the headline experiment to be optimized at all.
//!
//! Predicates (on tuple t, all over positive prices):
//!   p1 (X):  t ≥ 0.98·prev      — "no big drop"
//!   p2 (Y):  t < 0.98·prev      — big drop
//!   p3 (Z):  0.98·prev < t < 1.02·prev — flat
//!   p4 (T):  t > 1.02·prev      — big rise
//!   p5 (U):  flat
//!   p6 (V):  big drop
//!   p7 (W):  flat
//!   p8 (R):  big rise
//!   p9 (S):  t ≤ 1.02·prev      — "no big rise"

use sqlts_core::matrices::{PrecondMatrices, Predicates};
use sqlts_core::{compile, star_shift_next, CompileOptions};
use sqlts_tvl::Truth::*;

const DOUBLE_BOTTOM: &str = "\
SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
FROM djia SEQUENCE BY date AS (X, *Y, *Z, *T, *U, *V, *W, *R, S) \
WHERE X.price >= 0.98 * X.previous.price \
AND Y.price < 0.98 * Y.previous.price \
AND 0.98 * Z.previous.price < Z.price AND Z.price < 1.02 * Z.previous.price \
AND T.price > 1.02 * T.previous.price \
AND 0.98 * U.previous.price < U.price AND U.price < 1.02 * U.previous.price \
AND V.price < 0.98 * V.previous.price \
AND 0.98 * W.previous.price < W.price AND W.price < 1.02 * W.previous.price \
AND R.price > 1.02 * R.previous.price \
AND S.price <= 1.02 * S.previous.price";

fn matrices() -> (PrecondMatrices, sqlts_lang::CompiledQuery) {
    let q = compile(
        DOUBLE_BOTTOM,
        &sqlts_datagen::quote_schema(),
        &CompileOptions::default(),
    )
    .unwrap();
    let pre = PrecondMatrices::build(Predicates::new(&q.elements));
    (pre, q)
}

#[test]
fn theta_captures_band_structure() {
    let (pre, _) = matrices();
    // Big drop contradicts "no big drop": θ[2][1] = 0.
    assert_eq!(pre.theta.get(2, 1), False);
    // Flat implies "no big drop": θ[3][1] = 1.
    assert_eq!(pre.theta.get(3, 1), True);
    // Flat contradicts big drop: θ[3][2] = 0.
    assert_eq!(pre.theta.get(3, 2), False);
    // Big rise implies "no big drop" and contradicts drop and flat.
    assert_eq!(pre.theta.get(4, 1), True);
    assert_eq!(pre.theta.get(4, 2), False);
    assert_eq!(pre.theta.get(4, 3), False);
    // Identical band predicates imply each other: θ[5][3] (flat⇒flat) = 1,
    // θ[6][2] (drop⇒drop) = 1, θ[8][4] (rise⇒rise) = 1.
    assert_eq!(pre.theta.get(5, 3), True);
    assert_eq!(pre.theta.get(6, 2), True);
    assert_eq!(pre.theta.get(8, 4), True);
    // "No big rise" (p9) is implied by flat and by drop.
    assert_eq!(pre.theta.get(9, 7), Unknown); // p9 ⇒ p7? no — other way:
    assert_eq!(pre.theta.get(7, 1), True); // flat ⇒ no-big-drop
}

#[test]
fn phi_knows_failing_a_drop_means_no_big_drop() {
    let (pre, _) = matrices();
    // ¬p2 (no big drop) is *exactly* p1: φ[2][1] = 1 — the signature
    // entry that lets OPS resume instantly when Y fails.
    assert_eq!(pre.phi.get(2, 1), True);
    // ¬p6 (V fails) also implies p1.
    assert_eq!(pre.phi.get(6, 1), True);
    // ¬p4 (not a big rise) implies p9 (≤ 1.02·prev): φ[4][...]: p9 is at
    // column 9 > row 4, out of the triangle — check the symmetric fact at
    // φ[9][...]: ¬p9 = big rise = p4... i.e. ¬p9 ⇒ ¬... ¬p9 implies p8's
    // predicate (both "big rise"): rows ≥ columns only, so test φ[9][8]:
    // ¬p9 ⇒ p8 — a genuine 1.
    assert_eq!(pre.phi.get(9, 8), True);
    assert_eq!(pre.phi.get(9, 4), True);
}

#[test]
fn shift_next_tables_are_sound_and_nontrivial() {
    let (pre, q) = matrices();
    let pattern = Predicates::new(&q.elements);
    let sn = star_shift_next(pattern, &pre);
    // Failing Y (element 2): the failed tuple satisfies X's predicate
    // (φ[2][1] = 1), so the pattern realigns by one element and re-tests
    // from element 1 — shift(2) = 1.
    assert_eq!(sn.shift(2), 1);
    assert_eq!(sn.next(2), 1);
    // All shifts are within bounds and every (shift, next) pair is
    // index-consistent with the runtime's count realignment.
    for j in 1..=9 {
        let (sh, nx) = (sn.shift(j), sn.next(j));
        assert!(sh >= 1 && sh <= j, "shift({j}) = {sh}");
        if nx == 0 {
            assert_eq!(sh, j, "next({j}) = 0 requires a full shift");
        } else {
            assert!(sh + nx - 1 <= j, "shift({j})={sh}, next({j})={nx}");
        }
    }
}

#[test]
fn mean_shift_predicts_modest_gain() {
    // The §8 heuristic quantity for this pattern is small (most shifts
    // are 1), consistent with the modest greedy-naive speedup measured in
    // EXPERIMENTS.md E4.
    let (pre, q) = matrices();
    let sn = star_shift_next(Predicates::new(&q.elements), &pre);
    assert!(sn.mean_shift() < 3.0, "mean shift {}", sn.mean_shift());
}
