//! Malformed-checkpoint fuzz for the `sqlts-checkpoint v1` codec, part of
//! the stream fault suite: truncations at every line boundary, systematic
//! single-byte corruptions, adversarial counts, version bumps, and
//! trailing garbage must all surface as a typed
//! [`StreamError::Checkpoint`] (or another typed error) — never a panic,
//! never a silent misparse that breaks the `to_text` fixed point.

use sqlts_core::stream::{SessionCheckpoint, StreamError, StreamOptions, StreamSession};
use sqlts_core::{compile, BadTuplePolicy, CompileOptions, EngineKind, ExecOptions, Instrument};
use sqlts_relation::{ColumnType, Schema, Value};

const QUERY: &str = "SELECT X.name, Z.price AS peak, Z.day AS day FROM quote \
                     CLUSTER BY name SEQUENCE BY day AS (X, *Y, Z) \
                     WHERE Y.price > Y.previous.price AND Z.price < Z.previous.price";

fn quote_schema() -> Schema {
    Schema::new([
        ("name", ColumnType::Str),
        ("day", ColumnType::Int),
        ("price", ColumnType::Float),
    ])
    .unwrap()
}

/// A checkpoint exercising every section of the format: several clusters,
/// pending matches, output rows, a stream log, quarantined tuples with
/// escaped strings, and an armed recorder with histograms and events.
fn rich_checkpoint_text() -> String {
    let query = compile(QUERY, &quote_schema(), &CompileOptions::default()).unwrap();
    let options = StreamOptions {
        exec: ExecOptions {
            engine: EngineKind::Ops,
            instrument: Instrument::tracing(),
            ..ExecOptions::default()
        },
        bad_tuple: BadTuplePolicy::Quarantine { cap: 8 },
        max_window_bytes: None,
        log_capacity: 64,
    };
    let mut session = StreamSession::new(&query, options).unwrap();
    for day in 0..25i64 {
        for (name, phase) in [("AAA", 0i64), ("BBB", 3)] {
            let wave = ((day + phase) % 7) as f64;
            session
                .feed(vec![
                    Value::Str(name.to_string()),
                    Value::Int(day),
                    Value::Float(100.0 + 3.0 * wave - 0.1 * day as f64),
                ])
                .unwrap();
        }
    }
    session
        .quarantine_external("spaces and % signs".into(), "a,b c%d".into())
        .unwrap();
    session.snapshot().unwrap().to_text()
}

fn is_checkpoint_err(e: &StreamError) -> bool {
    matches!(e, StreamError::Checkpoint(_))
}

#[test]
fn valid_text_round_trips() {
    let text = rich_checkpoint_text();
    let parsed = SessionCheckpoint::from_text(&text).expect("valid checkpoint parses");
    assert_eq!(parsed.to_text(), text, "codec must be a fixed point");
}

#[test]
fn every_line_boundary_truncation_is_rejected() {
    let text = rich_checkpoint_text();
    // Truncate after every line boundary (including the empty prefix):
    // each proper prefix is missing required sections and must fail with a
    // typed checkpoint error, not a panic or a silently shorter session.
    let mut cut = 0;
    while let Some(nl) = text[cut..].find('\n') {
        cut += nl + 1;
        if cut == text.len() {
            break;
        }
        let prefix = &text[..cut];
        match SessionCheckpoint::from_text(prefix) {
            Err(e) => assert!(
                is_checkpoint_err(&e),
                "truncation at byte {cut} gave a non-checkpoint error: {e}"
            ),
            Ok(_) => panic!("truncation at byte {cut} parsed successfully"),
        }
    }
    // Also drop the final newline only: 'end' without a trailing newline
    // still parses (str::lines semantics) — pin that so the behaviour is
    // deliberate, not accidental.
    assert!(SessionCheckpoint::from_text(text.trim_end_matches('\n')).is_ok());
}

#[test]
fn single_byte_corruptions_never_panic() {
    let text = rich_checkpoint_text();
    let bytes = text.as_bytes();
    // Systematic bit flips over the whole text (step 3 keeps runtime sane:
    // ~every third byte, three different bits each).
    for i in (0..bytes.len()).step_by(3) {
        for bit in [0x01u8, 0x10, 0x80] {
            let mut corrupted = bytes.to_vec();
            corrupted[i] ^= bit;
            let Ok(s) = std::str::from_utf8(&corrupted) else {
                continue; // not valid UTF-8: callers can't even hand it over
            };
            // Must not panic.  A flip that survives parsing (e.g. a digit
            // in a counter) must still satisfy the to_text fixed point —
            // i.e. it parsed into a self-consistent checkpoint, not a
            // half-read one.
            if let Ok(cp) = SessionCheckpoint::from_text(s) {
                let reprinted = cp.to_text();
                assert_eq!(
                    SessionCheckpoint::from_text(&reprinted).unwrap().to_text(),
                    reprinted,
                    "corrupted-but-parsable text at byte {i} broke the fixed point"
                );
            }
        }
    }
}

#[test]
fn adversarial_counts_fail_instead_of_allocating() {
    // A corrupted element count must not drive Vec::with_capacity into a
    // capacity-overflow panic or a huge allocation.
    for n in ["18446744073709551615", "9999999999", "4294967295"] {
        let text = format!(
            "sqlts-checkpoint v1\nengine ops\npattern 3\nrecords 0\nskipped 0\n\
             pressure 0\nquarantine {n}\n"
        );
        match SessionCheckpoint::from_text(&text) {
            Err(e) => assert!(is_checkpoint_err(&e), "{e}"),
            Ok(_) => panic!("quarantine count {n} with no entries parsed"),
        }
        let text = format!(
            "sqlts-checkpoint v1\nengine ops\npattern 3\nrecords 0\nskipped 0\n\
             pressure 0\nquarantine 0\nlog none\nclusters {n}\n"
        );
        match SessionCheckpoint::from_text(&text) {
            Err(e) => assert!(is_checkpoint_err(&e), "{e}"),
            Ok(_) => panic!("cluster count {n} with no clusters parsed"),
        }
    }
}

#[test]
fn version_bump_and_trailing_garbage_are_rejected() {
    let text = rich_checkpoint_text();
    let v2 = text.replacen("sqlts-checkpoint v1", "sqlts-checkpoint v2", 1);
    match SessionCheckpoint::from_text(&v2) {
        Err(StreamError::Checkpoint(msg)) => {
            assert!(msg.contains("sqlts-checkpoint v1"), "{msg}")
        }
        other => panic!("v2 header must be rejected, got {other:?}"),
    }
    let trailing = format!("{text}stray line after end\n");
    match SessionCheckpoint::from_text(&trailing) {
        Err(StreamError::Checkpoint(msg)) => assert!(msg.contains("trailing"), "{msg}"),
        other => panic!("trailing garbage must be rejected, got {other:?}"),
    }
    // Blank trailing lines are tolerated (editors add them).
    assert!(SessionCheckpoint::from_text(&format!("{text}\n\n")).is_ok());
}

#[test]
fn engine_mismatch_and_tag_confusion_are_typed_errors() {
    let text = rich_checkpoint_text();
    for (from, to) in [
        ("engine ops", "engine warp"),
        ("lastseq", "lostseq"),
        ("pattern 3", "pattern x"),
    ] {
        assert!(text.contains(from), "fixture must contain '{from}'");
        let bad = text.replacen(from, to, 1);
        match SessionCheckpoint::from_text(&bad) {
            Err(e) => assert!(is_checkpoint_err(&e), "{from}->{to}: {e}"),
            Ok(_) => panic!("{from}->{to} parsed successfully"),
        }
    }
}
