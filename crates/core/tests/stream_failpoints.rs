//! Fault-injection tests for the streaming session's resilience story
//! (compiled only under `--features failpoints`).
//!
//! Each test arms the process-global failpoint registry at one of the
//! stream sites (`stream::feed`, `stream::checkpoint`) or an engine-path
//! site (`governor::check`) and asserts the session degrades the way the
//! design promises: panics are contained and a checkpoint resumes past
//! them, injected ingest errors take the quarantine path, exhausted
//! budgets trip the governor while the checkpoint stays valid.

#![cfg(feature = "failpoints")]

use sqlts_core::failpoints::{self, FailAction};
use sqlts_core::stream::{
    BadTuplePolicy, SessionCheckpoint, StreamError, StreamOptions, StreamSession,
};
use sqlts_core::{
    compile, execute, CompileOptions, CompiledQuery, ExecOptions, Governor, TripReason,
};
use sqlts_relation::{ColumnType, Schema, Table, Value};
use std::sync::{Mutex, MutexGuard};

/// The registry is process-global: every test serializes on this lock and
/// resets the registry on entry and exit (also when the test panics).
static SERIAL: Mutex<()> = Mutex::new(());

struct RegistryGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for RegistryGuard {
    fn drop(&mut self) {
        failpoints::reset();
    }
}

fn armed() -> RegistryGuard {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    failpoints::reset();
    RegistryGuard(guard)
}

fn quote_schema() -> Schema {
    Schema::new([
        ("name", ColumnType::Str),
        ("day", ColumnType::Int),
        ("price", ColumnType::Float),
    ])
    .unwrap()
}

const QUERY: &str = "SELECT X.name, Y.price AS p FROM quote \
                     CLUSTER BY name SEQUENCE BY day AS (X, Y) \
                     WHERE Y.price > X.price";

fn compiled() -> CompiledQuery {
    compile(QUERY, &quote_schema(), &CompileOptions::default()).unwrap()
}

/// Two interleaved clusters with alternating rises so the query matches
/// repeatedly throughout the stream.
fn rows() -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    for day in 0..30i64 {
        for name in ["AAA", "BBB"] {
            let price = if day % 2 == 0 { 100.0 } else { 110.0 } + day as f64;
            out.push(vec![
                Value::Str(name.to_string()),
                Value::Int(day),
                Value::Float(price),
            ]);
        }
    }
    out
}

fn batch_table(rows: &[Vec<Value>]) -> Table {
    let mut t = Table::new(quote_schema());
    for row in rows {
        t.push_row(row.clone()).unwrap();
    }
    t
}

fn table_rows(t: &Table) -> Vec<Vec<Value>> {
    t.rows().map(<[Value]>::to_vec).collect()
}

/// A panic injected mid-feed poisons the session — and a checkpoint taken
/// before the panic resumes past it to the exact batch result.
#[test]
fn panic_mid_feed_recovers_via_resume() {
    let _guard = armed();
    let query = compiled();
    let rows = rows();
    let batch = execute(&query, &batch_table(&rows), &ExecOptions::default()).unwrap();

    // Checkpoint after 20 tuples; panic on the 21st feed.
    failpoints::configure_rule("stream::feed", FailAction::Panic, 21, None, true);
    let mut session = StreamSession::new(&query, StreamOptions::default()).unwrap();
    for row in &rows[..20] {
        session.feed(row.clone()).unwrap();
    }
    let checkpoint = session.snapshot().unwrap();
    match session.feed(rows[20].clone()) {
        Err(StreamError::Poisoned(cause)) => {
            assert!(
                cause.contains("stream::feed"),
                "cause names the site: {cause}"
            )
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }
    // The poisoned session refuses everything…
    assert!(session.poisoned());
    assert!(matches!(
        session.feed(rows[20].clone()),
        Err(StreamError::Poisoned(_))
    ));
    assert!(matches!(session.snapshot(), Err(StreamError::Poisoned(_))));
    assert!(matches!(session.finish(), Err(StreamError::Poisoned(_))));

    // …but the pre-panic checkpoint picks the stream back up: replay only
    // the tuples after the checkpoint, not the whole history.
    let checkpoint = SessionCheckpoint::from_text(&checkpoint.to_text()).unwrap();
    let mut resumed = StreamSession::resume(&query, StreamOptions::default(), checkpoint).unwrap();
    assert_eq!(resumed.records(), 20);
    for row in &rows[20..] {
        resumed.feed(row.clone()).unwrap();
    }
    let result = resumed.finish().unwrap();
    assert_eq!(table_rows(&result.table), table_rows(&batch.table));
    assert_eq!(result.stats, batch.stats);
}

/// An injected error at `stream::feed` takes the bad-tuple path: under
/// the quarantine policy the tuple is parked, the stream continues, and
/// only that one tuple is missing from the output's input.
#[test]
fn injected_feed_error_lands_in_quarantine() {
    let _guard = armed();
    let query = compiled();
    let rows = rows();
    // Reject exactly the 7th record.
    failpoints::configure_rule("stream::feed", FailAction::InjectError, 1, Some(7), false);
    let options = StreamOptions {
        bad_tuple: BadTuplePolicy::Quarantine { cap: 8 },
        ..StreamOptions::default()
    };
    let mut session = StreamSession::new(&query, options).unwrap();
    for row in &rows {
        session.feed(row.clone()).unwrap();
    }
    assert_eq!(session.quarantine().len(), 1);
    let bad = &session.quarantine()[0];
    assert_eq!(bad.record, 7);
    assert!(bad.reason.contains("stream::feed"), "{}", bad.reason);
    let streamed = session.finish().unwrap();

    // The same stream minus the quarantined tuple, run in batch.
    let mut pruned = rows.clone();
    pruned.remove(6);
    let batch = execute(&query, &batch_table(&pruned), &ExecOptions::default()).unwrap();
    assert_eq!(table_rows(&streamed.table), table_rows(&batch.table));
}

/// Under [`BadTuplePolicy::Fail`] the same injection surfaces as a
/// [`StreamError::BadTuple`] instead of being parked.
#[test]
fn injected_feed_error_fails_under_fail_policy() {
    let _guard = armed();
    let query = compiled();
    failpoints::configure_rule("stream::feed", FailAction::InjectError, 1, None, true);
    let mut session = StreamSession::new(&query, StreamOptions::default()).unwrap();
    match session.feed(rows()[0].clone()) {
        Err(StreamError::BadTuple(bad)) => {
            assert_eq!(bad.record, 1);
            assert!(bad.reason.contains("injected"), "{}", bad.reason);
        }
        other => panic!("expected BadTuple, got {other:?}"),
    }
    // A rejection is not a poisoning: the session keeps going.
    session.feed(rows()[0].clone()).unwrap();
}

/// An `ExhaustBudget` injection at `governor::check` trips the governed
/// session mid-stream; the trip carries a valid checkpoint (snapshot still
/// works) and resuming with a fresh governor completes the stream to the
/// exact ungoverned batch result.
#[test]
fn exhaust_budget_trip_carries_a_valid_checkpoint() {
    let _guard = armed();
    let query = compiled();
    let rows = rows();
    let batch = execute(&query, &batch_table(&rows), &ExecOptions::default()).unwrap();

    // Fire on the second governor check (the second cluster's opening
    // refill), so the trip lands mid-stream with real progress behind it.
    failpoints::configure_rule("governor::check", FailAction::ExhaustBudget, 2, None, true);
    let options = StreamOptions {
        exec: ExecOptions {
            governor: Governor::unlimited().with_max_steps(1_000_000),
            ..ExecOptions::default()
        },
        ..StreamOptions::default()
    };
    let mut session = StreamSession::new(&query, options).unwrap();
    let mut tripped = false;
    for row in &rows {
        match session.feed(row.clone()) {
            Ok(()) => {}
            Err(StreamError::Governed { trip, .. }) => {
                assert_eq!(trip.reason, TripReason::StepBudget);
                tripped = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        tripped,
        "the injected budget exhaustion must trip the session"
    );
    assert!(session.tripped());

    // The tripped session still checkpoints.  A tuple whose drive observed
    // the trip was already buffered (it is part of the frozen window), so
    // the checkpoint's own record count — not the caller's tally of Ok
    // feeds — is the authoritative resume position.
    let checkpoint = session.snapshot().unwrap();
    let text = checkpoint.to_text();
    let checkpoint = SessionCheckpoint::from_text(&text).unwrap();
    let consumed = checkpoint.records() as usize;
    assert!(consumed > 0 && consumed < rows.len());

    let mut resumed = StreamSession::resume(&query, StreamOptions::default(), checkpoint).unwrap();
    for row in &rows[consumed..] {
        resumed.feed(row.clone()).unwrap();
    }
    let result = resumed.finish().unwrap();
    assert_eq!(table_rows(&result.table), table_rows(&batch.table));
    assert_eq!(result.stats, batch.stats);
}

/// An injected error at `stream::checkpoint` surfaces as
/// [`StreamError::Checkpoint`] and leaves the session healthy: the next
/// snapshot succeeds and the stream finishes normally.
#[test]
fn injected_checkpoint_error_is_transient() {
    let _guard = armed();
    let query = compiled();
    let rows = rows();
    failpoints::configure_rule("stream::checkpoint", FailAction::InjectError, 1, None, true);
    let mut session = StreamSession::new(&query, StreamOptions::default()).unwrap();
    for row in &rows[..10] {
        session.feed(row.clone()).unwrap();
    }
    match session.snapshot() {
        Err(StreamError::Checkpoint(why)) => {
            assert!(why.contains("stream::checkpoint"), "{why}")
        }
        other => panic!("expected Checkpoint error, got {other:?}"),
    }
    // Transient: the rule was once-only, the session was not poisoned.
    let checkpoint = session.snapshot().unwrap();
    assert_eq!(checkpoint.records(), 10);
    for row in &rows[10..] {
        session.feed(row.clone()).unwrap();
    }
    let batch = execute(&query, &batch_table(&rows), &ExecOptions::default()).unwrap();
    let streamed = session.finish().unwrap();
    assert_eq!(table_rows(&streamed.table), table_rows(&batch.table));
}

/// A delayed feed (the slow-consumer simulation) changes nothing about
/// the results: DelayMs fires inside the failpoint and the stream's
/// output stays bit-identical to batch.
#[test]
fn delayed_feed_does_not_change_results() {
    let _guard = armed();
    let query = compiled();
    let rows = rows();
    failpoints::configure_rule("stream::feed", FailAction::DelayMs(5), 10, None, true);
    let mut session = StreamSession::new(&query, StreamOptions::default()).unwrap();
    for row in &rows {
        session.feed(row.clone()).unwrap();
    }
    let streamed = session.finish().unwrap();
    let batch = execute(&query, &batch_table(&rows), &ExecOptions::default()).unwrap();
    assert_eq!(table_rows(&streamed.table), table_rows(&batch.table));
    assert_eq!(streamed.stats, batch.stats);
}
