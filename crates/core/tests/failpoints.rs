//! Fault-injection tests for the executor's robustness story (compiled
//! only under `--features failpoints`).
//!
//! Each test arms the process-global failpoint registry at a named site
//! and asserts the executor degrades gracefully: partial results are
//! reported structurally, nothing hangs, and the failure set is the same
//! whether clusters run sequentially or on a worker pool.

#![cfg(feature = "failpoints")]

use sqlts_core::failpoints::{self, FailAction};
use sqlts_core::{execute_query, ExecError, ExecOptions, Governor, TripReason};
use sqlts_relation::{ColumnType, CsvError, Schema, Table, Value};
use std::num::NonZeroUsize;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// The registry is process-global: every test serializes on this lock and
/// resets the registry on entry and exit (also when the test panics).
static SERIAL: Mutex<()> = Mutex::new(());

struct RegistryGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for RegistryGuard {
    fn drop(&mut self) {
        failpoints::reset();
    }
}

fn armed() -> RegistryGuard {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    failpoints::reset();
    RegistryGuard(guard)
}

fn quote_schema() -> Schema {
    Schema::new([
        ("name", ColumnType::Str),
        ("date", ColumnType::Date),
        ("price", ColumnType::Float),
    ])
    .unwrap()
}

/// Three clusters (AAA, BBB, CCC), each with rising prices so the query
/// below matches in every cluster.
fn three_cluster_table() -> Table {
    let mut csv = String::from("name,date,price\n");
    for (name, base) in [("AAA", 10.0), ("BBB", 20.0), ("CCC", 30.0)] {
        for day in 1..=4 {
            csv.push_str(&format!("{name},1999-01-{day:02},{}\n", base + day as f64));
        }
    }
    Table::from_csv_str(quote_schema(), &csv).unwrap()
}

const QUERY: &str = "SELECT X.name, Y.price AS p FROM quote \
                     CLUSTER BY name SEQUENCE BY date AS (X, Y) \
                     WHERE Y.price > X.price";

fn opts(threads: usize) -> ExecOptions {
    ExecOptions {
        threads: NonZeroUsize::new(threads).unwrap(),
        ..Default::default()
    }
}

fn rows(table: &Table) -> Vec<Vec<Value>> {
    table.rows().map(<[Value]>::to_vec).collect()
}

#[test]
fn panicking_cluster_is_isolated() {
    let _guard = armed();
    // Panic only when cluster index 1 (BBB) is entered.
    failpoints::configure_rule("executor::cluster", FailAction::Panic, 1, Some(1), false);
    let table = three_cluster_table();
    let result = execute_query(QUERY, &table, &opts(1)).unwrap();
    assert!(!result.is_complete());
    assert_eq!(result.partial.len(), 1);
    let failure = &result.partial[0];
    assert_eq!(failure.cluster, 1);
    assert_eq!(failure.key, "BBB");
    assert!(failure.cause.contains("failpoint"), "{}", failure.cause);
    // The surviving clusters produced all their matches.
    let names: Vec<&Value> = result.table.rows().map(|r| &r[0]).collect();
    assert!(names.iter().all(|n| **n != Value::from("BBB")));
    assert!(names.contains(&&Value::from("AAA")));
    assert!(names.contains(&&Value::from("CCC")));
    assert_eq!(result.stats.clusters, 2, "only surviving clusters counted");
}

#[test]
fn sequential_and_parallel_failure_sets_agree() {
    let _guard = armed();
    let table = three_cluster_table();
    let complete = execute_query(QUERY, &table, &opts(1)).unwrap();
    // Property sweep: whichever cluster is poisoned, the sequential and
    // parallel runs must report the same failure set and the same
    // surviving rows — the complete output minus the poisoned cluster.
    for target in 0..3u64 {
        let mut outputs = Vec::new();
        for threads in [1usize, 4] {
            failpoints::reset();
            failpoints::configure_rule(
                "executor::cluster",
                FailAction::Panic,
                1,
                Some(target),
                false,
            );
            let result = execute_query(QUERY, &table, &opts(threads)).unwrap();
            assert_eq!(result.partial.len(), 1, "target {target} threads {threads}");
            assert_eq!(result.partial[0].cluster, target as usize);
            outputs.push(result);
        }
        let (seq, par) = (&outputs[0], &outputs[1]);
        assert_eq!(seq.partial, par.partial, "target {target}");
        assert_eq!(rows(&seq.table), rows(&par.table), "target {target}");
        assert_eq!(seq.stats, par.stats, "target {target}");
        // Graceful degradation: exactly the poisoned cluster's rows are
        // missing from the complete output.
        let failed_key = &seq.partial[0].key;
        let expected: Vec<Vec<Value>> = rows(&complete.table)
            .into_iter()
            .filter(|r| r[0] != Value::from(failed_key.as_str()))
            .collect();
        assert_eq!(rows(&seq.table), expected, "target {target}");
    }
}

#[test]
fn exhaust_budget_failpoint_trips_step_budget() {
    let _guard = armed();
    // The governor's shared check honours an injected budget exhaustion on
    // its very first visit — no real steps need to be burned.
    failpoints::configure("governor::check", FailAction::ExhaustBudget);
    let err = execute_query(
        QUERY,
        &three_cluster_table(),
        &ExecOptions {
            governor: Governor::unlimited().with_max_steps(1_000_000),
            ..Default::default()
        },
    )
    .unwrap_err();
    let ExecError::Governed { trip, partial } = err else {
        panic!("expected governed termination");
    };
    assert_eq!(trip.reason, TripReason::StepBudget);
    assert_eq!(partial.table.len(), 0);
}

#[test]
fn delay_failpoint_forces_deadline_trip() {
    let _guard = armed();
    // Make entering the first cluster slower than the deadline, so the
    // trip is deterministic instead of racing the clock.
    failpoints::configure_rule("executor::cluster", FailAction::DelayMs(30), 1, None, true);
    let err = execute_query(
        QUERY,
        &three_cluster_table(),
        &ExecOptions {
            governor: Governor::unlimited().with_timeout(Duration::from_millis(5)),
            ..Default::default()
        },
    )
    .unwrap_err();
    let ExecError::Governed { trip, partial } = err else {
        panic!("expected governed termination");
    };
    assert_eq!(trip.reason, TripReason::Deadline);
    assert!(trip.elapsed >= Duration::from_millis(5));
    assert!(partial.is_complete(), "no cluster panicked");
}

#[test]
fn csv_record_failpoint_injects_ingest_error() {
    let _guard = armed();
    // Fire on the second data record (line 3 of the file).
    failpoints::configure_rule("csv::record", FailAction::InjectError, 2, None, true);
    let err = Table::from_csv_str(
        quote_schema(),
        "name,date,price\nIBM,1999-01-25,81\nIBM,1999-01-26,82\n",
    )
    .unwrap_err();
    match err {
        CsvError::Io(e) => {
            let msg = e.to_string();
            assert!(msg.contains("csv::record"), "{msg}");
            assert!(msg.contains("line 3"), "{msg}");
        }
        other => panic!("expected injected I/O error, got {other:?}"),
    }
    // Once the rule is spent, ingest works again.
    assert!(Table::from_csv_str(quote_schema(), "name,date,price\nIBM,1999-01-25,81\n").is_ok());
}

#[test]
fn panic_isolation_composes_with_governor() {
    let _guard = armed();
    // One poisoned cluster *and* an armed (but generous) governor: the
    // run completes, reports the failure, and never trips.
    failpoints::configure_rule("executor::cluster", FailAction::Panic, 1, Some(0), false);
    let result = execute_query(
        QUERY,
        &three_cluster_table(),
        &ExecOptions {
            governor: Governor::unlimited().with_max_steps(1_000_000),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(result.partial.len(), 1);
    assert_eq!(result.partial[0].cluster, 0);
    assert!(!result.table.is_empty(), "surviving clusters still match");
}
