//! Crash-safe file writes shared by every component that persists state
//! (the CLI's `--checkpoint` and `--trace` writers, the server's
//! snapshot and metadata files).
//!
//! A bare `std::fs::write` torn by a crash leaves a half-written file
//! where the previous good copy used to be — exactly the failure a
//! checkpoint exists to survive.  [`atomic_write`] closes that hole with
//! the classic tmp+rename protocol: the new content is written to a
//! sibling temporary file, flushed to disk, and only then renamed over
//! the destination.  `rename(2)` within one directory is atomic on every
//! POSIX filesystem, so a reader (or a recovery pass) observes either the
//! complete old file or the complete new file, never a mixture.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The sibling path the new content is staged at before the rename.
///
/// Kept deterministic (`<name>.tmp` in the same directory) so a stale
/// staging file left by a crash is simply overwritten by the next write,
/// and so the rename never crosses a filesystem boundary.
pub fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("atomic"),
        std::ffi::OsString::from,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replace `path` with `bytes` via tmp+rename.
///
/// On any error the destination is untouched: either the staging file
/// failed (destination never modified) or the rename failed (staged copy
/// is discarded).  The staged file is fsynced before the rename so a
/// crash immediately after cannot resurrect a hole-y file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = staging_path(path);
    let result = stage_and_rename(path, &tmp, bytes);
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn stage_and_rename(path: &Path, tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(tmp)?;
    #[cfg(feature = "failpoints")]
    if let Some(sqlts_relation::failpoints::Injected::InjectError) =
        sqlts_relation::failpoints::hit("persist::atomic_write", bytes.len() as u64)
    {
        // Simulated crash mid-write: leave a torn staging file behind and
        // report failure.  The destination must still hold its previous
        // content — that is the property the regression tests pin.
        let _ = file.write_all(&bytes[..bytes.len() / 2]);
        return Err(io::Error::other(
            "failpoint 'persist::atomic_write' injected mid-write crash",
        ));
    }
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(tmp, path)?;
    // Persist the rename itself: fsync the containing directory so the
    // new directory entry survives a power cut (best-effort — some
    // filesystems refuse to fsync directories).
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_target(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqlts-persist-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn atomic_write_replaces_content_and_cleans_staging() {
        let path = temp_target("replace.txt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer than the first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer than the first");
        assert!(
            !staging_path(&path).exists(),
            "staging file must not linger"
        );
    }

    #[test]
    fn stale_staging_garbage_is_overwritten() {
        let path = temp_target("stale.txt");
        atomic_write(&path, b"good").unwrap();
        // A previous crash left half-written garbage at the staging path;
        // the next write must not be confused by it.
        fs::write(staging_path(&path), b"torn garb").unwrap();
        atomic_write(&path, b"better").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"better");
    }

    #[test]
    fn failed_write_leaves_destination_untouched() {
        // A destination in a directory that disappears mid-flight: the
        // staging create fails, and the original file (elsewhere) is
        // untouched because nothing was ever renamed over it.
        let missing = temp_target("no-such-dir").join("x.txt");
        assert!(atomic_write(&missing, b"data").is_err());
    }
}
