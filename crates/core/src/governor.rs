//! The query resource governor: deadlines, budgets and cancellation.
//!
//! The paper's OPS optimizer bounds *shifts*, not wall-clock or memory: an
//! adversarial pattern (a giant ambiguous-star cluster under
//! [`EngineKind::NaiveBacktrack`](crate::EngineKind::NaiveBacktrack), a
//! pathological input, a runaway client) can otherwise pin a core forever.
//! The governor makes every search loop preemptible without slowing the
//! ungoverned fast path:
//!
//! * a [`Governor`] is the user-facing *configuration* (wall-clock timeout,
//!   step budget, match/row budget, [`CancellationToken`]) carried in
//!   [`ExecOptions`](crate::ExecOptions);
//! * [`Governor::begin`] arms it into a [`RunGovernor`], the per-query
//!   shared state (deadline instant, consumed-step/match accumulators,
//!   first-trip latch) every worker thread observes;
//! * [`RunGovernor::scope`] hands each cluster a [`GovernorScope`], whose
//!   *batched credit counter* lets the engines' inner loops pay one `Cell`
//!   decrement per predicate test and only touch atomics / `Instant::now()`
//!   once per [`STEP_BATCH`] steps.
//!
//! The unit of the step budget is the paper's own cost metric: one step =
//! one predicate test (one input element tested against one pattern
//! element).  The match budget doubles as a coarse memory budget — each
//! retained match is one projected output row, the only per-result
//! allocation the executor keeps.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many locally metered steps a [`GovernorScope`] takes between
/// expensive checks (atomics, clock reads).  A predicate test is tens of
/// nanoseconds, so a batch is microseconds: deadlines are observed within
/// a sliver of `--timeout-ms` while the per-step overhead stays at one
/// branch + one `Cell` decrement.
pub const STEP_BATCH: u32 = 256;

/// A shared cancellation flag: clone it, hand it to a query via
/// [`Governor::with_token`], and [`cancel`](CancellationToken::cancel) it
/// from any thread to stop the query at the next governor check.
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Request cancellation.  Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](CancellationToken::cancel) been called?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a governed run was terminated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TripReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The predicate-test budget was exhausted.
    StepBudget,
    /// The match/row budget was exhausted.
    MatchBudget,
    /// The [`CancellationToken`] was cancelled.
    Cancelled,
}

impl TripReason {
    /// The dependency-free mirror of this reason in the trace crate's
    /// vocabulary (used when folding trips into profiles and events).
    pub fn trace_cause(self) -> sqlts_trace::TripCause {
        match self {
            TripReason::Deadline => sqlts_trace::TripCause::Deadline,
            TripReason::StepBudget => sqlts_trace::TripCause::StepBudget,
            TripReason::MatchBudget => sqlts_trace::TripCause::MatchBudget,
            TripReason::Cancelled => sqlts_trace::TripCause::Cancelled,
        }
    }
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripReason::Deadline => write!(f, "deadline exceeded"),
            TripReason::StepBudget => write!(f, "step budget exhausted"),
            TripReason::MatchBudget => write!(f, "match budget exhausted"),
            TripReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A record of a governed termination: what tripped, and how much of each
/// resource had been consumed when it did.
#[derive(Clone, Debug)]
pub struct Trip {
    /// Which limit tripped first.
    pub reason: TripReason,
    /// Predicate-test steps consumed across all workers at trip time.
    pub steps: u64,
    /// Matches retained across all workers at trip time.
    pub matches: u64,
    /// Wall-clock time since [`Governor::begin`].
    pub elapsed: Duration,
}

impl fmt::Display for Trip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {:.1}ms ({} steps, {} matches)",
            self.reason,
            self.elapsed.as_secs_f64() * 1e3,
            self.steps,
            self.matches
        )
    }
}

/// Per-query resource limits (all optional; the default is unlimited).
///
/// `Governor` is cheap to clone and inert until [`begin`](Governor::begin)
/// arms it for one query run; reusing the same `Governor` for many queries
/// gives each its own fresh budgets and deadline.
#[derive(Clone, Debug, Default)]
pub struct Governor {
    timeout: Option<Duration>,
    max_steps: Option<u64>,
    max_matches: Option<u64>,
    token: Option<CancellationToken>,
}

impl Governor {
    /// No limits: every check short-circuits.
    pub fn unlimited() -> Governor {
        Governor::default()
    }

    /// Limit wall-clock time, measured from [`begin`](Governor::begin).
    pub fn with_timeout(mut self, timeout: Duration) -> Governor {
        self.timeout = Some(timeout);
        self
    }

    /// Limit total predicate tests (the paper's cost metric) across all
    /// clusters and worker threads.
    pub fn with_max_steps(mut self, max_steps: u64) -> Governor {
        self.max_steps = Some(max_steps);
        self
    }

    /// Limit total retained matches (= projected output rows), the
    /// executor's dominant memory consumer.
    pub fn with_max_matches(mut self, max_matches: u64) -> Governor {
        self.max_matches = Some(max_matches);
        self
    }

    /// Attach a cancellation token.
    pub fn with_token(mut self, token: CancellationToken) -> Governor {
        self.token = Some(token);
        self
    }

    /// `true` if no limit or token is set — the executor skips all
    /// metering plumbing entirely in that case.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.max_steps.is_none()
            && self.max_matches.is_none()
            && self.token.is_none()
    }

    /// Arm the governor for one query run: the deadline clock starts now.
    /// The returned handle is shared (by clone) with every worker thread.
    pub fn begin(&self) -> Arc<RunGovernor> {
        let started = Instant::now();
        Arc::new(RunGovernor {
            deadline: self.timeout.map(|t| started + t),
            max_steps: self.max_steps,
            max_matches: self.max_matches,
            token: self.token.clone(),
            started,
            steps: AtomicU64::new(0),
            matches: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            trip: Mutex::new(None),
        })
    }
}

/// The armed, per-query-run governor state shared (by reference) across
/// the executor's worker threads.
#[derive(Debug)]
pub struct RunGovernor {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    max_matches: Option<u64>,
    token: Option<CancellationToken>,
    started: Instant,
    steps: AtomicU64,
    matches: AtomicU64,
    tripped: AtomicBool,
    trip: Mutex<Option<Trip>>,
}

impl RunGovernor {
    /// A per-cluster metering handle (single-threaded, batched).
    pub fn scope(self: &Arc<RunGovernor>) -> GovernorScope {
        GovernorScope {
            run: Arc::clone(self),
        }
    }

    /// Total steps flushed by all scopes so far.
    pub fn steps_consumed(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Total matches recorded by all scopes so far.
    pub fn matches_recorded(&self) -> u64 {
        self.matches.load(Ordering::Relaxed)
    }

    /// Has any limit tripped (or the token been cancelled)?  Workers poll
    /// this before starting each cluster so a tripped query winds down
    /// without scanning further clusters.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
            || self
                .token
                .as_ref()
                .is_some_and(CancellationToken::is_cancelled)
    }

    /// The first trip recorded, if any.
    pub fn trip(&self) -> Option<Trip> {
        if let Some(t) = self.trip.lock().expect("trip lock").clone() {
            return Some(t);
        }
        // A cancelled token may not have been observed by any scope yet
        // (e.g. every cluster finished before the cancel landed in a
        // check).  Surface it as a trip anyway so callers see one story.
        if self
            .token
            .as_ref()
            .is_some_and(CancellationToken::is_cancelled)
        {
            return Some(self.make_trip(TripReason::Cancelled));
        }
        None
    }

    /// Build a [`Trip`] for `reason` from the current counters without
    /// latching it.  Used as a graceful fallback when a caller observed a
    /// trip condition but the latched record is not (yet) visible.
    pub(crate) fn make_trip(&self, reason: TripReason) -> Trip {
        Trip {
            reason,
            steps: self.steps.load(Ordering::Relaxed),
            matches: self.matches.load(Ordering::Relaxed),
            elapsed: self.started.elapsed(),
        }
    }

    /// Latch `reason` as the run's trip (first writer wins).
    fn record_trip(&self, reason: TripReason) {
        let mut slot = self.trip.lock().expect("trip lock");
        if slot.is_none() {
            *slot = Some(self.make_trip(reason));
        }
        drop(slot);
        self.tripped.store(true, Ordering::Relaxed);
    }

    /// The expensive check: flush `delta` locally metered steps into the
    /// shared total, then test every armed limit.  Called once per
    /// [`STEP_BATCH`] steps by [`GovernorScope`].
    fn check(&self, delta: u64) -> Result<(), TripReason> {
        let total = self.steps.fetch_add(delta, Ordering::Relaxed) + delta;
        if self.tripped.load(Ordering::Relaxed) {
            // Another worker already tripped; report the latched reason so
            // all clusters wind down under one verdict.
            let reason = self
                .trip
                .lock()
                .expect("trip lock")
                .as_ref()
                .map(|t| t.reason)
                .unwrap_or(TripReason::Cancelled);
            return Err(reason);
        }
        #[cfg(feature = "failpoints")]
        if matches!(
            sqlts_relation::failpoints::hit("governor::check", total),
            Some(sqlts_relation::failpoints::Injected::ExhaustBudget)
        ) {
            self.record_trip(TripReason::StepBudget);
            return Err(TripReason::StepBudget);
        }
        if self
            .token
            .as_ref()
            .is_some_and(CancellationToken::is_cancelled)
        {
            self.record_trip(TripReason::Cancelled);
            return Err(TripReason::Cancelled);
        }
        if self.max_steps.is_some_and(|m| total > m) {
            self.record_trip(TripReason::StepBudget);
            return Err(TripReason::StepBudget);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.record_trip(TripReason::Deadline);
            return Err(TripReason::Deadline);
        }
        Ok(())
    }

    /// Check the wall-clock deadline and cancellation token *without*
    /// charging any steps, latching a trip exactly like [`check`].
    ///
    /// [`check`] only runs once per credit batch, which is fine when steps
    /// arrive fast — but a streaming session fed a slow trickle of tuples
    /// could otherwise sit inside one batch long past `--timeout-ms`.
    /// Sessions call this at every `feed()` boundary, and scopes call it on
    /// every flush, so the deadline is honored at tuple granularity.
    pub fn poll(&self) -> Result<(), TripReason> {
        if self.tripped.load(Ordering::Relaxed) {
            let reason = self
                .trip
                .lock()
                .expect("trip lock")
                .as_ref()
                .map(|t| t.reason)
                .unwrap_or(TripReason::Cancelled);
            return Err(reason);
        }
        if self
            .token
            .as_ref()
            .is_some_and(CancellationToken::is_cancelled)
        {
            self.record_trip(TripReason::Cancelled);
            return Err(TripReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.record_trip(TripReason::Deadline);
            return Err(TripReason::Deadline);
        }
        Ok(())
    }

    /// Record one retained match.  Matches are far rarer than steps, so
    /// this hits the shared counter directly (no batching).  On `Err` the
    /// caller must *not* retain the match (the counter is rolled back so
    /// [`matches_recorded`](RunGovernor::matches_recorded) stays the
    /// retained count).
    fn record_match(&self) -> Result<(), TripReason> {
        let total = self.matches.fetch_add(1, Ordering::Relaxed) + 1;
        if self.max_matches.is_some_and(|m| total > m) {
            self.matches.fetch_sub(1, Ordering::Relaxed);
            self.record_trip(TripReason::MatchBudget);
            return Err(TripReason::MatchBudget);
        }
        Ok(())
    }

    /// How much credit a scope may spend before its next [`check`]: a full
    /// batch, shrunk near the step budget so sequential runs trip exactly
    /// at the limit (parallel runs can overshoot by at most one batch per
    /// worker).
    fn credit(&self) -> u32 {
        match self.max_steps {
            None => STEP_BATCH,
            Some(m) => {
                let left = m.saturating_sub(self.steps.load(Ordering::Relaxed));
                u64::from(STEP_BATCH).min(left).max(1) as u32
            }
        }
    }
}

/// A single-threaded, per-cluster metering handle: the engines' inner
/// loops call [`EvalCounter::bump`](crate::EvalCounter::bump), which spends
/// one unit of this scope's credit; only when the credit runs out does the
/// scope consult the shared [`RunGovernor`].
#[derive(Debug, Clone)]
pub struct GovernorScope {
    run: Arc<RunGovernor>,
}

impl GovernorScope {
    /// Flush `spent` steps and run the shared checks; on success returns
    /// the credit for the next batch.
    pub(crate) fn refill(&self, spent: u64) -> Result<u32, TripReason> {
        self.run.check(spent)?;
        Ok(self.run.credit())
    }

    /// Record one retained match against the match budget.
    pub(crate) fn record_match(&self) -> Result<(), TripReason> {
        self.run.record_match()
    }

    /// Flush steps metered since the last refill without asking for more
    /// credit (end-of-cluster accounting).  Also polls the wall-clock
    /// deadline: a cluster can finish well inside one credit batch, and
    /// without this a streaming trickle would only observe the deadline
    /// every [`STEP_BATCH`] steps.
    pub(crate) fn flush(&self, spent: u64) {
        if spent > 0 {
            self.run.steps.fetch_add(spent, Ordering::Relaxed);
        }
        let _ = self.run.poll();
    }

    /// The run this scope meters against.
    pub fn run(&self) -> &RunGovernor {
        &self.run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let run = Governor::unlimited().begin();
        let scope = run.scope();
        for _ in 0..10 {
            assert!(scope.refill(1_000_000).is_ok());
        }
        assert!(run.trip().is_none());
        assert!(!run.is_tripped());
        assert_eq!(run.steps_consumed(), 10_000_000);
    }

    #[test]
    fn step_budget_trips_exactly_in_sequential_use() {
        let run = Governor::unlimited().with_max_steps(1000).begin();
        let scope = run.scope();
        let mut spent = 0u64;
        let mut credit;
        loop {
            match scope.refill(0) {
                Ok(c) => credit = c,
                Err(reason) => {
                    assert_eq!(reason, TripReason::StepBudget);
                    break;
                }
            }
            // Spend the whole batch, as the counter does.
            spent += u64::from(credit);
            match scope.refill(u64::from(credit)) {
                Ok(_) => {}
                Err(reason) => {
                    assert_eq!(reason, TripReason::StepBudget);
                    break;
                }
            }
        }
        // Credit clamping shrinks the last batch to 1, so the trip is
        // detected on the very first step past the budget — an overshoot
        // of exactly one step, never a whole batch.
        assert_eq!(spent, 1001, "trip must land on the first over-budget step");
        let trip = run.trip().expect("tripped");
        assert_eq!(trip.reason, TripReason::StepBudget);
        assert!(trip.steps >= 1000);
    }

    #[test]
    fn deadline_trips() {
        let run = Governor::unlimited()
            .with_timeout(Duration::from_millis(0))
            .begin();
        let scope = run.scope();
        assert_eq!(scope.refill(1).unwrap_err(), TripReason::Deadline);
        assert!(run.is_tripped());
        assert_eq!(run.trip().unwrap().reason, TripReason::Deadline);
    }

    #[test]
    fn cancellation_trips_and_is_sticky() {
        let token = CancellationToken::new();
        let gov = Governor::unlimited().with_token(token.clone());
        let run = gov.begin();
        assert!(run.scope().refill(1).is_ok());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(run.scope().refill(1).unwrap_err(), TripReason::Cancelled);
        assert!(run.is_tripped());
        // A second run of the same governor sees the same token.
        let run2 = gov.begin();
        assert!(run2.is_tripped());
        assert_eq!(run2.trip().unwrap().reason, TripReason::Cancelled);
    }

    #[test]
    fn match_budget_trips() {
        let run = Governor::unlimited().with_max_matches(2).begin();
        let scope = run.scope();
        assert!(scope.record_match().is_ok());
        assert!(scope.record_match().is_ok());
        assert_eq!(scope.record_match().unwrap_err(), TripReason::MatchBudget);
        // The rejected match is rolled back: the counter is the retained
        // count, which is exactly the budget.
        assert_eq!(run.matches_recorded(), 2);
        assert_eq!(run.trip().unwrap().reason, TripReason::MatchBudget);
    }

    #[test]
    fn first_trip_wins() {
        let run = Governor::unlimited()
            .with_max_steps(10)
            .with_max_matches(1)
            .begin();
        let scope = run.scope();
        assert_eq!(
            scope.record_match().and(scope.record_match()).unwrap_err(),
            TripReason::MatchBudget
        );
        // A later step-budget violation reports the latched match trip.
        assert!(scope.refill(100).is_err());
        assert_eq!(run.trip().unwrap().reason, TripReason::MatchBudget);
    }

    #[test]
    fn flush_polls_deadline_within_a_credit_batch() {
        // Regression: a scope that never exhausts its credit batch (slow
        // trickle of steps) must still observe the wall-clock deadline when
        // it flushes, not overshoot by a whole batch.
        let run = Governor::unlimited()
            .with_timeout(Duration::from_millis(1))
            .begin();
        let scope = run.scope();
        std::thread::sleep(Duration::from_millis(5));
        // Far fewer than STEP_BATCH steps: check() never runs.
        scope.flush(3);
        assert!(run.is_tripped(), "flush must latch the expired deadline");
        assert_eq!(run.trip().unwrap().reason, TripReason::Deadline);
        assert_eq!(run.steps_consumed(), 3);
    }

    #[test]
    fn poll_checks_deadline_and_token_without_charging_steps() {
        let run = Governor::unlimited()
            .with_timeout(Duration::from_millis(1))
            .begin();
        assert!(run.poll().is_ok() || run.poll().is_err()); // no panic either way
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(run.poll().unwrap_err(), TripReason::Deadline);
        assert_eq!(run.steps_consumed(), 0, "poll must not charge steps");
        // Latched: subsequent polls report the same trip.
        assert_eq!(run.poll().unwrap_err(), TripReason::Deadline);

        let token = CancellationToken::new();
        let run = Governor::unlimited().with_token(token.clone()).begin();
        assert!(run.poll().is_ok());
        token.cancel();
        assert_eq!(run.poll().unwrap_err(), TripReason::Cancelled);
    }

    #[test]
    fn trip_display_is_informative() {
        let run = Governor::unlimited().with_max_steps(1).begin();
        let _ = run.scope().refill(5);
        let msg = run.trip().unwrap().to_string();
        assert!(msg.contains("step budget exhausted"), "{msg}");
        assert!(msg.contains("steps"), "{msg}");
    }

    #[test]
    fn is_unlimited_reflects_configuration() {
        assert!(Governor::unlimited().is_unlimited());
        assert!(!Governor::unlimited().with_max_steps(1).is_unlimited());
        assert!(!Governor::unlimited()
            .with_timeout(Duration::from_secs(1))
            .is_unlimited());
        assert!(!Governor::unlimited()
            .with_token(CancellationToken::new())
            .is_unlimited());
    }
}
