//! Classic Knuth–Morris–Pratt string search (§3.1 of the paper).
//!
//! Included both as the reference point for experiment E6 (OPS degenerates
//! to KMP on constant-equality patterns) and as a standalone, reusable
//! text-search utility.  The `next` array follows the paper's (and Knuth,
//! Morris & Pratt's) *optimized* failure function: `next[j]` is the
//! largest `k < j` such that the pattern prefix of length `k-1` matches
//! the text behind the cursor **and** `p_k ≠ p_j` (so re-comparing `p_k`
//! cannot fail the same way again); 0 means "advance the input".

use crate::counters::EvalCounter;
use sqlts_trace::TraceEvent;

/// The compiled KMP automaton for a pattern over any equatable alphabet.
#[derive(Clone, Debug)]
pub struct Kmp<T: PartialEq + Clone> {
    pattern: Vec<T>,
    /// 1-based `next` array (`next[0]` is padding).
    next: Vec<usize>,
    /// Longest proper border of the whole pattern (for match
    /// continuation with overlaps).
    border: usize,
}

impl<T: PartialEq + Clone> Kmp<T> {
    /// Compile a pattern.  `O(m)`.
    pub fn new(pattern: &[T]) -> Kmp<T> {
        let m = pattern.len();
        // f[j] = length of the longest proper border of the length-j
        // prefix (the classic failure function).
        let mut f = vec![0usize; m + 1];
        for j in 2..=m {
            let mut k = f[j - 1];
            while k > 0 && pattern[j - 1] != pattern[k] {
                k = f[k];
            }
            if pattern[j - 1] == pattern[k] {
                k += 1;
            }
            f[j] = k;
        }
        // The *optimized* next: fall back past borders whose next symbol
        // equals p_j (re-comparing it would fail identically).
        let mut next = vec![0usize; m + 1];
        for j in 2..=m {
            let b = f[j - 1];
            next[j] = if pattern[b] == pattern[j - 1] {
                next[b + 1]
            } else {
                b + 1
            };
        }
        Kmp {
            pattern: pattern.to_vec(),
            next,
            border: f[m],
        }
    }

    /// Pattern length.
    pub fn len(&self) -> usize {
        self.pattern.len()
    }

    /// `true` iff the pattern is empty.
    pub fn is_empty(&self) -> bool {
        self.pattern.is_empty()
    }

    /// The 1-based `next` array (index 0 is padding).
    pub fn next_array(&self) -> &[usize] {
        &self.next
    }

    /// Find all (possibly overlapping) occurrences; returns 0-based start
    /// positions.  `counter` tallies symbol comparisons.
    pub fn find_all(&self, text: &[T], counter: &EvalCounter) -> Vec<usize> {
        let m = self.len();
        let n = text.len();
        let mut out = Vec::new();
        if m == 0 || n < m {
            return out;
        }
        let mut i = 0usize; // 0-based text cursor
        let mut j = 1usize; // 1-based pattern cursor
                            // A governed counter stops the scan early; `out` is then a prefix
                            // of the full occurrence list.
        while i < n && !counter.tripped() {
            counter.bump();
            let eq = text[i] == self.pattern[j - 1];
            counter.record_test(i + 1, j, eq);
            if eq {
                i += 1;
                j += 1;
                if j > m {
                    if counter.match_found() {
                        if counter.armed() {
                            counter.emit(TraceEvent::MatchEmitted {
                                start: (i - m + 1) as u32,
                                end: i as u32,
                            });
                        }
                        out.push(i - m);
                    }
                    // Standard continuation: longest border of the full
                    // pattern (use the failure function, not the
                    // optimized next, to keep overlapping matches).
                    j = self.border + 1;
                }
            } else {
                let k = self.next[j];
                if counter.armed() {
                    counter.emit(TraceEvent::Next {
                        j: j as u32,
                        k: k as u32,
                    });
                }
                j = k;
                if j == 0 {
                    i += 1;
                    j = 1;
                }
            }
        }
        out
    }

    /// First occurrence, or `None`.
    pub fn find_first(&self, text: &[T], counter: &EvalCounter) -> Option<usize> {
        // Cheap reuse: stop at the first hit.
        let m = self.len();
        let n = text.len();
        if m == 0 || n < m {
            return None;
        }
        let mut i = 0usize;
        let mut j = 1usize;
        while i < n && !counter.tripped() {
            counter.bump();
            let eq = text[i] == self.pattern[j - 1];
            counter.record_test(i + 1, j, eq);
            if eq {
                i += 1;
                j += 1;
                if j > m {
                    return Some(i - m);
                }
            } else {
                j = self.next[j];
                if j == 0 {
                    i += 1;
                    j = 1;
                }
            }
        }
        None
    }
}

/// Convenience: search a byte-string pattern in a byte-string text.
pub fn find_all_str(pattern: &str, text: &str, counter: &EvalCounter) -> Vec<usize> {
    Kmp::new(pattern.as_bytes()).find_all(text.as_bytes(), counter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_next_array() {
        // §3.1 uses the pattern "abcabcacab" from Knuth, Morris & Pratt.
        // The canonical optimized next values (1-based, from the KMP
        // paper) are: 0 1 1 0 1 1 0 5 0 1.
        let kmp = Kmp::new("abcabcacab".as_bytes());
        assert_eq!(&kmp.next_array()[1..], &[0, 1, 1, 0, 1, 1, 0, 5, 0, 1]);
    }

    #[test]
    fn paper_example_search() {
        // The paper's §3.1 text: the pattern occurs at (0-based) 15? —
        // "babcbabcabcaabcabcabcacabc" contains "abcabcacab" starting at
        // position 15.
        let c = EvalCounter::new();
        let hits = find_all_str("abcabcacab", "babcbabcabcaabcabcabcacabc", &c);
        assert_eq!(hits, vec![15]);
        // Linear complexity: at most 2n comparisons.
        assert!(c.total() <= 2 * 26);
    }

    #[test]
    fn finds_all_overlapping_occurrences() {
        let c = EvalCounter::new();
        assert_eq!(find_all_str("aa", "aaaa", &c), vec![0, 1, 2]);
        assert_eq!(
            find_all_str("aba", "ababa", &EvalCounter::new()),
            vec![0, 2]
        );
    }

    #[test]
    fn no_match_and_edges() {
        let c = EvalCounter::new();
        assert!(find_all_str("xyz", "aaaa", &c).is_empty());
        assert!(find_all_str("longer", "abc", &c).is_empty());
        assert!(find_all_str("", "abc", &c).is_empty());
        let kmp: Kmp<u8> = Kmp::new(b"");
        assert!(kmp.is_empty());
        assert_eq!(kmp.find_first(b"abc", &c), None);
    }

    #[test]
    fn find_first_matches_find_all_head() {
        let texts = ["abcabcabcacab", "aabaabaaab", "mississippi"];
        let pats = ["abcabcacab", "aabaaab", "issi"];
        for (t, p) in texts.iter().zip(pats) {
            let all = find_all_str(p, t, &EvalCounter::new());
            let first = Kmp::new(p.as_bytes()).find_first(t.as_bytes(), &EvalCounter::new());
            assert_eq!(all.first().copied(), first, "pattern {p} in {t}");
        }
    }

    #[test]
    fn works_over_integer_alphabets() {
        let kmp = Kmp::new(&[10i64, 11, 15]);
        let c = EvalCounter::new();
        let hits = kmp.find_all(&[9, 10, 11, 15, 10, 11, 15], &c);
        assert_eq!(hits, vec![1, 4]);
    }

    #[test]
    fn linear_comparison_bound() {
        // KMP's guarantee: ≤ 2n comparisons, never backtracking the text.
        let text: Vec<u8> = std::iter::repeat(b"aab".iter().copied())
            .take(500)
            .flatten()
            .collect();
        let kmp = Kmp::new(b"aabaabaaab");
        let c = EvalCounter::new();
        kmp.find_all(&text, &c);
        assert!(c.total() <= 2 * text.len() as u64, "{}", c.total());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// KMP agrees with the std-library substring search.
            #[test]
            fn agrees_with_std(
                pattern in "[ab]{1,6}",
                text in "[ab]{0,60}",
            ) {
                let expected: Vec<usize> = (0..=text.len().saturating_sub(pattern.len()))
                    .filter(|&i| text.len() >= pattern.len() && text[i..].starts_with(&pattern))
                    .collect();
                let got = find_all_str(&pattern, &text, &EvalCounter::new());
                prop_assert_eq!(got, expected);
            }

            /// Comparison count is linear in the text length.
            #[test]
            fn linear_cost(pattern in "[ab]{1,8}", text in "[ab]{0,200}") {
                let c = EvalCounter::new();
                find_all_str(&pattern, &text, &c);
                prop_assert!(c.total() <= 2 * text.len() as u64 + pattern.len() as u64);
            }
        }
    }
}
