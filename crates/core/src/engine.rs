//! The pattern-search engines: naive backtracking and OPS.
//!
//! Both engines implement the same SQL-TS match semantics (see DESIGN.md):
//!
//! * **greedy stars** — a starred element consumes the maximal run of
//!   satisfying tuples (one or more);
//! * **left-maximality / non-overlap** — after a match, the search resumes
//!   at the tuple following the match's last tuple;
//! * identical handling of `previous` references before the start of the
//!   stream ([`FirstTuplePolicy`]).
//!
//! They differ only in how much work they do: the naive engine restarts
//! from scratch one tuple further on every failure; OPS consults the
//! compile-time `shift` / `next` tables and the runtime `count[]` array of
//! §5 to skip work whose outcome is already known.

use crate::counters::{EvalCounter, SearchTrace};
use crate::matrices::{test_element, PrecondMatrices, Predicates};
use crate::shift_next::{self, ShiftNext};
use crate::stargraph::star_shift_next;
use sqlts_lang::{Bindings, EvalCtx, FirstTuplePolicy, PatternElement};
use sqlts_relation::Cluster;
use sqlts_trace::TraceEvent;

/// Which engine to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineKind {
    /// Naive restart-per-tuple search with the greedy star semantics —
    /// the baseline of the paper's Figure 5.
    Naive,
    /// Naive search that *backtracks over star extents* (the direct
    /// implementation of the star's Datalog semantics, cf. §2).  On
    /// patterns whose adjacent predicates are mutually exclusive it finds
    /// the same matches as the greedy engines; its cost explodes on
    /// ambiguous patterns, which is the regime where the paper's §7
    /// reports two-orders-of-magnitude speedups.
    NaiveBacktrack,
    /// Full OPS: compile-time `shift` and `next` (§4.2 / §5.1).
    #[default]
    Ops,
    /// Ablation: OPS `shift` but `next` forced conservative (re-verify the
    /// whole prefix after every shift).  Experiment E10.
    OpsShiftOnly,
}

impl EngineKind {
    /// The engine's stable CLI/profile name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Naive => "naive",
            EngineKind::NaiveBacktrack => "backtrack",
            EngineKind::Ops => "ops",
            EngineKind::OpsShiftOnly => "shift-only",
        }
    }
}

/// Emit the `MatchEmitted` event for a retained match (1-based inclusive
/// input positions); a no-op branch when the counter is unarmed.
#[inline]
fn emit_match(counter: &EvalCounter, spans: &[(usize, usize)]) {
    if counter.armed() {
        counter.emit(TraceEvent::MatchEmitted {
            start: spans.first().map(|s| s.0 + 1).unwrap_or(0) as u32,
            end: spans.last().map(|s| s.1 + 1).unwrap_or(0) as u32,
        });
    }
}

/// Options shared by the engines.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchOptions {
    /// Semantics of out-of-range `previous`/`next` references.
    pub policy: FirstTuplePolicy,
}

/// One match: per-element inclusive spans of 0-based cluster positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchSpans {
    /// `spans[e]` is the `(first, last)` tuple range element `e` matched.
    pub spans: Vec<(usize, usize)>,
}

impl MatchSpans {
    /// First tuple of the whole match.
    pub fn start(&self) -> usize {
        self.spans.first().map(|s| s.0).unwrap_or(0)
    }

    /// Last tuple of the whole match.
    pub fn end(&self) -> usize {
        self.spans.last().map(|s| s.1).unwrap_or(0)
    }

    /// The bindings view used for projection.
    pub fn bindings(&self) -> Bindings {
        Bindings {
            spans: self.spans.clone(),
        }
    }
}

/// The compile-time plan an engine runs: shift/next tables plus the flags
/// that control the runtime.
#[derive(Clone, Debug)]
pub struct SearchPlan {
    /// The shift/next tables (naive tables for [`EngineKind::Naive`]).
    pub tables: ShiftNext,
    /// Restart one tuple at a time instead of one span at a time.
    ///
    /// Span-granular restarts are justified by greedy determinism, which
    /// needs purely-local predicates; when the first element is starred
    /// and the pattern has non-local conjuncts, a restart *inside* the
    /// first element's span can behave differently (its `FIRST()` binding
    /// changes), so we fall back to tuple granularity.
    pub tuple_granular_restart: bool,
}

/// Build the search plan for a pattern under the chosen engine.
pub fn plan(elements: &[PatternElement], kind: EngineKind) -> SearchPlan {
    let pattern = Predicates::new(elements);
    let m = pattern.len();
    let has_star = elements.iter().any(|e| e.star);
    let has_nonlocal = elements.iter().any(|e| !e.purely_local());
    let tables = match kind {
        EngineKind::Naive | EngineKind::NaiveBacktrack => ShiftNext::naive(m),
        EngineKind::Ops | EngineKind::OpsShiftOnly => {
            let pre = PrecondMatrices::build(pattern);
            let sn = if has_star {
                star_shift_next(pattern, &pre)
            } else {
                shift_next::compute(&pre)
            };
            if kind == EngineKind::OpsShiftOnly {
                shift_only(&sn)
            } else {
                sn
            }
        }
    };
    SearchPlan {
        tables,
        tuple_granular_restart: elements.first().is_some_and(|e| e.star) && has_nonlocal,
    }
}

/// The shift-only ablation: keep `shift`, force `next` to re-verify
/// everything (`1`, or `0` where the full shift applies).
fn shift_only(sn: &ShiftNext) -> ShiftNext {
    let m = sn.len();
    let mut shift = vec![0usize; m + 1];
    let mut next = vec![0usize; m + 1];
    for j in 1..=m {
        shift[j] = sn.shift(j);
        next[j] = if sn.shift(j) == j { 0 } else { 1 };
    }
    ShiftNext::from_arrays(shift, next)
}

/// Find all matches of `elements` in `cluster` using `kind`.
///
/// `counter` accumulates the paper's cost metric; pass a `trace` to record
/// the `(i, j)` search path (Figure 5).
pub fn find_matches(
    elements: &[PatternElement],
    cluster: &Cluster<'_>,
    kind: EngineKind,
    options: &SearchOptions,
    counter: &EvalCounter,
    trace: Option<&mut SearchTrace>,
) -> Vec<MatchSpans> {
    match kind {
        EngineKind::Naive => naive_search(elements, cluster, options, counter, trace),
        EngineKind::NaiveBacktrack => {
            backtracking_search(elements, cluster, options, counter, trace)
        }
        _ => {
            let search_plan = plan(elements, kind);
            ops_search(elements, cluster, &search_plan, options, counter, trace)
        }
    }
}

/// Why an incremental engine step returned control to its driver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The search consumed everything currently buffered and needs more
    /// input (never returned once `eof` is set).
    NeedInput,
    /// The cluster is fully searched; further calls keep returning `Done`.
    Done,
    /// The governor tripped.  The machine's position is preserved *at* the
    /// trip check, so a resumed session (with a fresh, untripped counter)
    /// continues bit-identically to a run that never tripped; a batch
    /// driver simply stops and keeps the matches found so far.
    Tripped,
}

/// The input view an incremental engine step runs over.
pub struct StepInput<'a, 'b> {
    /// The stream (possibly a bounded window view; positions are absolute).
    pub cluster: &'a Cluster<'b>,
    /// `true` once no further tuples will ever arrive.
    pub eof: bool,
    /// How many tuples beyond the one under test must already be buffered
    /// before the test may run (the pattern's maximum positive field-ref
    /// offset).  Before `eof`, testing tuple `i` requires
    /// `i + lookahead < cluster.len()` so `next`-style references resolve
    /// exactly as they would in a batch run over the full stream.
    pub lookahead: usize,
}

impl StepInput<'_, '_> {
    /// May tuple `i` be tested yet?
    #[inline]
    fn testable(&self, i: usize) -> bool {
        self.eof || i + self.lookahead < self.cluster.len()
    }
}

/// A resumable engine: one of the three search state machines, driven
/// incrementally by [`EngineMachine::run`].
#[derive(Clone, Debug)]
pub enum EngineMachine {
    /// The naive greedy engine.
    Naive(NaiveMachine),
    /// The backtracking baseline.
    Backtrack(BacktrackMachine),
    /// OPS (also the shift-only ablation; the difference lives in the
    /// [`SearchPlan`] tables).
    Ops(OpsMachine),
}

impl EngineMachine {
    /// A fresh machine for `kind` over a pattern of `m` elements.
    pub fn new(kind: EngineKind, m: usize) -> EngineMachine {
        match kind {
            EngineKind::Naive => EngineMachine::Naive(NaiveMachine::new()),
            EngineKind::NaiveBacktrack => EngineMachine::Backtrack(BacktrackMachine::new()),
            EngineKind::Ops | EngineKind::OpsShiftOnly => EngineMachine::Ops(OpsMachine::new(m)),
        }
    }

    /// Advance the search as far as the buffered input allows, appending
    /// completed matches to `out`.  `search_plan` is required for the OPS
    /// machines and ignored by the naive ones.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        elements: &[PatternElement],
        search_plan: Option<&SearchPlan>,
        input: &StepInput<'_, '_>,
        options: &SearchOptions,
        counter: &EvalCounter,
        trace: Option<&mut SearchTrace>,
        out: &mut Vec<MatchSpans>,
    ) -> StepOutcome {
        match self {
            EngineMachine::Naive(m) => m.run(elements, input, options, counter, trace, out),
            EngineMachine::Backtrack(m) => m.run(elements, input, options, counter, trace, out),
            EngineMachine::Ops(m) => m.run(
                elements,
                search_plan.expect("OPS machine needs a search plan"),
                input,
                options,
                counter,
                trace,
                out,
            ),
        }
    }

    /// The lowest stream position the machine can still reference (the
    /// current attempt's start).  A streaming window may compact everything
    /// below `window_low() - lookbehind`.
    pub fn window_low(&self) -> usize {
        match self {
            EngineMachine::Naive(m) => m.start,
            EngineMachine::Backtrack(m) => m.start,
            EngineMachine::Ops(m) => m.start,
        }
    }

    /// Abandon the in-flight attempt and restart the search at `pos`
    /// (streaming backpressure relief).  Sound in the same way a failed
    /// predicate is sound: already-emitted matches stay valid and matches
    /// starting at or after `pos` are still found; attempts straddling the
    /// discarded region are treated as failed.
    pub fn restart_at(&mut self, pos: usize) {
        match self {
            EngineMachine::Naive(m) => {
                m.start = pos;
                m.e = 0;
                m.in_star = false;
                m.bindings.spans.clear();
            }
            EngineMachine::Backtrack(m) => {
                m.start = pos;
                m.pc = BtPc::Idle;
                m.frames.clear();
                m.bindings.spans.clear();
            }
            EngineMachine::Ops(m) => m.reset_attempt(pos),
        }
    }
}

/// The backtracking baseline as an explicit stack machine (the recursion
/// of the batch implementation flattened frame by frame so it can suspend
/// on [`StepOutcome::NeedInput`] and be checkpointed).
#[derive(Clone, Debug)]
pub struct BacktrackMachine {
    pub(crate) start: usize,
    pub(crate) frames: Vec<BtFrame>,
    pub(crate) pc: BtPc,
    pub(crate) bindings: Bindings,
}

/// One suspended recursion frame of [`BacktrackMachine`]; the frame at
/// depth `d` (0-based) handles pattern element `d + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BtFrame {
    /// A non-star element: on a failed suffix, pop its span and fail.
    NonStar,
    /// A star element at extent `i..=end`: on a failed suffix, try the
    /// next extent.
    Star {
        /// First tuple of the star's span.
        i: usize,
        /// Current last tuple of the star's span.
        end: usize,
    },
}

/// The program counter of [`BacktrackMachine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BtPc {
    /// Between attempts (next: start an attempt at `start`).
    Idle,
    /// About to evaluate `rec(j, i)` from the top.
    Call {
        /// Pattern element.
        j: usize,
        /// Input position.
        i: usize,
    },
    /// A child call returned; resolve against the top frame.
    Ret {
        /// The child's verdict.
        ok: bool,
    },
    /// The top (star) frame is about to test one more extent tuple.
    StarExtend,
}

impl Default for BacktrackMachine {
    fn default() -> Self {
        BacktrackMachine::new()
    }
}

impl BacktrackMachine {
    /// A fresh machine positioned before the first attempt.
    pub fn new() -> BacktrackMachine {
        BacktrackMachine {
            start: 0,
            frames: Vec::new(),
            pc: BtPc::Idle,
            bindings: Bindings::default(),
        }
    }

    fn run(
        &mut self,
        elements: &[PatternElement],
        input: &StepInput<'_, '_>,
        options: &SearchOptions,
        counter: &EvalCounter,
        mut trace: Option<&mut SearchTrace>,
        out: &mut Vec<MatchSpans>,
    ) -> StepOutcome {
        let pattern = Predicates::new(elements);
        let ctx = EvalCtx {
            cluster: input.cluster,
            policy: options.policy,
        };
        let m = pattern.len();
        let avail = input.cluster.len();
        loop {
            match self.pc {
                BtPc::Idle => {
                    if self.start >= avail {
                        if input.eof {
                            return StepOutcome::Done;
                        }
                        return StepOutcome::NeedInput;
                    }
                    if counter.tripped() {
                        return StepOutcome::Tripped;
                    }
                    self.bindings.spans.clear();
                    self.frames.clear();
                    self.pc = BtPc::Call {
                        j: 1,
                        i: self.start,
                    };
                }
                BtPc::Call { j, i } => {
                    if j > m {
                        self.pc = BtPc::Ret { ok: true };
                        continue;
                    }
                    if i >= avail {
                        if !input.eof {
                            return StepOutcome::NeedInput;
                        }
                        self.pc = BtPc::Ret { ok: false };
                        continue;
                    }
                    if counter.tripped() {
                        return StepOutcome::Tripped;
                    }
                    if !input.testable(i) {
                        return StepOutcome::NeedInput;
                    }
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(i + 1, j);
                    }
                    if !test_element(pattern, j, &ctx, i, &self.bindings, counter) {
                        self.pc = BtPc::Ret { ok: false };
                        continue;
                    }
                    self.bindings.spans.push((i, i));
                    self.frames.push(if pattern.star(j) {
                        BtFrame::Star { i, end: i }
                    } else {
                        BtFrame::NonStar
                    });
                    self.pc = BtPc::Call { j: j + 1, i: i + 1 };
                }
                BtPc::Ret { ok } => {
                    let Some(&frame) = self.frames.last() else {
                        // The attempt resolved.
                        if ok {
                            let end = self
                                .bindings
                                .spans
                                .last()
                                .map(|s| s.1)
                                .unwrap_or(self.start);
                            if counter.match_found() {
                                emit_match(counter, &self.bindings.spans);
                                out.push(MatchSpans {
                                    spans: self.bindings.spans.clone(),
                                });
                            }
                            self.start = end + 1;
                        } else {
                            self.start += 1;
                        }
                        self.pc = BtPc::Idle;
                        continue;
                    };
                    if ok {
                        // Success propagates up without unbinding spans.
                        self.frames.pop();
                        continue;
                    }
                    self.bindings.spans.pop();
                    match frame {
                        BtFrame::NonStar => {
                            self.frames.pop();
                        }
                        BtFrame::Star { .. } => {
                            self.pc = BtPc::StarExtend;
                        }
                    }
                }
                BtPc::StarExtend => {
                    let j = self.frames.len();
                    let Some(&BtFrame::Star { i, end }) = self.frames.last() else {
                        unreachable!("StarExtend with a non-star top frame");
                    };
                    if end + 1 >= avail {
                        if !input.eof {
                            return StepOutcome::NeedInput;
                        }
                        self.frames.pop();
                        self.pc = BtPc::Ret { ok: false };
                        continue;
                    }
                    if counter.tripped() {
                        return StepOutcome::Tripped;
                    }
                    if !input.testable(end + 1) {
                        return StepOutcome::NeedInput;
                    }
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(end + 2, j);
                    }
                    if !test_element(pattern, j, &ctx, end + 1, &self.bindings, counter) {
                        self.frames.pop();
                        self.pc = BtPc::Ret { ok: false };
                        continue;
                    }
                    let end = end + 1;
                    if let Some(BtFrame::Star { end: e, .. }) = self.frames.last_mut() {
                        *e = end;
                    }
                    self.bindings.spans.push((i, end));
                    self.pc = BtPc::Call {
                        j: j + 1,
                        i: end + 1,
                    };
                }
            }
        }
    }
}

/// The backtracking baseline: from every start position, search for *any*
/// assignment of star extents satisfying the pattern (shortest extents
/// first), backtracking on failure.
///
/// This is the direct operational reading of the star's declarative
/// semantics; it can be exponentially slower than the greedy engines and
/// may find matches greedy commitment misses (when adjacent predicates
/// overlap, a shorter star extent can rescue the suffix).
pub fn backtracking_search(
    elements: &[PatternElement],
    cluster: &Cluster<'_>,
    options: &SearchOptions,
    counter: &EvalCounter,
    trace: Option<&mut SearchTrace>,
) -> Vec<MatchSpans> {
    let mut machine = BacktrackMachine::new();
    let input = StepInput {
        cluster,
        eof: true,
        lookahead: 0,
    };
    let mut out = Vec::new();
    machine.run(elements, &input, options, counter, trace, &mut out);
    out
}

/// Run a pre-built plan (lets callers amortize compilation across
/// clusters).
pub fn find_matches_with_plan(
    elements: &[PatternElement],
    cluster: &Cluster<'_>,
    search_plan: &SearchPlan,
    options: &SearchOptions,
    counter: &EvalCounter,
    trace: Option<&mut SearchTrace>,
) -> Vec<MatchSpans> {
    ops_search(elements, cluster, search_plan, options, counter, trace)
}

/// The naive greedy engine as an incremental state machine (the labelled
/// `'outer` loop of the batch implementation unrolled so it can suspend
/// at any tuple boundary).
#[derive(Clone, Debug)]
pub struct NaiveMachine {
    pub(crate) start: usize,
    pub(crate) i: usize,
    /// Pattern element being matched; 0 = between attempts.
    pub(crate) e: usize,
    pub(crate) span_start: usize,
    /// Inside the greedy extension loop of a star element.
    pub(crate) in_star: bool,
    pub(crate) bindings: Bindings,
}

impl Default for NaiveMachine {
    fn default() -> Self {
        NaiveMachine::new()
    }
}

impl NaiveMachine {
    /// A fresh machine positioned before the first attempt.
    pub fn new() -> NaiveMachine {
        NaiveMachine {
            start: 0,
            i: 0,
            e: 0,
            span_start: 0,
            in_star: false,
            bindings: Bindings::default(),
        }
    }

    /// Close the current element's span and advance to the next element,
    /// emitting the match when the pattern is complete.
    fn advance_element(&mut self, m: usize, counter: &EvalCounter, out: &mut Vec<MatchSpans>) {
        self.bindings.spans.push((self.span_start, self.i - 1));
        self.e += 1;
        if self.e > m {
            if counter.match_found() {
                emit_match(counter, &self.bindings.spans);
                out.push(MatchSpans {
                    spans: self.bindings.spans.clone(),
                });
            }
            // Left-maximal, non-overlapping: resume after the match.
            self.start = self.i;
            self.e = 0;
        }
    }

    fn run(
        &mut self,
        elements: &[PatternElement],
        input: &StepInput<'_, '_>,
        options: &SearchOptions,
        counter: &EvalCounter,
        mut trace: Option<&mut SearchTrace>,
        out: &mut Vec<MatchSpans>,
    ) -> StepOutcome {
        let pattern = Predicates::new(elements);
        let ctx = EvalCtx {
            cluster: input.cluster,
            policy: options.policy,
        };
        let m = pattern.len();
        if m == 0 {
            return StepOutcome::Done;
        }
        let avail = input.cluster.len();
        loop {
            if self.e == 0 {
                // Between attempts.
                if self.start >= avail {
                    if input.eof {
                        return StepOutcome::Done;
                    }
                    return StepOutcome::NeedInput;
                }
                if counter.tripped() {
                    return StepOutcome::Tripped;
                }
                self.bindings.spans.clear();
                self.i = self.start;
                self.e = 1;
                self.in_star = false;
                continue;
            }
            if !self.in_star {
                // First tuple of element `e` (stars need at least one).
                // A governor trip abandons the in-flight attempt wholesale:
                // a partially extended star must never be emitted as a match.
                if counter.tripped() {
                    return StepOutcome::Tripped;
                }
                if self.i >= avail {
                    if !input.eof {
                        return StepOutcome::NeedInput;
                    }
                    self.start += 1;
                    self.e = 0;
                    continue;
                }
                if !input.testable(self.i) {
                    return StepOutcome::NeedInput;
                }
                if let Some(t) = trace.as_deref_mut() {
                    t.record(self.i + 1, self.e);
                }
                if !test_element(pattern, self.e, &ctx, self.i, &self.bindings, counter) {
                    // Naive realign: one tuple on, resume at element 1 — the
                    // shift/next the naive tables encode.
                    if counter.armed() {
                        counter.emit(TraceEvent::Shift {
                            j: self.e as u32,
                            dist: 1,
                        });
                        counter.emit(TraceEvent::Next {
                            j: self.e as u32,
                            k: 1,
                        });
                    }
                    self.start += 1;
                    self.e = 0;
                    continue;
                }
                self.span_start = self.i;
                self.i += 1;
                if pattern.star(self.e) {
                    self.in_star = true;
                    continue;
                }
                self.advance_element(m, counter, out);
                continue;
            }
            // Greedy: extend the star while the predicate holds.
            if self.i < avail {
                if counter.tripped() {
                    return StepOutcome::Tripped;
                }
                if !input.testable(self.i) {
                    return StepOutcome::NeedInput;
                }
                if let Some(t) = trace.as_deref_mut() {
                    t.record(self.i + 1, self.e);
                }
                if test_element(pattern, self.e, &ctx, self.i, &self.bindings, counter) {
                    self.i += 1;
                    continue;
                }
            } else if !input.eof {
                return StepOutcome::NeedInput;
            }
            // The run ended (predicate failed or input exhausted).
            self.in_star = false;
            self.advance_element(m, counter, out);
        }
    }
}

/// The naive baseline: greedy attempt from every start position, moving
/// one tuple to the right after every failure.
pub fn naive_search(
    elements: &[PatternElement],
    cluster: &Cluster<'_>,
    options: &SearchOptions,
    counter: &EvalCounter,
    trace: Option<&mut SearchTrace>,
) -> Vec<MatchSpans> {
    let mut machine = NaiveMachine::new();
    let input = StepInput {
        cluster,
        eof: true,
        lookahead: 0,
    };
    let mut out = Vec::new();
    machine.run(elements, &input, options, counter, trace, &mut out);
    out
}

/// The OPS search (§4.2 algorithm generalized with the §5 `count[]`
/// runtime for stars) as an incremental state machine.
///
/// State: the attempt starts at `start`; `counts[e]` is the cumulative
/// number of tuples matched by elements 1..=e of the current attempt
/// (`counts[0] = 0`); the input cursor `i` always equals
/// `start + counts[j]` while element `j` is being matched; `bindings`
/// holds the completed spans of elements `1..j`.
#[derive(Clone, Debug)]
pub struct OpsMachine {
    pub(crate) start: usize,
    pub(crate) i: usize,
    pub(crate) j: usize,
    pub(crate) counts: Vec<usize>,
    pub(crate) bindings: Bindings,
    /// The end-of-input star tail has run; the search is over.
    pub(crate) finished: bool,
}

impl OpsMachine {
    /// A fresh machine for a pattern of `m` elements.
    pub fn new(m: usize) -> OpsMachine {
        OpsMachine {
            start: 0,
            i: 0,
            j: 1,
            counts: vec![0; m + 1],
            bindings: Bindings::default(),
            finished: false,
        }
    }

    pub(crate) fn reset_attempt(&mut self, new_start: usize) {
        self.start = new_start;
        self.i = new_start;
        self.j = 1;
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.bindings.spans.clear();
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        elements: &[PatternElement],
        search_plan: &SearchPlan,
        input: &StepInput<'_, '_>,
        options: &SearchOptions,
        counter: &EvalCounter,
        mut trace: Option<&mut SearchTrace>,
        out: &mut Vec<MatchSpans>,
    ) -> StepOutcome {
        let pattern = Predicates::new(elements);
        let ctx = EvalCtx {
            cluster: input.cluster,
            policy: options.policy,
        };
        let m = pattern.len();
        if m == 0 || self.finished {
            return StepOutcome::Done;
        }
        let sn = &search_plan.tables;
        let avail = input.cluster.len();

        loop {
            if self.j > m {
                // Success: spans derive from the counts.
                if counter.match_found() {
                    emit_match(counter, &self.bindings.spans);
                    out.push(MatchSpans {
                        spans: self.bindings.spans.clone(),
                    });
                }
                self.reset_attempt(self.i);
                continue;
            }
            if counter.tripped() {
                // Governed termination: the matches found so far stand.
                // The in-flight attempt (and the end-of-input star tail
                // below, which is only sound when the input was really
                // exhausted) is frozen, so a batch driver sees a prefix of
                // the ungoverned run and a resumed session (fresh counter)
                // continues exactly where the trip landed.
                return StepOutcome::Tripped;
            }
            if self.i >= avail {
                if !input.eof {
                    return StepOutcome::NeedInput;
                }
                break;
            }
            if !input.testable(self.i) {
                return StepOutcome::NeedInput;
            }

            if let Some(t) = trace.as_deref_mut() {
                t.record(self.i + 1, self.j);
            }
            if test_element(pattern, self.j, &ctx, self.i, &self.bindings, counter) {
                self.counts[self.j] += 1;
                self.i += 1;
                if !pattern.star(self.j) {
                    self.bindings
                        .spans
                        .push((self.start + self.counts[self.j - 1], self.i - 1));
                    self.j += 1;
                    if self.j <= m {
                        self.counts[self.j] = self.counts[self.j - 1];
                    }
                }
                continue;
            }

            // The tuple fails p_j.
            if pattern.star(self.j) && self.counts[self.j] > self.counts[self.j - 1] {
                // A satisfied star: close its span and re-test this tuple
                // against the next element.
                self.bindings.spans.push((
                    self.start + self.counts[self.j - 1],
                    self.start + self.counts[self.j] - 1,
                ));
                self.j += 1;
                if self.j <= m {
                    self.counts[self.j] = self.counts[self.j - 1];
                }
                continue;
            }

            // Genuine failure at element j: realign per shift/next.
            if search_plan.tuple_granular_restart {
                // Degraded to tuple granularity: behaves like the naive
                // tables (shift 1, resume at element 1).
                if counter.armed() {
                    counter.emit(TraceEvent::Shift {
                        j: self.j as u32,
                        dist: 1,
                    });
                    counter.emit(TraceEvent::Next {
                        j: self.j as u32,
                        k: 1,
                    });
                }
                self.reset_attempt(self.start + 1);
                continue;
            }
            let sh = sn.shift(self.j);
            let nx = sn.next(self.j);
            if counter.armed() {
                counter.emit(TraceEvent::Shift {
                    j: self.j as u32,
                    dist: sh as u32,
                });
                counter.emit(TraceEvent::Next {
                    j: self.j as u32,
                    k: nx as u32,
                });
            }
            if nx == 0 {
                // shift(j) = j: no earlier start can work; the failed tuple
                // itself is also excluded (φ[j][1] = 0), so move past it.
                self.reset_attempt(self.i + 1);
                continue;
            }
            debug_assert!(sh + nx - 1 <= self.j, "next must stay within known counts");
            // New start: the beginning of (old) element sh+1's span.  The
            // prefix elements 1..nx-1 of the new attempt inherit the spans
            // of old elements sh+1..sh+nx-1 (the deterministic walk only
            // crosses non-star pairs, so these are single tuples).
            let old = self.counts.clone();
            let new_start = self.start + old[sh];
            for e in 0..nx {
                self.counts[e] = old[sh + e] - old[sh];
            }
            self.counts[nx] = self.counts[nx - 1];
            for c in self.counts.iter_mut().skip(nx + 1) {
                *c = 0;
            }
            self.i = new_start + self.counts[nx - 1];
            self.start = new_start;
            self.j = nx;
            self.bindings.spans.clear();
            for e in 1..nx {
                self.bindings.spans.push((
                    self.start + self.counts[e - 1],
                    self.start + self.counts[e] - 1,
                ));
            }
        }

        // Input exhausted.  The only completable suffix: the last element
        // is a satisfied star (its span closes at the end of input).
        self.finished = true;
        if self.j == m && pattern.star(m) && self.counts[m] > self.counts[m - 1] {
            self.bindings.spans.push((
                self.start + self.counts[m - 1],
                self.start + self.counts[m] - 1,
            ));
            if counter.match_found() {
                emit_match(counter, &self.bindings.spans);
                out.push(MatchSpans {
                    spans: self.bindings.spans.clone(),
                });
            }
        }
        StepOutcome::Done
    }
}

/// The OPS search over a whole cluster.
fn ops_search(
    elements: &[PatternElement],
    cluster: &Cluster<'_>,
    search_plan: &SearchPlan,
    options: &SearchOptions,
    counter: &EvalCounter,
    trace: Option<&mut SearchTrace>,
) -> Vec<MatchSpans> {
    let mut machine = OpsMachine::new(elements.len());
    let input = StepInput {
        cluster,
        eof: true,
        lookahead: 0,
    };
    let mut out = Vec::new();
    machine.run(
        elements,
        search_plan,
        &input,
        options,
        counter,
        trace,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlts_lang::{compile, CompileOptions, CompiledQuery};
    use sqlts_relation::{ColumnType, Date, Schema, Table, Value};

    fn schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    fn table(prices: &[f64]) -> Table {
        let mut t = Table::new(schema());
        for (i, &p) in prices.iter().enumerate() {
            t.push_row(vec![
                Value::from("IBM"),
                Value::Date(Date::from_days(i as i32)),
                Value::from(p),
            ])
            .unwrap();
        }
        t
    }

    fn q(src: &str) -> CompiledQuery {
        compile(src, &schema(), &CompileOptions::default()).unwrap()
    }

    fn run(
        query: &CompiledQuery,
        prices: &[f64],
        kind: EngineKind,
        policy: FirstTuplePolicy,
    ) -> (Vec<MatchSpans>, u64) {
        let t = table(prices);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let counter = EvalCounter::new();
        let matches = match clusters.first() {
            None => Vec::new(), // empty table → no clusters
            Some(cluster) => find_matches(
                &query.elements,
                cluster,
                kind,
                &SearchOptions { policy },
                &counter,
                None,
            ),
        };
        (matches, counter.total())
    }

    const ALL_KINDS: [EngineKind; 3] =
        [EngineKind::Naive, EngineKind::Ops, EngineKind::OpsShiftOnly];

    #[test]
    fn example4_sequence_from_the_paper() {
        // §4.2.1: the paper searches the pattern of Example 4 over
        //   55 50 45 57 54 50 47 49 45 42 55 57 59 60 57
        // Pattern: fall, fall∧40<p<50, rise∧p<52, rise.
        let query = q("SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C, D) \
             WHERE A.price < A.previous.price \
             AND B.price < B.previous.price AND B.price > 40 AND B.price < 50 \
             AND C.price > C.previous.price AND C.price < 52 \
             AND D.price > D.previous.price");
        let prices = [
            55.0, 50.0, 45.0, 57.0, 54.0, 50.0, 47.0, 49.0, 45.0, 42.0, 55.0, 57.0, 59.0, 60.0,
            57.0,
        ];
        for kind in ALL_KINDS {
            let (matches, _) = run(&query, &prices, kind, FirstTuplePolicy::Fail);
            // 50→47 (fall), 47... hold on: positions 5..8: 50 47 49 45 —
            // fall(47<50), fall∧band(49? 49>47 no)... The match in the
            // data: 54,50,47,49: fall(50<54)? element A at pos 5 (50<54 ✓),
            // B at 6 (47<50 ✓ and 40<47<50 ✓), C at 7 (49>47 ✓, <52 ✓),
            // D at 8 (45>49 ✗). Try A=6 (47<50✓) B=7? 49>47 ✗...
            // A=8 (45<49 ✓) B=9 (42<45 ✓ band ✓) C=10 (55>42 ✓ but <52 ✗).
            // So with strict band the only candidate dies; the paper's
            // chart indeed ends in failure over this fragment.
            assert!(matches.is_empty(), "{kind:?} found {matches:?}");
        }
    }

    #[test]
    fn ops_is_cheaper_than_naive_on_example4_paper_sequence() {
        let query = q("SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C, D) \
             WHERE A.price < A.previous.price \
             AND B.price < B.previous.price AND B.price > 40 AND B.price < 50 \
             AND C.price > C.previous.price AND C.price < 52 \
             AND D.price > D.previous.price");
        let prices = [
            55.0, 50.0, 45.0, 57.0, 54.0, 50.0, 47.0, 49.0, 45.0, 42.0, 55.0, 57.0, 59.0, 60.0,
            57.0,
        ];
        let (_, naive) = run(&query, &prices, EngineKind::Naive, FirstTuplePolicy::Fail);
        let (_, ops) = run(&query, &prices, EngineKind::Ops, FirstTuplePolicy::Fail);
        assert!(
            ops < naive,
            "OPS ({ops}) must beat naive ({naive}) on the paper's sequence"
        );
    }

    #[test]
    fn simple_non_star_match_positions() {
        // Example-1 style: up 15%, down 20%.
        let query = q("SELECT X.name FROM quote SEQUENCE BY date AS (X, Y, Z) \
             WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price");
        let prices = [10.0, 10.5, 13.0, 9.0, 9.5, 12.0, 8.0];
        for kind in ALL_KINDS {
            let (matches, _) = run(&query, &prices, kind, FirstTuplePolicy::Fail);
            assert_eq!(matches.len(), 2, "{kind:?}");
            assert_eq!(matches[0].spans, vec![(1, 1), (2, 2), (3, 3)]);
            assert_eq!(matches[1].spans, vec![(4, 4), (5, 5), (6, 6)]);
        }
    }

    #[test]
    fn star_count_example_from_section5() {
        // §5's worked example: prices 20 21 23 24 22 20 18 15 14 18 21
        // against (*rise, *fall, *rise) gives count = 4, 9, 11 — i.e.
        // spans of 4, 5 and 2 tuples (under the vacuous-first policy).
        let query = q(
            "SELECT FIRST(X).date FROM quote SEQUENCE BY date AS (*X, *Y, *Z) \
             WHERE X.price > X.previous.price AND Y.price < Y.previous.price \
             AND Z.price > Z.previous.price",
        );
        let prices = [
            20.0, 21.0, 23.0, 24.0, 22.0, 20.0, 18.0, 15.0, 14.0, 18.0, 21.0,
        ];
        for kind in ALL_KINDS {
            let (matches, _) = run(&query, &prices, kind, FirstTuplePolicy::VacuousTrue);
            assert_eq!(matches.len(), 1, "{kind:?}");
            assert_eq!(
                matches[0].spans,
                vec![(0, 3), (4, 8), (9, 10)],
                "{kind:?}: spans must mirror count(1)=4, count(2)=9, count(3)=11"
            );
        }
    }

    #[test]
    fn star_requires_at_least_one_tuple() {
        let query = q(
            "SELECT FIRST(Y).date FROM quote SEQUENCE BY date AS (*Y, Z) \
             WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price",
        );
        // No falling run before the rise: no match.
        let prices = [10.0, 11.0, 12.0];
        for kind in ALL_KINDS {
            let (matches, _) = run(&query, &prices, kind, FirstTuplePolicy::Fail);
            assert!(matches.is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn star_at_end_closes_at_input_end() {
        let query = q("SELECT Z.date FROM quote SEQUENCE BY date AS (Z, *W) \
             WHERE Z.price > 100 AND W.price < W.previous.price");
        let prices = [101.0, 90.0, 80.0];
        for kind in ALL_KINDS {
            let (matches, _) = run(&query, &prices, kind, FirstTuplePolicy::Fail);
            assert_eq!(matches.len(), 1, "{kind:?}");
            assert_eq!(matches[0].spans, vec![(0, 0), (1, 2)]);
        }
    }

    #[test]
    fn greedy_stars_are_committed() {
        // (*Y falling, Z falling) under greedy semantics never matches on
        // a strictly falling series: Y eats everything.
        let query = q(
            "SELECT FIRST(Y).date FROM quote SEQUENCE BY date AS (*Y, Z) \
             WHERE Y.price < Y.previous.price AND Z.price < Z.previous.price",
        );
        let prices = [10.0, 9.0, 8.0, 7.0];
        for kind in ALL_KINDS {
            let (matches, _) = run(&query, &prices, kind, FirstTuplePolicy::Fail);
            assert!(matches.is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn matches_do_not_overlap_and_are_left_maximal() {
        // Two consecutive falls in a long falling run: with non-overlap
        // semantics 6 falling steps yield 3 matches.
        let query = q("SELECT A.date FROM quote SEQUENCE BY date AS (A, B) \
             WHERE A.price < A.previous.price AND B.price < B.previous.price");
        let prices = [100.0, 99.0, 98.0, 97.0, 96.0, 95.0, 94.0];
        for kind in ALL_KINDS {
            let (matches, _) = run(&query, &prices, kind, FirstTuplePolicy::Fail);
            assert_eq!(matches.len(), 3, "{kind:?}");
            assert_eq!(matches[0].spans, vec![(1, 1), (2, 2)]);
            assert_eq!(matches[1].spans, vec![(3, 3), (4, 4)]);
            assert_eq!(matches[2].spans, vec![(5, 5), (6, 6)]);
        }
    }

    #[test]
    fn empty_input_and_tiny_inputs() {
        let query = q("SELECT A.date FROM quote SEQUENCE BY date AS (A, B) \
             WHERE A.price < A.previous.price AND B.price < B.previous.price");
        for kind in ALL_KINDS {
            assert!(run(&query, &[], kind, FirstTuplePolicy::Fail).0.is_empty());
            assert!(run(&query, &[5.0], kind, FirstTuplePolicy::Fail)
                .0
                .is_empty());
        }
    }

    #[test]
    fn nonlocal_star_pattern_tuple_granular_restart() {
        // (*X, S) with S comparing against FIRST(X): restarts inside X's
        // span matter, so OPS must degrade to tuple-granular restarts and
        // still agree with naive.
        let query = q("SELECT S.date FROM quote SEQUENCE BY date AS (*X, S) \
             WHERE X.price > X.previous.price AND S.price < 0.9 * FIRST(X).price");
        let p = plan(&query.elements, EngineKind::Ops);
        assert!(p.tuple_granular_restart);
        let prices = [10.0, 11.0, 12.0, 13.0, 10.5, 11.5, 9.0];
        let (naive, _) = run(&query, &prices, EngineKind::Naive, FirstTuplePolicy::Fail);
        let (ops, _) = run(&query, &prices, EngineKind::Ops, FirstTuplePolicy::Fail);
        assert_eq!(naive, ops);
        assert!(!naive.is_empty());
    }

    #[test]
    fn vacuous_policy_admits_first_tuple_matches() {
        let query = q(
            "SELECT FIRST(Y).date FROM quote SEQUENCE BY date AS (*Y, Z) \
             WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price",
        );
        let prices = [10.0, 9.0, 12.0];
        let (fail, _) = run(&query, &prices, EngineKind::Ops, FirstTuplePolicy::Fail);
        let (vac, _) = run(
            &query,
            &prices,
            EngineKind::Ops,
            FirstTuplePolicy::VacuousTrue,
        );
        // Under Fail the first tuple cannot satisfy Y (no previous), so Y
        // matches only tuple 1; under VacuousTrue Y's span starts at 0.
        assert_eq!(fail[0].spans, vec![(1, 1), (2, 2)]);
        assert_eq!(vac[0].spans, vec![(0, 1), (2, 2)]);
    }

    #[test]
    fn trace_records_paths() {
        let query = q("SELECT A.date FROM quote SEQUENCE BY date AS (A, B) \
             WHERE A.price = 10 AND B.price = 11");
        let prices = [10.0, 10.0, 11.0, 10.0];
        let t = table(&prices);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let counter = EvalCounter::new();
        let mut trace = SearchTrace::new();
        let matches = find_matches(
            &query.elements,
            &clusters[0],
            EngineKind::Ops,
            &SearchOptions::default(),
            &counter,
            Some(&mut trace),
        );
        assert_eq!(matches.len(), 1);
        assert_eq!(trace.path_len() as u64, counter.total());
        assert!(trace.path_len() > 0);
    }

    #[test]
    fn backtracking_agrees_on_exclusive_patterns() {
        // Adjacent predicates mutually exclusive → backtracking and greedy
        // have identical match sets.
        let query = q(
            "SELECT FIRST(X).date FROM t SEQUENCE BY date AS (*X, *Y, *Z) \
             WHERE X.price > X.previous.price AND Y.price < Y.previous.price \
             AND Z.price > Z.previous.price",
        );
        let prices = [
            20.0, 21.0, 23.0, 24.0, 22.0, 20.0, 18.0, 15.0, 14.0, 18.0, 21.0,
        ];
        let (greedy, greedy_cost) = run(
            &query,
            &prices,
            EngineKind::Naive,
            FirstTuplePolicy::VacuousTrue,
        );
        let (bt, bt_cost) = run(
            &query,
            &prices,
            EngineKind::NaiveBacktrack,
            FirstTuplePolicy::VacuousTrue,
        );
        // Interior boundaries are forced by exclusivity; only the *last*
        // star's extent is existentially free (greedy takes the maximal
        // run, shortest-first backtracking the minimal one).
        assert_eq!(greedy.len(), bt.len());
        for (g, b) in greedy.iter().zip(&bt) {
            assert_eq!(g.start(), b.start());
            assert_eq!(g.spans[..g.spans.len() - 1], b.spans[..b.spans.len() - 1]);
        }
        assert!(bt_cost >= greedy_cost);
    }

    #[test]
    fn backtracking_rescues_overlapping_patterns() {
        // (*Y falling, Z falling): greedy commits Y to the whole run and
        // finds nothing; backtracking splits the run and matches — the
        // semantic gap documented in DESIGN.md.
        let query = q("SELECT FIRST(Y).date FROM t SEQUENCE BY date AS (*Y, Z) \
             WHERE Y.price < Y.previous.price AND Z.price < Z.previous.price");
        let prices = [10.0, 9.0, 8.0, 7.0];
        let (greedy, _) = run(&query, &prices, EngineKind::Naive, FirstTuplePolicy::Fail);
        let (bt, _) = run(
            &query,
            &prices,
            EngineKind::NaiveBacktrack,
            FirstTuplePolicy::Fail,
        );
        assert!(greedy.is_empty());
        assert_eq!(bt.len(), 1);
        assert_eq!(bt[0].spans, vec![(1, 1), (2, 2)]);
    }

    /// The core soundness property: every engine returns exactly the same
    /// matches as the naive reference on randomized inputs and patterns.
    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        /// A small pool of pattern queries covering stars, bands, ratio
        /// predicates, equalities and disjunction.
        fn query_pool() -> Vec<CompiledQuery> {
            [
                // star-free, previous-chains
                "SELECT A.date FROM t SEQUENCE BY date AS (A, B) \
                 WHERE A.price < A.previous.price AND B.price > B.previous.price",
                "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C) \
                 WHERE A.price < A.previous.price AND B.price < B.previous.price \
                 AND B.price > 4 AND B.price < 8 AND C.price > C.previous.price",
                // constant equalities (KMP fragment), with self-overlap
                "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C) \
                 WHERE A.price = 5 AND B.price = 7 AND C.price = 5",
                "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C, D) \
                 WHERE A.price = 5 AND B.price = 7 AND C.price = 5 AND D.price = 7",
                // stars
                "SELECT FIRST(X).date FROM t SEQUENCE BY date AS (*X, *Y) \
                 WHERE X.price > X.previous.price AND Y.price < Y.previous.price",
                "SELECT FIRST(X).date FROM t SEQUENCE BY date AS (*X, Y, *Z) \
                 WHERE X.price < X.previous.price AND Y.price > 6 \
                 AND Z.price > Z.previous.price",
                "SELECT FIRST(X).date FROM t SEQUENCE BY date AS (A, *X, S) \
                 WHERE A.price > 6 AND X.price < X.previous.price AND S.price > 8",
                // disjunction
                "SELECT A.date FROM t SEQUENCE BY date AS (A, B) \
                 WHERE (A.price < 3 OR A.price > 8) AND B.price > B.previous.price",
                // cross-variable adjacent rewrite
                "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C) \
                 WHERE B.price > A.price AND C.price < B.price",
                // non-local with leading star
                "SELECT S.date FROM t SEQUENCE BY date AS (*X, S) \
                 WHERE X.price > X.previous.price AND S.price < FIRST(X).price",
            ]
            .iter()
            .map(|src| q(src))
            .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(160))]
            #[test]
            fn engines_agree_with_naive(
                qi in 0usize..10,
                prices in proptest::collection::vec(1i32..12, 0..60),
                vacuous in proptest::bool::ANY,
            ) {
                let queries = query_pool();
                let query = &queries[qi];
                let prices: Vec<f64> = prices.iter().map(|&p| p as f64).collect();
                let policy = if vacuous {
                    FirstTuplePolicy::VacuousTrue
                } else {
                    FirstTuplePolicy::Fail
                };
                let (reference, naive_cost) =
                    run(query, &prices, EngineKind::Naive, policy);
                for kind in [EngineKind::Ops, EngineKind::OpsShiftOnly] {
                    let (matches, cost) = run(query, &prices, kind, policy);
                    prop_assert_eq!(
                        &matches, &reference,
                        "{:?} diverged from naive on prices {:?}", kind, prices
                    );
                    // The optimized engines never do more predicate tests
                    // than naive... (they can tie on tiny inputs).
                    prop_assert!(
                        cost <= naive_cost,
                        "{:?} cost {} exceeds naive {}", kind, cost, naive_cost
                    );
                }
            }
        }
    }
}
