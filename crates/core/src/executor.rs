//! End-to-end query execution: compile → cluster → search → project.

use crate::counters::EvalCounter;
use crate::engine::{
    backtracking_search, find_matches_with_plan, naive_search, plan, EngineKind, SearchOptions,
    SearchPlan,
};
use crate::governor::{Governor, RunGovernor, Trip};
use crate::reverse::{direction_hint, find_matches_directed, Direction};
use sqlts_lang::{
    compile, eval_projection, Bindings, CompileOptions, CompiledQuery, EvalCtx, FirstTuplePolicy,
    LangError,
};
use sqlts_relation::{Cluster, Schema, Table, TableError, Value};
use sqlts_trace::{ClusterProfile, ClusterRecorder, ExecutionProfile, TraceEvent};
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Options for [`execute`] / [`execute_query`].
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Which engine to run.
    pub engine: EngineKind,
    /// Out-of-range `previous` semantics.
    pub policy: FirstTuplePolicy,
    /// Compiler options (positive domains, DNF bounds).
    pub compile: CompileOptions,
    /// Search direction (§8): forward, reverse, or chosen by the
    /// mean-shift/next heuristic.
    pub direction: DirectionChoice,
    /// Worker threads for cluster-parallel execution.
    ///
    /// `CLUSTER BY` partitions are independent streams, so the search plan
    /// is compiled once and clusters are fanned out over a scoped worker
    /// pool.  Results are merged back in cluster order with per-cluster
    /// predicate-test counts summed deterministically, so the output table
    /// and every [`SearchStats`] field are identical for every thread
    /// count.  `1` (the default) runs the sequential path inline.
    pub threads: NonZeroUsize,
    /// Resource limits for this query (wall-clock deadline, step and
    /// match budgets, cancellation).  The default is
    /// [`Governor::unlimited`], which keeps execution bit-identical to an
    /// ungoverned engine; when any limit trips, [`execute`] returns
    /// [`ExecError::Governed`] carrying the partial result.
    pub governor: Governor,
    /// What instrumentation to arm (metrics registry, trace events).  The
    /// default arms nothing: the engines then pay one predictable branch
    /// per hook and outputs stay bit-identical to an uninstrumented
    /// build.  When armed, [`QueryResult::profile`] carries the merged
    /// [`ExecutionProfile`].
    pub instrument: Instrument,
}

/// Which instrumentation to arm for a run (see the `sqlts-trace` crate).
///
/// Per-cluster recorders are merged **in cluster order** — the same
/// deterministic merge applied to `EvalCounter` totals — so everything in
/// the resulting profile except wall-clock phase timings is identical at
/// every thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Instrument {
    /// Collect the per-cluster metrics registry and assemble an
    /// [`ExecutionProfile`] on the result.
    pub profile: bool,
    /// Additionally retain the Figure-5 event stream per cluster (implies
    /// the profile).
    pub trace: bool,
    /// Per-cluster ring-buffer capacity for retained events (only used
    /// when `trace` is set).
    pub trace_capacity: usize,
}

impl Instrument {
    /// Default per-cluster event capacity for `--trace`.
    pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

    /// Arm nothing (the default): unmeasurable overhead, no profile.
    pub fn none() -> Instrument {
        Instrument {
            profile: false,
            trace: false,
            trace_capacity: Self::DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Arm the metrics registry only (no event retention).
    pub fn profiling() -> Instrument {
        Instrument {
            profile: true,
            ..Instrument::none()
        }
    }

    /// Arm metrics and the bounded event recorder.
    pub fn tracing() -> Instrument {
        Instrument {
            profile: true,
            trace: true,
            ..Instrument::none()
        }
    }

    /// Is any instrumentation armed?
    pub fn armed(&self) -> bool {
        self.profile || self.trace
    }

    /// The event-retention capacity to arm per cluster (0 = metrics only).
    pub(crate) fn capacity(&self) -> usize {
        if self.trace {
            self.trace_capacity
        } else {
            0
        }
    }
}

impl Default for Instrument {
    fn default() -> Self {
        Instrument::none()
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            engine: EngineKind::default(),
            policy: FirstTuplePolicy::default(),
            compile: CompileOptions::default(),
            direction: DirectionChoice::default(),
            threads: NonZeroUsize::MIN,
            governor: Governor::unlimited(),
            instrument: Instrument::none(),
        }
    }
}

/// How the executor chooses the scan direction (§8 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DirectionChoice {
    /// Always scan front-to-back.
    #[default]
    Forward,
    /// Always scan back-to-front (matches are still reported in forward
    /// coordinates and forward order).
    Reverse,
    /// Pick per query using the paper's mean-shift/next heuristic.
    Auto,
}

/// Execution statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// The paper's metric: predicate tests performed.
    pub predicate_tests: u64,
    /// Number of matches found.
    pub matches: u64,
    /// Number of clusters scanned.
    pub clusters: u64,
    /// Total input tuples scanned.
    pub tuples: u64,
    /// Governor budget units consumed — the denomination of
    /// [`Governor::with_max_steps`] and the CLI's `--max-steps`.
    /// Currently one unit per predicate test, so this equals
    /// `predicate_tests`; it is reported separately so budget accounting
    /// stays visible if the metering unit ever broadens.  Deterministic
    /// across thread counts.
    pub steps: u64,
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} matches, {} predicate tests over {} tuples in {} clusters",
            self.matches, self.predicate_tests, self.tuples, self.clusters
        )
    }
}

/// One cluster that failed (panicked) during execution while the others
/// completed — the partial-failure side channel of [`QueryResult`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterFailure {
    /// 0-based index of the cluster in `CLUSTER BY` order.
    pub cluster: usize,
    /// The cluster's key values rendered for diagnostics (empty when the
    /// query has no `CLUSTER BY`).
    pub key: String,
    /// The panic payload, as text.
    pub cause: String,
}

impl fmt::Display for ClusterFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.key.is_empty() {
            write!(f, "cluster {} failed: {}", self.cluster, self.cause)
        } else {
            write!(
                f,
                "cluster {} ({}) failed: {}",
                self.cluster, self.key, self.cause
            )
        }
    }
}

/// The result of executing a query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The output table (one row per match, per the `SELECT` list).
    pub table: Table,
    /// Execution statistics.
    pub stats: SearchStats,
    /// Clusters that panicked while the rest completed.  Empty on a fully
    /// successful run; when non-empty, `table` holds the matches of every
    /// surviving cluster (still in cluster order) and each entry here
    /// describes one isolated failure.
    pub partial: Vec<ClusterFailure>,
    /// The machine-readable execution profile, present when
    /// [`ExecOptions::instrument`] armed it.  Boxed: the common unarmed
    /// path carries only a null pointer.
    pub profile: Option<Box<ExecutionProfile>>,
}

impl QueryResult {
    /// `true` when every cluster completed (no isolated failures).
    pub fn is_complete(&self) -> bool {
        self.partial.is_empty()
    }
}

/// Errors from query execution.
#[derive(Debug)]
pub enum ExecError {
    /// Compilation failed.
    Lang(LangError),
    /// Table/schema problem (unknown cluster/sequence column, …).
    Table(TableError),
    /// The resource governor terminated the query (deadline, budget, or
    /// cancellation).  `partial` carries everything completed before the
    /// trip: per cluster, a prefix of the matches the ungoverned run would
    /// have produced, merged in cluster order.
    Governed {
        /// What tripped and how much was consumed.
        trip: Trip,
        /// The partial result assembled at termination.
        partial: Box<QueryResult>,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Lang(e) => write!(f, "{e}"),
            ExecError::Table(e) => write!(f, "{e}"),
            ExecError::Governed { trip, partial } => write!(
                f,
                "query terminated by resource governor: {trip}; partial result: \
                 {} rows from {} clusters",
                partial.table.len(),
                partial.stats.clusters
            ),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<LangError> for ExecError {
    fn from(e: LangError) -> Self {
        ExecError::Lang(e)
    }
}

impl From<TableError> for ExecError {
    fn from(e: TableError) -> Self {
        ExecError::Table(e)
    }
}

/// Compile and execute a SQL-TS query string against a table.
pub fn execute_query(
    src: &str,
    table: &Table,
    options: &ExecOptions,
) -> Result<QueryResult, ExecError> {
    if !options.instrument.armed() {
        let query = compile(src, table.schema(), &options.compile)?;
        return execute(&query, table, options);
    }
    // Profiled path: run parse and bind separately so each phase gets its
    // own wall-clock slice.
    let t = Instant::now();
    let ast = sqlts_lang::parse(src)?;
    let parse_ns = t.elapsed().as_nanos() as u64;
    let t = Instant::now();
    let query = sqlts_lang::compile_ast(&ast, table.schema(), &options.compile)?;
    let bind_ns = t.elapsed().as_nanos() as u64;
    let mut result = execute(&query, table, options);
    // Stamp the front-end timings onto the profile — including the one
    // travelling inside a governed partial result.
    let profile = match &mut result {
        Ok(r) => r.profile.as_deref_mut(),
        Err(ExecError::Governed { partial, .. }) => partial.profile.as_deref_mut(),
        Err(_) => None,
    };
    if let Some(p) = profile {
        p.phases.parse = parse_ns;
        p.phases.bind = bind_ns;
    }
    result
}

/// Build the output schema for a compiled query's projection, with
/// positional disambiguation of duplicate output names.
pub(crate) fn output_schema(query: &CompiledQuery) -> Result<Schema, TableError> {
    Schema::new(
        query
            .projection
            .iter()
            .enumerate()
            .map(|(i, p)| {
                // Disambiguate duplicate output names positionally.
                let name = if query.projection[..i].iter().any(|q| q.name == p.name) {
                    format!("{}_{}", p.name, i + 1)
                } else {
                    p.name.clone()
                };
                (name, p.ty)
            })
            .collect::<Vec<_>>(),
    )
}

/// Execute an already-compiled query against a table.
pub fn execute(
    query: &CompiledQuery,
    table: &Table,
    options: &ExecOptions,
) -> Result<QueryResult, ExecError> {
    let mut out = Table::new(output_schema(query)?);

    let cluster_cols: Vec<&str> = query.cluster_by.iter().map(String::as_str).collect();
    let sequence_cols: Vec<&str> = query.sequence_by.iter().map(String::as_str).collect();
    let clusters = table.cluster_by(&cluster_cols, &sequence_cols)?;

    let search_options = SearchOptions {
        policy: options.policy,
    };
    let direction = match options.direction {
        DirectionChoice::Forward => Direction::Forward,
        DirectionChoice::Reverse => Direction::Reverse,
        DirectionChoice::Auto => direction_hint(query),
    };
    // Compile the search plan once, reuse across clusters (forward scans
    // only; the reverse path compiles the reversed pattern internally).
    let profiling = options.instrument.armed();
    let t_plan = profiling.then(Instant::now);
    let search_plan = match (options.engine, direction) {
        (EngineKind::Naive | EngineKind::NaiveBacktrack, _) => None,
        (_, Direction::Reverse) => None,
        (kind, Direction::Forward) => Some(plan(&query.elements, kind)),
    };
    let plan_ns = t_plan.map_or(0, |t| t.elapsed().as_nanos() as u64);

    // Arm the governor only when some limit is actually set: the
    // ungoverned path stays bit-identical to a build without a governor.
    let run: Option<Arc<RunGovernor>> =
        (!options.governor.is_unlimited()).then(|| options.governor.begin());

    let t_exec = profiling.then(Instant::now);
    let worker_count = options.threads.get().min(clusters.len());
    let outcomes: Vec<ClusterRun> = if worker_count <= 1 {
        // Sequential path: same per-cluster routine, run inline.
        clusters
            .iter()
            .enumerate()
            .map(|(idx, cluster)| {
                run_cluster_guarded(
                    query,
                    cluster,
                    idx,
                    search_plan.as_ref(),
                    options.engine,
                    direction,
                    &search_options,
                    run.as_ref(),
                    options.instrument,
                    None,
                )
            })
            .collect()
    } else {
        run_clusters_parallel(
            query,
            &clusters,
            search_plan.as_ref(),
            options.engine,
            direction,
            &search_options,
            worker_count,
            run.as_ref(),
            options.instrument,
        )
    };

    // Merge in cluster order: output rows, summed counters and profile
    // clusters land exactly where the sequential loop would put them, for
    // any thread count.
    let mut stats = SearchStats::default();
    let mut partial = Vec::new();
    let mut profile = profiling.then(|| {
        Box::new(ExecutionProfile::new(
            options.engine.name(),
            options.threads.get(),
        ))
    });
    for (idx, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            ClusterRun::Done(outcome) => {
                stats.clusters += 1;
                stats.tuples += outcome.tuples;
                stats.predicate_tests += outcome.predicate_tests;
                stats.steps += outcome.predicate_tests;
                if let (Some(profile), Some(recorder)) = (profile.as_deref_mut(), outcome.recorder)
                {
                    let recorder = *recorder;
                    let events_dropped = recorder.events.dropped();
                    profile.push_cluster(ClusterProfile {
                        index: idx,
                        key: cluster_key(&clusters[idx]),
                        tuples: outcome.tuples,
                        metrics: recorder.metrics,
                        events: recorder.events.into_events(),
                        events_dropped,
                    });
                }
                for row in outcome.rows {
                    stats.matches += 1;
                    out.push_row(row).map_err(ExecError::Table)?;
                }
            }
            // A cluster skipped because the governor had already tripped
            // contributes nothing: it was never scanned.
            ClusterRun::Skipped => {}
            ClusterRun::Failed { cause } => {
                partial.push(ClusterFailure {
                    cluster: idx,
                    key: cluster_key(&clusters[idx]),
                    cause,
                });
            }
        }
    }
    if let Some(profile) = profile.as_deref_mut() {
        profile.phases.plan = plan_ns;
        profile.phases.execute = t_exec.map_or(0, |t| t.elapsed().as_nanos() as u64);
        profile.optimizer = Some(crate::explain::optimizer_report(query));
    }
    let result = QueryResult {
        table: out,
        stats,
        partial,
        profile,
    };
    if let Some(run) = run {
        if let Some(trip) = run.trip() {
            return Err(ExecError::Governed {
                trip,
                partial: Box::new(result),
            });
        }
    }
    Ok(result)
}

/// What one cluster's search produced: projected rows in match order plus
/// the per-cluster slices of the execution stats.
pub(crate) struct ClusterOutcome {
    pub(crate) tuples: u64,
    pub(crate) predicate_tests: u64,
    pub(crate) rows: Vec<Vec<Value>>,
    /// The armed trace/metrics recorder, handed back for the cluster-order
    /// profile merge (`None` when instrumentation was off).  Boxed so the
    /// common unarmed outcome stays small.
    pub(crate) recorder: Option<Box<ClusterRecorder>>,
}

/// Render a cluster's key values for diagnostics and profiles (empty when
/// the query has no `CLUSTER BY`).
pub(crate) fn cluster_key(cluster: &Cluster<'_>) -> String {
    cluster
        .key()
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// How one cluster's unit of work ended.
pub(crate) enum ClusterRun {
    /// Scanned to completion (possibly cut short by a governor trip — the
    /// rows are then a prefix of the ungoverned output).
    Done(ClusterOutcome),
    /// Never scanned: the governor had already tripped when this cluster
    /// came up.
    Skipped,
    /// The search panicked; the panic was contained and the other clusters
    /// kept running.
    Failed {
        /// The panic payload, as text.
        cause: String,
    },
}

/// Render a caught panic payload for diagnostics.
pub(crate) fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one cluster behind a panic barrier and the governor's trip check.
///
/// `catch_unwind` isolates a poisoned cluster (bad data tripping a debug
/// assertion, an injected failpoint, …) so the remaining clusters still
/// produce their matches; the failure is reported structurally via
/// [`QueryResult::partial`] instead of tearing down the whole query.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cluster_guarded(
    query: &CompiledQuery,
    cluster: &Cluster<'_>,
    idx: usize,
    search_plan: Option<&SearchPlan>,
    engine: EngineKind,
    direction: Direction,
    search_options: &SearchOptions,
    run: Option<&Arc<RunGovernor>>,
    instrument: Instrument,
    shared: Option<crate::patternset::SharedEvalHandle>,
) -> ClusterRun {
    if let Some(run) = run {
        if run.is_tripped() {
            return ClusterRun::Skipped;
        }
    }
    match catch_unwind(AssertUnwindSafe(|| {
        run_cluster(
            query,
            cluster,
            idx,
            search_plan,
            engine,
            direction,
            search_options,
            run,
            instrument,
            shared,
        )
    })) {
        Ok(outcome) => ClusterRun::Done(outcome),
        Err(payload) => ClusterRun::Failed {
            cause: panic_cause(payload),
        },
    }
}

/// Search a single cluster and project its matches.
///
/// This is the unit of work both the sequential loop and the worker pool
/// run; the private per-cluster [`EvalCounter`] makes it independent of
/// every other cluster, and counter totals are additive, so summing them in
/// cluster order reproduces the single-counter sequential total bit for
/// bit.
#[allow(clippy::too_many_arguments)]
fn run_cluster(
    query: &CompiledQuery,
    cluster: &Cluster<'_>,
    idx: usize,
    search_plan: Option<&SearchPlan>,
    engine: EngineKind,
    direction: Direction,
    search_options: &SearchOptions,
    run: Option<&Arc<RunGovernor>>,
    instrument: Instrument,
    shared: Option<crate::patternset::SharedEvalHandle>,
) -> ClusterOutcome {
    #[cfg(feature = "failpoints")]
    sqlts_relation::failpoints::hit("executor::cluster", idx as u64);
    #[cfg(not(feature = "failpoints"))]
    let _ = idx;
    let mut counter = match run {
        Some(run) => EvalCounter::governed(run.scope()),
        None => EvalCounter::new(),
    };
    if instrument.armed() {
        counter = counter.with_recorder(ClusterRecorder::new(
            query.elements.len(),
            instrument.capacity(),
        ));
    }
    if let Some(handle) = shared {
        counter = counter.with_shared(handle);
    }
    let matches = match (search_plan, engine, direction) {
        (_, _, Direction::Reverse) => find_matches_directed(
            query,
            cluster,
            Direction::Reverse,
            engine,
            search_options,
            &counter,
        ),
        (None, EngineKind::NaiveBacktrack, _) => {
            backtracking_search(&query.elements, cluster, search_options, &counter, None)
        }
        (None, _, _) => naive_search(&query.elements, cluster, search_options, &counter, None),
        (Some(p), _, _) => {
            find_matches_with_plan(&query.elements, cluster, p, search_options, &counter, None)
        }
    };
    let ctx = EvalCtx {
        cluster,
        policy: search_options.policy,
    };
    let rows = matches
        .into_iter()
        .map(|m| {
            let bindings = Bindings { spans: m.spans };
            eval_projection(&query.projection, &ctx, &bindings)
        })
        .collect();
    // Flush the last partially-spent credit batch so the governor's
    // consumed-step accounting is exact at end of cluster.
    counter.finish();
    if counter.armed() && counter.tripped() {
        if let Some(trip) = run.and_then(|r| r.trip()) {
            counter.emit(TraceEvent::GovernorTrip {
                cause: trip.reason.trace_cause(),
            });
        }
    }
    ClusterOutcome {
        tuples: cluster.len() as u64,
        predicate_tests: counter.total(),
        rows,
        recorder: counter.into_recorder().map(Box::new),
    }
}

/// Fan the clusters out over `worker_count` scoped threads.
///
/// Workers pull cluster indices from a shared atomic cursor (dynamic
/// load balancing: cluster sizes are often skewed) and deposit each
/// outcome into that cluster's dedicated slot, so the returned vector is
/// in cluster order regardless of which worker finished when.  Each unit
/// of work runs behind [`run_cluster_guarded`]'s panic barrier, so a
/// panicking cluster never unwinds through the scoped pool; once the
/// shared governor trips, the remaining clusters come back
/// [`ClusterRun::Skipped`].
#[allow(clippy::too_many_arguments)]
fn run_clusters_parallel(
    query: &CompiledQuery,
    clusters: &[Cluster<'_>],
    search_plan: Option<&SearchPlan>,
    engine: EngineKind,
    direction: Direction,
    search_options: &SearchOptions,
    worker_count: usize,
    run: Option<&Arc<RunGovernor>>,
    instrument: Instrument,
) -> Vec<ClusterRun> {
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ClusterRun>>> = clusters.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                let Some(cluster) = clusters.get(idx) else {
                    break;
                };
                let outcome = run_cluster_guarded(
                    query,
                    cluster,
                    idx,
                    search_plan,
                    engine,
                    direction,
                    search_options,
                    run,
                    instrument,
                    None,
                );
                *slots[idx].lock().expect("slot lock") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("worker pool processed every cluster")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlts_relation::{ColumnType, Value};

    fn quote_table() -> Table {
        let schema = Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap();
        // Two stocks interleaved; BBB has an up-15%-down-20% pattern.
        let csv = "name,date,price\n\
            AAA,1999-01-01,50\n\
            BBB,1999-01-01,10\n\
            AAA,1999-01-02,51\n\
            BBB,1999-01-02,12\n\
            AAA,1999-01-03,52\n\
            BBB,1999-01-03,9\n";
        Table::from_csv_str(schema, csv).unwrap()
    }

    #[test]
    fn example1_end_to_end() {
        let result = execute_query(
            "SELECT X.name, Y.price AS peak FROM quote \
             CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
             WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price",
            &quote_table(),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(result.table.len(), 1);
        assert_eq!(result.table.cell(0, 0), &Value::from("BBB"));
        assert_eq!(result.table.cell(0, 1), &Value::from(12.0));
        assert_eq!(result.stats.matches, 1);
        assert_eq!(result.stats.clusters, 2);
        assert_eq!(result.stats.tuples, 6);
        assert!(result.stats.predicate_tests > 0);
    }

    #[test]
    fn clusters_are_independent() {
        // A pattern spanning the last AAA row and the first BBB row must
        // not match: clusters are separate streams.
        let result = execute_query(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE X.price > 50 AND Y.price < 10",
            &quote_table(),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(result.table.len(), 0);
    }

    #[test]
    fn engines_agree_end_to_end() {
        let src = "SELECT X.name, FIRST(Y).date AS from_d, LAST(Y).date AS to_d \
                   FROM quote CLUSTER BY name SEQUENCE BY date AS (X, *Y) \
                   WHERE Y.price > Y.previous.price";
        let table = quote_table();
        let mut outputs = Vec::new();
        for engine in [EngineKind::Naive, EngineKind::Ops, EngineKind::OpsShiftOnly] {
            let r = execute_query(
                src,
                &table,
                &ExecOptions {
                    engine,
                    ..Default::default()
                },
            )
            .unwrap();
            outputs.push(r.table);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn duplicate_projection_names_are_disambiguated() {
        let result = execute_query(
            "SELECT X.price, Y.price FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE Y.price > X.price",
            &quote_table(),
            &ExecOptions::default(),
        )
        .unwrap();
        let names: Vec<&str> = result
            .table
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["price", "price_2"]);
    }

    #[test]
    fn reverse_and_auto_directions_return_forward_order() {
        // The pattern must have non-overlapping candidate matches: forward
        // search is left-maximal, reverse right-maximal, and they only
        // provably coincide when candidates don't overlap (each cluster
        // here has a single isolated price drop).
        let table = quote_table();
        let src = "SELECT X.name, X.date AS d FROM quote CLUSTER BY name SEQUENCE BY date \
                   AS (X, Y) WHERE Y.price < X.price";
        let fwd = execute_query(src, &table, &ExecOptions::default()).unwrap();
        for direction in [DirectionChoice::Reverse, DirectionChoice::Auto] {
            let r = execute_query(
                src,
                &table,
                &ExecOptions {
                    direction,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(r.table, fwd.table, "{direction:?}");
        }
    }

    #[test]
    fn compile_errors_surface() {
        let err = execute_query(
            "SELECT X.nope FROM quote CLUSTER BY name SEQUENCE BY date AS (X)",
            &quote_table(),
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::Lang(_)));
        assert!(err.to_string().contains("no such column"));
    }

    #[test]
    fn parallel_execution_is_bit_identical() {
        // Output rows, row order, and every stats field must match the
        // sequential run for any thread count — including more workers
        // than clusters.
        let table = quote_table();
        let queries = [
            "SELECT X.name, Y.price AS peak FROM quote \
             CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
             WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price",
            "SELECT X.name, FIRST(Y).date AS from_d FROM quote \
             CLUSTER BY name SEQUENCE BY date AS (X, *Y) \
             WHERE Y.price > Y.previous.price",
        ];
        for src in queries {
            for engine in [
                EngineKind::Naive,
                EngineKind::NaiveBacktrack,
                EngineKind::Ops,
                EngineKind::OpsShiftOnly,
            ] {
                let opts = |threads: usize| ExecOptions {
                    engine,
                    threads: NonZeroUsize::new(threads).unwrap(),
                    ..Default::default()
                };
                let seq = execute_query(src, &table, &opts(1)).unwrap();
                for threads in [2, 4, 16] {
                    let par = execute_query(src, &table, &opts(threads)).unwrap();
                    assert_eq!(par.table, seq.table, "{engine:?} threads={threads}");
                    assert_eq!(par.stats, seq.stats, "{engine:?} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_reverse_direction_agrees() {
        let table = quote_table();
        let src = "SELECT X.name, X.date AS d FROM quote CLUSTER BY name SEQUENCE BY date \
                   AS (X, Y) WHERE Y.price < X.price";
        let opts = |threads: usize| ExecOptions {
            direction: DirectionChoice::Reverse,
            threads: NonZeroUsize::new(threads).unwrap(),
            ..Default::default()
        };
        let seq = execute_query(src, &table, &opts(1)).unwrap();
        let par = execute_query(src, &table, &opts(8)).unwrap();
        assert_eq!(par.table, seq.table);
        assert_eq!(par.stats, seq.stats);
    }

    #[test]
    fn stats_display() {
        let s = SearchStats {
            predicate_tests: 10,
            matches: 2,
            clusters: 1,
            tuples: 5,
            steps: 10,
        };
        assert_eq!(
            s.to_string(),
            "2 matches, 10 predicate tests over 5 tuples in 1 clusters"
        );
    }

    #[test]
    fn unlimited_governor_result_is_complete() {
        let result = execute_query(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE Y.price > X.price",
            &quote_table(),
            &ExecOptions::default(),
        )
        .unwrap();
        assert!(result.is_complete());
        assert_eq!(result.stats.steps, result.stats.predicate_tests);
    }

    #[test]
    fn step_budget_returns_governed_error_with_partial_prefix() {
        use crate::governor::TripReason;
        let table = quote_table();
        let src = "SELECT X.name, Y.price AS p FROM quote \
                   CLUSTER BY name SEQUENCE BY date AS (X, Y) \
                   WHERE Y.price > X.price";
        let full = execute_query(src, &table, &ExecOptions::default()).unwrap();
        assert!(full.table.len() > 1, "need several matches to truncate");
        // A one-step budget trips during the very first cluster.
        let err = execute_query(
            src,
            &table,
            &ExecOptions {
                governor: Governor::unlimited().with_max_steps(1),
                ..Default::default()
            },
        )
        .unwrap_err();
        let ExecError::Governed { trip, partial } = err else {
            panic!("expected governed termination");
        };
        assert_eq!(trip.reason, TripReason::StepBudget);
        assert!(partial.table.len() < full.table.len());
        // Prefix consistency: every partial row appears in the full output
        // at the same position.
        for (i, row) in partial.table.rows().enumerate() {
            assert_eq!(row, full.table.row(i));
        }
        assert!(trip.steps >= 1);
    }

    #[test]
    fn match_budget_truncates_output() {
        use crate::governor::TripReason;
        let table = quote_table();
        let src = "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
                   WHERE Y.price <> X.price";
        let full = execute_query(src, &table, &ExecOptions::default()).unwrap();
        assert!(full.table.len() >= 2);
        let err = execute_query(
            src,
            &table,
            &ExecOptions {
                governor: Governor::unlimited().with_max_matches(1),
                ..Default::default()
            },
        )
        .unwrap_err();
        let ExecError::Governed { trip, partial } = err else {
            panic!("expected governed termination");
        };
        assert_eq!(trip.reason, TripReason::MatchBudget);
        assert_eq!(partial.table.len(), 1);
        assert_eq!(partial.table.row(0), full.table.row(0));
    }

    #[test]
    fn cancellation_token_stops_execution() {
        use crate::governor::{CancellationToken, TripReason};
        let token = CancellationToken::new();
        token.cancel(); // cancelled before the query even starts
        let err = execute_query(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE Y.price > X.price",
            &quote_table(),
            &ExecOptions {
                governor: Governor::unlimited().with_token(token),
                ..Default::default()
            },
        )
        .unwrap_err();
        let ExecError::Governed { trip, partial } = err else {
            panic!("expected governed termination");
        };
        assert_eq!(trip.reason, TripReason::Cancelled);
        assert_eq!(partial.table.len(), 0);
    }

    #[test]
    fn governed_run_without_trip_is_bit_identical() {
        // A generous budget never trips, so the governed run must be
        // indistinguishable from the ungoverned one at every thread count.
        let table = quote_table();
        let src = "SELECT X.name, Y.price AS p FROM quote \
                   CLUSTER BY name SEQUENCE BY date AS (X, *Y) \
                   WHERE Y.price > Y.previous.price";
        let plain = execute_query(src, &table, &ExecOptions::default()).unwrap();
        for threads in [1usize, 4] {
            let governed = execute_query(
                src,
                &table,
                &ExecOptions {
                    governor: Governor::unlimited()
                        .with_max_steps(1_000_000)
                        .with_timeout(std::time::Duration::from_secs(3600)),
                    threads: NonZeroUsize::new(threads).unwrap(),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(governed.table, plain.table, "threads={threads}");
            assert_eq!(governed.stats, plain.stats, "threads={threads}");
            assert!(governed.is_complete());
        }
    }

    #[test]
    fn expired_deadline_trips_before_work() {
        use crate::governor::TripReason;
        let err = execute_query(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE Y.price > X.price",
            &quote_table(),
            &ExecOptions {
                governor: Governor::unlimited().with_timeout(std::time::Duration::ZERO),
                ..Default::default()
            },
        )
        .unwrap_err();
        let ExecError::Governed { trip, .. } = err else {
            panic!("expected governed termination");
        };
        assert_eq!(trip.reason, TripReason::Deadline);
    }

    #[test]
    fn governed_error_display_mentions_partial() {
        let err = execute_query(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE Y.price > X.price",
            &quote_table(),
            &ExecOptions {
                governor: Governor::unlimited().with_max_steps(1),
                ..Default::default()
            },
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("resource governor"), "{msg}");
        assert!(msg.contains("partial result"), "{msg}");
    }

    #[test]
    fn cluster_failure_display() {
        let anon = ClusterFailure {
            cluster: 3,
            key: String::new(),
            cause: "boom".into(),
        };
        assert_eq!(anon.to_string(), "cluster 3 failed: boom");
        let keyed = ClusterFailure {
            cluster: 0,
            key: "IBM".into(),
            cause: "boom".into(),
        };
        assert_eq!(keyed.to_string(), "cluster 0 (IBM) failed: boom");
    }
}
