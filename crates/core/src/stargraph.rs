//! The implication graph and star-pattern `shift` / `next` (§5.1).
//!
//! For patterns containing starred elements, the fixed-alignment reasoning
//! of the `S` matrix no longer applies: a shifted copy of the pattern
//! consumes a *variable* number of tuples per element.  The paper models
//! the simultaneous progress of the original and the shifted pattern as a
//! graph over the entries of θ (below the diagonal): node `(j, k)` means
//! *the original pattern is at element `j` while the shifted copy is at
//! element `k` on the same input tuple*.  Arcs encode the legal joint
//! transitions, which depend on which of the two elements are starred:
//!
//! 1. both stars, `θ[j][k] = U` → arcs to `(j+1,k)`, `(j+1,k+1)`, `(j,k+1)`;
//! 2. both stars, `θ[j][k] = 1` → arcs to `(j+1,k)`, `(j+1,k+1)` (a tuple
//!    satisfying `p_j` must satisfy `p_k`, so the shifted copy cannot
//!    *fail over* to `k+1` while the original stays at `j`);
//! 3. both non-star → single arc to `(j+1,k+1)`;
//! 4. `j` star, `k` non-star → arcs to `(j,k+1)`, `(j+1,k+1)`;
//! 5. `k` star, `j` non-star → arcs to `(j+1,k)`, `(j+1,k+1)`.
//!
//! Arcs incident to a 0-valued node are dropped.  `G_P^j` replaces row `j`
//! with row `j` of φ (the failure information) and truncates below.
//! `shift(j)` is then the least `s` such that a node `(s+1, 1)` reaches
//! the last row; `next(j)` follows the unique chain of *deterministic*
//! nodes from `(shift(j)+1, 1)`.

use crate::matrices::{PrecondMatrices, Predicates};
use crate::shift_next::ShiftNext;
use sqlts_tvl::Truth;

/// Compute `shift` and `next` for a (possibly starred) pattern via the
/// implication-graph construction.
///
/// Also valid for star-free patterns (where it may be slightly more
/// conservative than the `S`-matrix method — both are provided and
/// compared by the ablation experiment E10).
pub fn star_shift_next(pattern: Predicates<'_>, pre: &PrecondMatrices) -> ShiftNext {
    let m = pattern.len();
    let mut shift = vec![0usize; m + 1];
    let mut next = vec![0usize; m + 1];
    for j in 1..=m {
        let g = FailureGraph::build(pattern, pre, j);
        let (s, n) = g.shift_and_next();
        shift[j] = s;
        next[j] = n;
    }
    ShiftNext::from_arrays(shift, next)
}

/// `G_P^j`: the implication graph specialized to a failure at element `j`.
///
/// Nodes are `(row, col)` with `2 ≤ row ≤ j`, `1 ≤ col < row` (1-based,
/// the strictly-lower-triangular part).  Row `j` carries φ values, rows
/// below carry θ values.
struct FailureGraph<'a> {
    pattern: Predicates<'a>,
    pre: &'a PrecondMatrices,
    /// The failure row (the paper's `j`).
    fail_row: usize,
}

impl<'a> FailureGraph<'a> {
    fn build(pattern: Predicates<'a>, pre: &'a PrecondMatrices, fail_row: usize) -> Self {
        FailureGraph {
            pattern,
            pre,
            fail_row,
        }
    }

    /// The value of node `(row, col)`: φ on the failure row, θ elsewhere.
    fn value(&self, row: usize, col: usize) -> Truth {
        debug_assert!(col < row && row <= self.fail_row);
        if row == self.fail_row {
            self.pre.phi.get(row, col)
        } else {
            self.pre.theta.get(row, col)
        }
    }

    fn node_exists(&self, row: usize, col: usize) -> bool {
        (2..=self.fail_row).contains(&row) && (1..row).contains(&col)
    }

    /// Outgoing arcs of `(row, col)` per the five transition rules,
    /// dropping arcs whose endpoint is missing or 0-valued.
    fn arcs(&self, row: usize, col: usize) -> Vec<(usize, usize)> {
        if self.value(row, col) == Truth::False {
            return Vec::new(); // arcs from 0-nodes are discarded
        }
        let j_star = self.pattern.star(row);
        let k_star = self.pattern.star(col);
        let mut out = Vec::with_capacity(3);
        let candidates: &[(usize, usize)] = match (j_star, k_star) {
            (true, true) => {
                if self.value(row, col) == Truth::True {
                    &[(1, 0), (1, 1)]
                } else {
                    &[(1, 0), (1, 1), (0, 1)]
                }
            }
            (false, false) => &[(1, 1)],
            (true, false) => &[(0, 1), (1, 1)],
            (false, true) => &[(1, 0), (1, 1)],
        };
        for &(dr, dc) in candidates {
            let (r, c) = (row + dr, col + dc);
            if self.node_exists(r, c) && self.value(r, c) != Truth::False {
                out.push((r, c));
            }
        }
        out
    }

    /// Compute `(shift, next)` for this failure row (Definition 1 + the
    /// deterministic-walk rule of §5.1).
    fn shift_and_next(&self) -> (usize, usize) {
        let j = self.fail_row;
        if j == 1 {
            // Failing at the very first element: move the input forward.
            return (1, 0);
        }

        // σ(j): reverse reachability from the (non-zero) last-row nodes.
        let reach = self.reaches_last_row();
        let sigma_min = (1..=j.saturating_sub(2)).find(|&s| {
            self.node_exists(s + 1, 1)
                && self.value(s + 1, 1) != Truth::False
                && reach[self.index(s + 1, 1)]
        });

        let shift = match sigma_min {
            Some(s) => s,
            None if self.pre.phi.get(j, 1) != Truth::False => j - 1,
            None => j,
        };

        if shift == j {
            return (j, 0);
        }

        // next(j): walk the deterministic chain from (shift+1, 1).
        //
        // Skipping the element at column `col` (inheriting old element
        // `row`'s span instead of re-testing) is only sound when
        //
        // 1. the node's value is *proven* (1) — the old tuples certainly
        //    satisfy the new element's predicate — and
        // 2. the span structure transfers — both elements are non-star,
        //    so the inherited span is exactly one tuple and the greedy
        //    boundary is trivially right.
        //
        // This is stricter than the paper's wording (which only inspects
        // arc-target values): our randomized pattern fuzzer exhibits
        // wrong matches under the literal rule — e.g. a U-valued start
        // node skipped unverified, or a non-star element inheriting a
        // two-tuple star span when 0-entries prune a star row's arcs down
        // to one.  Star patterns therefore resume at the first star (or
        // unproven) column; star-free patterns keep full KMP-style skips
        // (and normally use the S-matrix tables anyway).
        let (mut row, mut col) = (shift + 1, 1);
        let next = loop {
            if row == j {
                // Reached the last row: the skipped prefix is verified;
                // resume at element j - shift (which is re-tested).
                break j - shift;
            }
            if self.pattern.star(row)
                || self.pattern.star(col)
                || self.value(row, col) != Truth::True
            {
                break col;
            }
            let arcs = self.arcs(row, col);
            if arcs.len() != 1 {
                break col;
            }
            (row, col) = arcs[0];
        };
        // Geometry of Figure 4: checking resumes no later than element
        // j - shift (the element aligned with the failed input tuple).
        (shift, next.min(j - shift))
    }

    fn index(&self, row: usize, col: usize) -> usize {
        // Dense index over rows 2..=fail_row.
        (row - 2) * (row - 1) / 2 + (col - 1)
    }

    /// For every node, can it reach a non-zero node in the last row?
    fn reaches_last_row(&self) -> Vec<bool> {
        let j = self.fail_row;
        let size = self.index(j, j - 1) + 1;
        let mut reach = vec![false; size];
        // Seed: non-zero nodes of the last row reach themselves.
        for col in 1..j {
            if self.value(j, col) != Truth::False {
                reach[self.index(j, col)] = true;
            }
        }
        // Arcs only go down/right, so a single sweep from high rows to low
        // rows (and high columns to low columns) converges.
        for row in (2..=j).rev() {
            for col in (1..row).rev() {
                if reach[self.index(row, col)] {
                    continue;
                }
                if self
                    .arcs(row, col)
                    .iter()
                    .any(|&(r, c)| reach[self.index(r, c)])
                {
                    reach[self.index(row, col)] = true;
                }
            }
        }
        reach
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::PrecondMatrices;
    use sqlts_lang::{compile, CompileOptions, CompiledQuery};
    use sqlts_relation::{ColumnType, Schema};

    fn quote_schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    fn example9() -> CompiledQuery {
        compile(
            "SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
             FROM quote CLUSTER BY name SEQUENCE BY date \
             AS (*X, Y, *Z, *T, U, *V, S) \
             WHERE X.price > X.previous.price \
             AND 30 < Y.price AND Y.price < 40 \
             AND Z.price < Z.previous.price \
             AND T.price > T.previous.price \
             AND 35 < U.price AND U.price < 40 \
             AND V.price < V.previous.price \
             AND S.price < 30",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn example9_shift6_and_next6_match_paper() {
        // §5.1: "there is a non-zero path from node θ41 to φ61, thus
        // shift(6) = 3. … θ41 = 1 … is not a deterministic node …
        // we conclude that next(6) = 1."
        let q = example9();
        let pattern = Predicates::new(&q.elements);
        let pre = PrecondMatrices::build(pattern);
        let sn = star_shift_next(pattern, &pre);
        assert_eq!(sn.shift(6), 3, "paper: shift(6) = 3");
        assert_eq!(sn.next(6), 1, "paper: next(6) = 1");
    }

    #[test]
    fn example9_paper_side_conditions() {
        // §5.1 also argues: "there is no path to the last row starting
        // from node θ31: thus, 2 is not a possible shift. Also there is no
        // path … from θ21; thus a shift of size 1 will never succeed."
        let q = example9();
        let pattern = Predicates::new(&q.elements);
        let pre = PrecondMatrices::build(pattern);
        let g = FailureGraph::build(pattern, &pre, 6);
        let reach = g.reaches_last_row();
        assert!(!reach[g.index(2, 1)], "θ21 must not reach row 6");
        assert!(!reach[g.index(3, 1)], "θ31 must not reach row 6");
        assert!(reach[g.index(4, 1)], "θ41 must reach row 6");
    }

    #[test]
    fn failure_at_element_one() {
        let q = example9();
        let pattern = Predicates::new(&q.elements);
        let pre = PrecondMatrices::build(pattern);
        let sn = star_shift_next(pattern, &pre);
        assert_eq!(sn.shift(1), 1);
        assert_eq!(sn.next(1), 0);
    }

    #[test]
    fn all_star_identical_predicates() {
        // (*A, *B) with identical "falling" predicates: failing at B when
        // B has not yet matched means the input failed "falling" right
        // after a falling run.  Shifting by 1 would need that same tuple
        // (or a later one) to restart... φ[2][1] = 0 (p1 ⇒ p2), σ empty,
        // so shift(2) = 2, next(2) = 0.
        let q = compile(
            "SELECT FIRST(A).date FROM quote SEQUENCE BY date AS (*A, *B) \
             WHERE A.price < A.previous.price AND B.price < B.previous.price",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let pattern = Predicates::new(&q.elements);
        let pre = PrecondMatrices::build(pattern);
        let sn = star_shift_next(pattern, &pre);
        assert_eq!(sn.shift(2), 2);
        assert_eq!(sn.next(2), 0);
    }

    #[test]
    fn rising_falling_rising_example8() {
        // Example 8: (*X rising, *Y falling, *Z rising).  Failing at Y
        // (input not falling, Y not yet matched) — the failed tuple is
        // non-falling after a rising run; it may extend a *new* rising
        // element 1... φ[2][1]: ¬p2 ⇒ p1? ¬(price<prev) leaves equality
        // open, so U; σ(2) is vacuous (no s ≤ 0)... shift(2) = 1.
        let q = compile(
            "SELECT X.name, FIRST(X).date AS sdate, LAST(Z).date AS edate \
             FROM quote CLUSTER BY name SEQUENCE BY date AS (*X, *Y, *Z) \
             WHERE X.price > X.previous.price AND Y.price < Y.previous.price \
             AND Z.price > Z.previous.price",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let pattern = Predicates::new(&q.elements);
        let pre = PrecondMatrices::build(pattern);
        let sn = star_shift_next(pattern, &pre);
        assert_eq!(sn.shift(2), 1);
        assert_eq!(sn.next(2), 1);
        // Failing at Z after an X-run and a Y-run: the failed tuple is
        // neither falling (it ended Y) nor rising (it failed Z), and no
        // tuple of the X-run or Y-run can start a new rising element 1
        // that survives — p1 ≡ p3, θ21 = 0 and φ31 = 0 prove the whole
        // prefix dead, so the search skips past the failed tuple.
        assert_eq!(sn.shift(3), 3);
        assert_eq!(sn.next(3), 0);
    }

    #[test]
    fn mixed_star_nonstar_pairs() {
        // (A fall, *B rise): failing B before it matched — the failed
        // tuple is not rising; it *may* be falling, so element 1 can
        // restart on it: shift(2) = 1, re-test from element 1.
        let q = compile(
            "SELECT A.date FROM quote SEQUENCE BY date AS (A, *B) \
             WHERE A.price < A.previous.price AND B.price > B.previous.price",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let pattern = Predicates::new(&q.elements);
        let pre = PrecondMatrices::build(pattern);
        let sn = star_shift_next(pattern, &pre);
        assert_eq!((sn.shift(2), sn.next(2)), (1, 1));

        // (A fall, *B fall): identical predicates — failing B refutes a
        // restart on the failed tuple too: full shift.
        let q = compile(
            "SELECT A.date FROM quote SEQUENCE BY date AS (A, *B) \
             WHERE A.price < A.previous.price AND B.price < B.previous.price",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let pattern = Predicates::new(&q.elements);
        let pre = PrecondMatrices::build(pattern);
        let sn = star_shift_next(pattern, &pre);
        assert_eq!((sn.shift(2), sn.next(2)), (2, 0));
    }

    #[test]
    fn star_tables_never_exceed_count_bounds() {
        // Structural soundness of every (shift, next) pair the graph
        // method produces, across a battery of patterns: the runtime
        // realignment indexes counts[shift + next - 1], which must stay
        // within the completed prefix.
        let sources = [
            "SELECT A.date FROM quote SEQUENCE BY date AS (*A, B, *C, D) \
             WHERE A.price < A.previous.price AND B.price > 40 \
             AND C.price > C.previous.price AND D.price < 30",
            "SELECT A.date FROM quote SEQUENCE BY date AS (A, *B, *C) \
             WHERE A.price = 10 AND B.price <= B.previous.price \
             AND C.price >= C.previous.price",
            "SELECT A.date FROM quote SEQUENCE BY date AS (*A, *B, *C, *D, E) \
             WHERE A.price <= A.previous.price AND B.price <= B.previous.price \
             AND C.price <= C.previous.price AND D.price <= D.previous.price \
             AND E.price > E.previous.price",
        ];
        for src in sources {
            let q = compile(src, &quote_schema(), &CompileOptions::default()).unwrap();
            let pattern = Predicates::new(&q.elements);
            let pre = PrecondMatrices::build(pattern);
            let sn = star_shift_next(pattern, &pre);
            for j in 1..=pattern.len() {
                let (sh, nx) = (sn.shift(j), sn.next(j));
                assert!((1..=j).contains(&sh), "{src}: shift({j}) = {sh}");
                if nx == 0 {
                    assert_eq!(sh, j, "{src}: next({j}) = 0 needs full shift");
                } else {
                    assert!(sh + nx - 1 < j, "{src}: shift({j})={sh} next({j})={nx}");
                }
            }
        }
    }

    #[test]
    fn graph_method_consistent_with_matrix_method_on_star_free() {
        // For star-free patterns both methods must produce *sound* tables;
        // the graph method may be more conservative but never more
        // aggressive on shift.
        let q = compile(
            "SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C, D) \
             WHERE A.price < A.previous.price \
             AND B.price < B.previous.price AND B.price > 40 AND B.price < 50 \
             AND C.price > C.previous.price AND C.price < 52 \
             AND D.price > D.previous.price",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let pattern = Predicates::new(&q.elements);
        let pre = PrecondMatrices::build(pattern);
        let graph = star_shift_next(pattern, &pre);
        let matrix = crate::shift_next::compute(&pre);
        for j in 1..=4 {
            assert!(
                graph.shift(j) <= matrix.shift(j),
                "graph shift({j}) = {} must not exceed matrix shift({j}) = {}",
                graph.shift(j),
                matrix.shift(j)
            );
        }
    }
}
