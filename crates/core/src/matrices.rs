//! The positive (θ) and negative (φ) precondition matrices of §4.2.
//!
//! For a pattern `p₁ … p_m`, the matrices capture every pairwise logical
//! relationship, in three-valued logic (entries are defined for `j ≥ k`):
//!
//! ```text
//! θ[j][k] = 1  if p_j ⇒ p_k   and p_j ≢ F
//!           0  if p_j ⇒ ¬p_k
//!           U  otherwise
//!
//! φ[j][k] = 1  if ¬p_j ⇒ p_k
//!           0  if ¬p_j ⇒ ¬p_k  and p_j ≢ T
//!           U  otherwise
//! ```
//!
//! The implications are decided by the [`sqlts_constraints`] solver over
//! each element's **local** predicate formula.  Elements with non-local
//! conjuncts (references to earlier pattern variables across a star) are
//! handled conservatively, per the gating rules in DESIGN.md §3:
//!
//! * `θ[j][k] = 1` additionally requires `p_k` to be purely local, because
//!   a `1` lets the runtime *skip* re-checking `p_k`;
//! * `φ[j][k] = 1` additionally requires both to be purely local (it
//!   asserts knowledge about `¬p_j`, whose non-local part is invisible);
//! * the `0` cases are sound as-is: non-local conjuncts only *strengthen*
//!   a predicate, and contradiction/implication proofs against the weaker
//!   local part carry over.

use crate::counters::EvalCounter;
use sqlts_constraints::{Atom, Formula, System};
use sqlts_lang::PatternElement;
use sqlts_tvl::{TriMatrix, Truth};

/// A light view over the compiled pattern elements with the accessors the
/// optimizer needs.
#[derive(Clone, Copy)]
pub struct Predicates<'a> {
    elements: &'a [PatternElement],
}

impl<'a> Predicates<'a> {
    /// Wrap a compiled pattern.
    pub fn new(elements: &'a [PatternElement]) -> Predicates<'a> {
        Predicates { elements }
    }

    /// Pattern length `m`.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` iff the pattern is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// 1-based accessor matching the paper's `p_j`.
    pub fn formula(&self, j: usize) -> &'a Formula {
        &self.elements[j - 1].formula
    }

    /// 1-based star flag.
    pub fn star(&self, j: usize) -> bool {
        self.elements[j - 1].star
    }

    /// 1-based purity flag.
    pub fn purely_local(&self, j: usize) -> bool {
        self.elements[j - 1].purely_local()
    }

    /// The elements.
    pub fn elements(&self) -> &'a [PatternElement] {
        self.elements
    }
}

/// The θ and φ matrices for a pattern.
#[derive(Clone, Debug)]
pub struct PrecondMatrices {
    /// Positive precondition matrix θ.
    pub theta: TriMatrix,
    /// Negative precondition matrix φ.
    pub phi: TriMatrix,
}

impl PrecondMatrices {
    /// Compute θ and φ for a compiled pattern.
    ///
    /// This is part of query compilation; its cost (`O(m²)` solver calls)
    /// is measured by experiment E8.
    pub fn build(pattern: Predicates<'_>) -> PrecondMatrices {
        let m = pattern.len();
        let mut theta = TriMatrix::unknown(m);
        let mut phi = TriMatrix::unknown(m);

        // Pre-compute per-element facts.
        let sat: Vec<Truth> = (1..=m)
            .map(|j| pattern.formula(j).satisfiability())
            .collect();
        let tautology: Vec<bool> = (1..=m)
            .map(|j| Formula::conj(System::new()).implies(pattern.formula(j)))
            .collect();
        let negation: Vec<Option<Formula>> = (1..=m)
            .map(|j| negate_formula(pattern.formula(j), MAX_NEGATION_DNF))
            .collect();

        for j in 1..=m {
            let fj = pattern.formula(j);
            for k in 1..=j {
                let fk = pattern.formula(k);
                // --- θ[j][k] ---
                let t = if pattern.purely_local(k) && sat[j - 1] != Truth::False && fj.implies(fk) {
                    Truth::True
                } else if fj.contradicts(fk) {
                    Truth::False
                } else {
                    Truth::Unknown
                };
                theta.set(j, k, t);

                // --- φ[j][k] ---
                let p = if pattern.purely_local(j)
                    && pattern.purely_local(k)
                    && !tautology[j - 1]
                    && negations_contradict(&negation[j - 1], &negation[k - 1])
                {
                    Truth::True
                } else if pattern.purely_local(j) && !tautology[j - 1] && fk.implies(fj) {
                    Truth::False
                } else {
                    Truth::Unknown
                };
                phi.set(j, k, p);
            }
        }
        PrecondMatrices { theta, phi }
    }

    /// Pattern length `m`.
    pub fn dim(&self) -> usize {
        self.theta.dim()
    }
}

const MAX_NEGATION_DNF: usize = 256;

/// `¬a ∧ ¬b` provably unsatisfiable, i.e. `¬p_j ⇒ p_k`.
fn negations_contradict(a: &Option<Formula>, b: &Option<Formula>) -> bool {
    match (a, b) {
        (Some(na), Some(nb)) => na.contradicts(nb),
        _ => false,
    }
}

/// The negation of a DNF formula, itself in DNF (bounded expansion).
///
/// Positivity assumptions are *domain facts*, not part of the predicate,
/// so they are carried over onto every branch of the negation.
pub(crate) fn negate_formula(f: &Formula, max: usize) -> Option<Formula> {
    // ¬(d₁ ∨ … ∨ d_n) = ¬d₁ ∧ … ∧ ¬d_n, each ¬dᵢ a disjunction of
    // negated atoms; distribute.
    let mut acc: Vec<System> = vec![System::new()];
    for d in f.disjuncts() {
        let atoms = d.atoms();
        if atoms.is_empty() {
            // ¬TRUE = FALSE annihilates the conjunction.
            return Some(Formula::none());
        }
        if acc.len() * atoms.len() > max {
            return None;
        }
        let positive: Vec<_> = d.positive_vars().collect();
        let mut next_acc = Vec::with_capacity(acc.len() * atoms.len());
        for branch in &acc {
            for atom in atoms {
                let mut s = branch.clone();
                s.push(atom.negate());
                for &v in &positive {
                    s.assume_positive(v);
                }
                next_acc.push(s);
            }
        }
        acc = next_acc;
    }
    // Drop trivially-contradictory branches to keep downstream checks fast.
    let kept: Vec<System> = acc
        .into_iter()
        .filter(|s| !s.satisfiability().is_false())
        .collect();
    Some(Formula::disjunction(kept))
}

/// Evaluate pattern element `j` (1-based) on input position `pos`
/// (0-based) with the supplied bindings, bumping the cost counter.
///
/// Lives here (rather than in the engines) so every engine counts cost
/// identically: one test per (input element, pattern element) pair, as in
/// the paper's §7.
#[inline]
pub(crate) fn test_element(
    pattern: Predicates<'_>,
    j: usize,
    ctx: &sqlts_lang::EvalCtx<'_>,
    pos: usize,
    bindings: &sqlts_lang::Bindings,
    counter: &EvalCounter,
) -> bool {
    counter.bump();
    // Shared pattern-set memo: the test is still charged (bump above),
    // but a cached outcome — evaluated by another member of the shared
    // group or derived through the implication lattice — short-circuits
    // the conjunct walk.  Purely-local classes are pure in
    // (class, cluster, pos, policy), so the cached value is exactly what
    // evaluation would produce; solo runs pay one branch on a `None`.
    if let Some(cached) = counter.shared_probe(j - 1, pos) {
        counter.record_test(pos + 1, j, cached);
        return cached;
    }
    let ok = pattern.elements()[j - 1]
        .conjuncts
        .iter()
        .all(|c| sqlts_lang::eval_conjunct(c, ctx, pos, bindings));
    counter.shared_store(j - 1, pos, ctx.cluster.len(), ok);
    // Advance/Fail tracing rides on the same call so every engine emits
    // the identical event per (input element, pattern element) pair.
    counter.record_test(pos + 1, j, ok);
    ok
}

/// `true` iff the whole element predicate is a single constant-equality
/// atom (the KMP-applicable fragment of Example 3).
pub fn is_constant_equality(
    element: &PatternElement,
) -> Option<(sqlts_constraints::Var, sqlts_rational::Rational)> {
    let f = &element.formula;
    if !element.purely_local() || f.disjuncts().len() != 1 {
        return None;
    }
    let atoms = f.disjuncts()[0].atoms();
    if atoms.len() != 1 {
        return None;
    }
    match &atoms[0] {
        Atom::VarConst {
            x,
            op: sqlts_constraints::CmpOp::Eq,
            c,
        } => Some((*x, *c)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlts_lang::{compile, CompileOptions};
    use sqlts_relation::{ColumnType, Schema};
    use Truth::*;

    fn quote_schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    /// Example 4's pattern, as compiled from SQL-TS source.  Note the
    /// paper's predicates p1..p4 are the conditions on Y, Z, T, U (X only
    /// carries the cluster filter in Example 4; here we use the pure
    /// four-element pattern of Example 5).
    fn example4_pattern() -> sqlts_lang::CompiledQuery {
        compile(
            "SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C, D) \
             WHERE A.price < A.previous.price \
             AND B.price < B.previous.price AND B.price > 40 AND B.price < 50 \
             AND C.price > C.previous.price AND C.price < 52 \
             AND D.price > D.previous.price",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn example5_theta_matrix() {
        let q = example4_pattern();
        let m = PrecondMatrices::build(Predicates::new(&q.elements));
        // The paper's Example 5 θ:
        //   1
        //   1 1
        //   0 0 1
        //   0 0 U 1
        let expect = [
            (1, 1, True),
            (2, 1, True),
            (2, 2, True),
            (3, 1, False),
            (3, 2, False),
            (3, 3, True),
            (4, 1, False),
            (4, 2, False),
            (4, 3, Unknown),
            (4, 4, True),
        ];
        for (j, k, v) in expect {
            assert_eq!(m.theta.get(j, k), v, "θ[{j}][{k}]");
        }
    }

    #[test]
    fn example5_phi_matrix() {
        let q = example4_pattern();
        let m = PrecondMatrices::build(Predicates::new(&q.elements));
        // The paper's Example 5 φ:
        //   0
        //   U 0
        //   U U 0
        //   U U 0 0
        let expect = [
            (1, 1, False),
            (2, 1, Unknown),
            (2, 2, False),
            (3, 1, Unknown),
            (3, 2, Unknown),
            (3, 3, False),
            (4, 1, Unknown),
            (4, 2, Unknown),
            (4, 3, False),
            (4, 4, False),
        ];
        for (j, k, v) in expect {
            assert_eq!(m.phi.get(j, k), v, "φ[{j}][{k}]");
        }
    }

    /// Example 9's seven-element pattern (predicates only; stars live on
    /// elements 1, 3, 4 and 6).
    pub(crate) fn example9_query() -> sqlts_lang::CompiledQuery {
        compile(
            "SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
             FROM quote CLUSTER BY name SEQUENCE BY date \
             AS (*X, Y, *Z, *T, U, *V, S) \
             WHERE X.price > X.previous.price \
             AND 30 < Y.price AND Y.price < 40 \
             AND Z.price < Z.previous.price \
             AND T.price > T.previous.price \
             AND 35 < U.price AND U.price < 40 \
             AND V.price < V.previous.price \
             AND S.price < 30",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn example9_theta_matrix() {
        let q = example9_query();
        let m = PrecondMatrices::build(Predicates::new(&q.elements));
        // The paper's Example 9 θ (rows below the diagonal):
        let rows: [&[Truth]; 7] = [
            &[True],
            &[Unknown, True],
            &[False, Unknown, True],
            &[True, Unknown, False, True],
            &[Unknown, True, Unknown, Unknown, True],
            &[False, Unknown, True, False, Unknown, True],
            &[Unknown, False, Unknown, Unknown, False, Unknown, True],
        ];
        for (j, row) in rows.iter().enumerate() {
            for (k, v) in row.iter().enumerate() {
                assert_eq!(m.theta.get(j + 1, k + 1), *v, "θ[{}][{}]", j + 1, k + 1);
            }
        }
    }

    #[test]
    fn example9_phi_diagonal_and_key_entries() {
        // The paper's printed φ for Example 9 is garbled in our source
        // (an 8-row listing for a 7×7 matrix), so we pin the values our
        // sound definition produces for the entries that drive shift(6):
        // φ[6][3] = 0 (p3 ⇒ p6: both are "falling"), the rest of row 6
        // unknown except the diagonal.
        let q = example9_query();
        let m = PrecondMatrices::build(Predicates::new(&q.elements));
        assert_eq!(m.phi.get(6, 3), False);
        assert_eq!(m.phi.get(6, 1), Unknown);
        assert_eq!(m.phi.get(6, 2), Unknown);
        assert_eq!(m.phi.get(6, 4), Unknown);
        assert_eq!(m.phi.get(6, 5), Unknown);
        for j in 1..=7 {
            assert_eq!(m.phi.get(j, j), False, "φ[{j}][{j}]");
        }
    }

    #[test]
    fn nonlocal_elements_are_gated() {
        // (X, *Y, Z) with Z referencing X: Z's predicate is non-local, so
        // no θ[·][Z-column] may be 1 and no φ[Z-row][·] may be 1.
        let q = compile(
            "SELECT Z.date FROM quote SEQUENCE BY date AS (X, *Y, Z) \
             WHERE X.price > 0 AND Y.price < Y.previous.price \
             AND Z.price < Z.previous.price AND Z.price < 0.5 * FIRST(X).price",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(!q.elements[2].purely_local());
        let m = PrecondMatrices::build(Predicates::new(&q.elements));
        // θ[3][3] must not be 1 even though p3 ⇒ p3 syntactically, because
        // a 1 would let the runtime skip the non-local half.
        assert_eq!(m.theta.get(3, 3), Unknown);
        // But θ[3][2] = 1 is fine: local(p3) ⇒ p2 and p2 is purely local.
        assert_eq!(m.theta.get(3, 2), True);
        assert_eq!(m.phi.get(3, 2), Unknown);
    }

    #[test]
    fn negate_formula_basics() {
        use sqlts_constraints::{Atom, CmpOp, Var};
        let band = Formula::conj(System::from_atoms([
            Atom::var_const(Var(0), CmpOp::Gt, 40),
            Atom::var_const(Var(0), CmpOp::Lt, 50),
        ]));
        let neg = negate_formula(&band, 64).unwrap();
        assert_eq!(neg.disjuncts().len(), 2); // ≤40 ∨ ≥50
                                              // ¬¬band ≡ band (semantically): ¬band contradicts band.
        assert!(neg.contradicts(&band));
        // ¬TRUE = FALSE.
        let t = Formula::conj(System::new());
        assert_eq!(negate_formula(&t, 64).unwrap().disjuncts().len(), 0);
        // ¬FALSE = TRUE.
        let f = Formula::none();
        let nf = negate_formula(&f, 64).unwrap();
        assert_eq!(nf.satisfiability(), True);
    }

    #[test]
    fn constant_equality_detection() {
        let q = compile(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
             WHERE X.price = 10 AND Y.price = 11 AND Z.price = 15",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        for (i, expect) in [(0, 10i64), (1, 11), (2, 15)] {
            let (_, c) = is_constant_equality(&q.elements[i]).expect("constant equality");
            assert_eq!(c, sqlts_rational::Rational::from(expect));
        }
        let q2 = example4_pattern();
        assert!(is_constant_equality(&q2.elements[0]).is_none());
    }

    #[test]
    fn theta_phi_all_unknown_for_opaque_predicates() {
        // Predicates the solver cannot analyze (price * prev compared to
        // a constant is non-affine) must come out U everywhere except the
        // syntactic diagonal.
        let q = compile(
            "SELECT A.date FROM quote SEQUENCE BY date AS (A, B) \
             WHERE A.price * A.previous.price > 100 \
             AND B.price * B.previous.price <= 100",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let m = PrecondMatrices::build(Predicates::new(&q.elements));
        assert_eq!(m.theta.get(1, 1), True); // syntactic self-implication
        assert_eq!(m.theta.get(2, 1), False); // syntactic contradiction (exact negation)
        assert_eq!(m.phi.get(2, 1), True); // ¬p2 is syntactically p1
    }
}
