//! Shared pattern-set execution: run N standing queries in one pass.
//!
//! A market-feed server with thousands of standing double-bottom-style
//! alerts pays N independent engine passes over the same feed.  This
//! module compiles a *set* of queries into one [`SharedMatcher`]: element
//! predicates are interned into **classes** (two elements share a class
//! exactly when their conjunct expressions are identical), common class
//! prefixes are factored into a trie (the Aho–Corasick move applied to
//! OPS), the θ/φ implication machinery is extended *cross-query* into an
//! implication lattice over classes, and each tuple is dispatched once:
//! the first query to test a cached class at a position stores the
//! outcome, every other query's test is answered from the shared memo.
//!
//! # The bit-identity guarantee
//!
//! Per-query matches, stats and armed profiles are bit-identical to solo
//! runs **by construction**, not by after-the-fact reconciliation: every
//! query still runs its own unchanged search (same engine, same
//! shift/next tables, same governor accounting — `bump()` fires before
//! the memo is consulted), and the memo only short-circuits the conjunct
//! evaluation inside `test_element` when it can prove the cached value
//! equals what evaluation would produce:
//!
//! * **Exact-class hits.**  A class key is the sorted list of the
//!   element's conjunct expressions rendered in the compiler's canonical,
//!   variable-name-free form (`cur-1.col2 < 1/2`).  Rendering is
//!   injective on the compiled IR, purely-local conjuncts never read
//!   bindings, and positions are absolute in both batch and windowed
//!   streaming clusters — so a class value at a position is a pure
//!   function of `(class, cluster, pos, policy)` and any member may reuse
//!   it.
//! * **Subset edges.**  If query B's element conjuncts are a sub-multiset
//!   of query A's, then A-true at a position forces B-true and B-false
//!   forces A-false, *per conjunct*, under every null/vacuous-boundary
//!   regime — these edges are unconditionally sound.
//! * **Contradiction edges.**  For classes whose conjuncts are pure
//!   AND/comparison trees ("strict": evaluating true witnesses a model of
//!   the solver formula), a solver-proved `f_c ∧ f_d ≡ ⊥` turns an
//!   observed c-true into a derived d-false.  The witnessing argument
//!   needs every field reference in range, so these derived entries are
//!   gated to **interior** positions (`pos ≥ back ∧ pos + fwd < avail`);
//!   boundary positions, where `VacuousTrue` can make an implication hold
//!   formula-wise but not evaluation-wise, are never derived.
//!
//! Rules that would need the *exactness* direction of the formula
//! translation (¬eval ⇒ ¬formula) — e.g. propagating a false through
//! `f_d ⇒ f_c` — are deliberately omitted: nulls and vacuous boundaries
//! break that direction, and `U` stays sound where implication is
//! unknown, exactly as in the single-query matrices.

use crate::engine::{plan, EngineKind, SearchOptions, SearchPlan};
use crate::executor::{
    cluster_key, output_schema, run_cluster_guarded, ClusterRun, ExecError, ExecOptions,
    QueryResult, SearchStats,
};
use crate::governor::RunGovernor;
use crate::reverse::{direction_hint, Direction};
use crate::DirectionChoice;
use sqlts_lang::{Anchor, BoolExpr, CompiledQuery, FirstTuplePolicy, PatternElement, ScalarExpr};
use sqlts_relation::{Cluster, Table, Value};
use sqlts_trace::{ClusterProfile, ExecutionProfile, PatternSetStats};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Sentinel class id for elements that cannot participate in sharing.
pub(crate) const UNCLASSED: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Class interning
// ---------------------------------------------------------------------------

/// One interned predicate class: the canonical key plus the facts the
/// edge builder needs.
#[derive(Debug)]
struct ClassInfo {
    /// Sorted canonical renderings of the element's conjunct expressions.
    key: Vec<String>,
    /// Representative solver formula (identical construction for every
    /// member of the class — same conjuncts, same translation).
    formula: sqlts_constraints::Formula,
    /// Maximum backward field offset over the conjuncts.
    back: u32,
    /// Maximum forward field offset over the conjuncts.
    fwd: u32,
    /// Every conjunct is an AND/comparison tree: evaluating true
    /// witnesses a model of `formula`.
    strict: bool,
    /// How many (query, element) slots across the set carry this class.
    occurrences: u32,
}

/// One directed derivation rule of the cross-query implication lattice:
/// when the source class is observed with value `on`, the target class is
/// `val` — at interior positions only when `interior` is set.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Edge {
    on: bool,
    target: u32,
    val: bool,
    interior: bool,
    back: u32,
    fwd: u32,
}

/// Walk a scalar expression collecting `Anchor::Cur` offsets; a non-`Cur`
/// anchor disqualifies the element from classing (defensive — `local`
/// conjuncts should never carry one).
fn scalar_offsets(e: &ScalarExpr, lo: &mut i32, hi: &mut i32, cur_only: &mut bool) {
    match e {
        ScalarExpr::Field(fr) => match fr.anchor {
            Anchor::Cur => {
                *lo = (*lo).min(fr.offset);
                *hi = (*hi).max(fr.offset);
            }
            Anchor::Element { .. } => *cur_only = false,
        },
        ScalarExpr::Arith { lhs, rhs, .. } => {
            scalar_offsets(lhs, lo, hi, cur_only);
            scalar_offsets(rhs, lo, hi, cur_only);
        }
        ScalarExpr::Neg(inner) => scalar_offsets(inner, lo, hi, cur_only),
        ScalarExpr::Num { .. } | ScalarExpr::Str(_) | ScalarExpr::Date(_) => {}
    }
}

fn bool_offsets(e: &BoolExpr, lo: &mut i32, hi: &mut i32, cur_only: &mut bool) {
    match e {
        BoolExpr::Cmp { lhs, rhs, .. } => {
            scalar_offsets(lhs, lo, hi, cur_only);
            scalar_offsets(rhs, lo, hi, cur_only);
        }
        BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
            bool_offsets(a, lo, hi, cur_only);
            bool_offsets(b, lo, hi, cur_only);
        }
        BoolExpr::Not(inner) => bool_offsets(inner, lo, hi, cur_only),
        BoolExpr::Const(_) => {}
    }
}

/// AND/comparison trees only: true-evaluation then witnesses a model.
fn strict_expr(e: &BoolExpr) -> bool {
    match e {
        BoolExpr::Cmp { .. } => true,
        BoolExpr::And(a, b) => strict_expr(a) && strict_expr(b),
        BoolExpr::Or(..) | BoolExpr::Not(_) | BoolExpr::Const(_) => false,
    }
}

/// The canonical class signature of an element, if it is classable.
fn class_signature(elem: &PatternElement) -> Option<(Vec<String>, u32, u32, bool)> {
    if !elem.purely_local() {
        return None;
    }
    let (mut lo, mut hi, mut cur_only) = (0i32, 0i32, true);
    for c in &elem.conjuncts {
        bool_offsets(&c.expr, &mut lo, &mut hi, &mut cur_only);
    }
    if !cur_only {
        return None;
    }
    let mut key: Vec<String> = elem.conjuncts.iter().map(|c| c.expr.to_string()).collect();
    key.sort_unstable();
    let strict = elem.conjuncts.iter().all(|c| strict_expr(&c.expr));
    Some((key, (-lo).max(0) as u32, hi.max(0) as u32, strict))
}

/// `small ⊆ big` as sorted multisets.
fn sorted_subset(small: &[String], big: &[String]) -> bool {
    let mut it = big.iter();
    'outer: for s in small {
        for b in it.by_ref() {
            match b.cmp(s) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// The growable class table of one shared group.
#[derive(Debug, Default)]
struct Interner {
    classes: Vec<ClassInfo>,
    /// Running label for unclassable elements (unique per group, so the
    /// trie never merges them).
    next_opaque: u32,
}

impl Interner {
    /// Intern one query's elements, appending new classes and their
    /// lattice edges.  Returns the raw per-element class ids (`UNCLASSED`
    /// for unclassable elements) and the trie labels.
    fn intern_query(
        &mut self,
        query: &CompiledQuery,
        edges: &mut Vec<Vec<Edge>>,
    ) -> (Vec<u32>, Vec<(u32, bool)>) {
        let mut ids = Vec::with_capacity(query.elements.len());
        let mut labels = Vec::with_capacity(query.elements.len());
        for elem in &query.elements {
            let id = match class_signature(elem) {
                None => {
                    // Unique opaque trie label, counting down from just
                    // below the sentinel so it can never collide with a
                    // real class id.
                    self.next_opaque += 1;
                    labels.push((UNCLASSED - self.next_opaque, elem.star));
                    ids.push(UNCLASSED);
                    continue;
                }
                Some(sig) => self.intern_class(sig, &elem.formula, edges),
            };
            labels.push((id, elem.star));
            ids.push(id);
        }
        (ids, labels)
    }

    fn intern_class(
        &mut self,
        (key, back, fwd, strict): (Vec<String>, u32, u32, bool),
        formula: &sqlts_constraints::Formula,
        edges: &mut Vec<Vec<Edge>>,
    ) -> u32 {
        if let Some(id) = self.classes.iter().position(|c| c.key == key) {
            self.classes[id].occurrences += 1;
            return id as u32;
        }
        let id = self.classes.len() as u32;
        self.classes.push(ClassInfo {
            key,
            formula: formula.clone(),
            back,
            fwd,
            strict,
            occurrences: 1,
        });
        edges.push(Vec::new());
        self.link_edges(id as usize, edges);
        id
    }

    /// Build the lattice edges between a freshly interned class and every
    /// existing one.  Only rules that are sound under nulls and vacuous
    /// boundaries are emitted (see the module docs).
    fn link_edges(&self, c: usize, edges: &mut [Vec<Edge>]) {
        for d in 0..c {
            let (ci, di) = (&self.classes[c], &self.classes[d]);
            let back = ci.back.max(di.back);
            let fwd = ci.fwd.max(di.fwd);
            // Subset rules: exact per-conjunct reasoning, no gating.
            if sorted_subset(&di.key, &ci.key) {
                edges[c].push(Edge {
                    on: true,
                    target: d as u32,
                    val: true,
                    interior: false,
                    back: 0,
                    fwd: 0,
                });
                edges[d].push(Edge {
                    on: false,
                    target: c as u32,
                    val: false,
                    interior: false,
                    back: 0,
                    fwd: 0,
                });
            } else if sorted_subset(&ci.key, &di.key) {
                edges[d].push(Edge {
                    on: true,
                    target: c as u32,
                    val: true,
                    interior: false,
                    back: 0,
                    fwd: 0,
                });
                edges[c].push(Edge {
                    on: false,
                    target: d as u32,
                    val: false,
                    interior: false,
                    back: 0,
                    fwd: 0,
                });
            } else if ci.strict && di.strict && ci.formula.contradicts(&di.formula) {
                // Solver-proved mutual exclusion; interior-gated because
                // the witnessing argument needs every reference in range.
                edges[c].push(Edge {
                    on: true,
                    target: d as u32,
                    val: false,
                    interior: true,
                    back,
                    fwd,
                });
                edges[d].push(Edge {
                    on: true,
                    target: c as u32,
                    val: false,
                    interior: true,
                    back,
                    fwd,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Prefix trie (compile-time statistics)
// ---------------------------------------------------------------------------

/// Build the class-sequence prefix trie over the member label sequences;
/// returns `(node_count, shared_prefix_depth per member)` where the depth
/// counts leading elements whose trie node carries ≥ 2 members.
fn trie_stats(sequences: &[Vec<(u32, bool)>]) -> (usize, Vec<u64>) {
    struct Node {
        children: BTreeMap<(u32, bool), usize>,
        occupancy: u32,
    }
    let mut nodes = vec![Node {
        children: BTreeMap::new(),
        occupancy: 0,
    }];
    for seq in sequences {
        let mut at = 0usize;
        for &label in seq {
            let next = match nodes[at].children.get(&label) {
                Some(&n) => n,
                None => {
                    let n = nodes.len();
                    nodes.push(Node {
                        children: BTreeMap::new(),
                        occupancy: 0,
                    });
                    nodes[at].children.insert(label, n);
                    n
                }
            };
            nodes[next].occupancy += 1;
            at = next;
        }
    }
    let depths = sequences
        .iter()
        .map(|seq| {
            let mut at = 0usize;
            let mut depth = 0u64;
            for &label in seq {
                let Some(&next) = nodes[at].children.get(&label) else {
                    break;
                };
                if nodes[next].occupancy < 2 {
                    break;
                }
                depth += 1;
                at = next;
            }
            depth
        })
        .collect();
    (nodes.len() - 1, depths)
}

// ---------------------------------------------------------------------------
// Runtime: the shared memo
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Entry {
    val: bool,
    owner: u16,
    derived: bool,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: BTreeMap<(u64, u32), Entry>,
    saved: u64,
    shared: u64,
    stored: u64,
}

/// The per-cluster shared memo: `(position, class) → value`, plus the
/// deterministic savings counters.  `Mutex`-based so batch worker threads
/// and concurrent server subscription workers can share one cache; the
/// value at a key is a pure function of the key, so racing writers always
/// agree.
#[derive(Debug, Default)]
pub struct ClusterCache {
    inner: Mutex<CacheInner>,
}

impl ClusterCache {
    fn probe(&self, pos: u64, class: u32, query: u16) -> Option<bool> {
        let mut inner = self.inner.lock().expect("patternset cache lock");
        let entry = *inner.map.get(&(pos, class))?;
        inner.saved += 1;
        if entry.owner != query || entry.derived {
            inner.shared += 1;
        }
        Some(entry.val)
    }

    fn store(&self, edges: &[Vec<Edge>], pos: u64, class: u32, avail: u64, val: bool, query: u16) {
        let mut inner = self.inner.lock().expect("patternset cache lock");
        if let std::collections::btree_map::Entry::Vacant(slot) = inner.map.entry((pos, class)) {
            slot.insert(Entry {
                val,
                owner: query,
                derived: false,
            });
            inner.stored += 1;
        }
        for edge in &edges[class as usize] {
            if edge.on != val {
                continue;
            }
            if edge.interior && (pos < edge.back as u64 || pos + edge.fwd as u64 + 1 > avail) {
                continue;
            }
            inner.map.entry((pos, edge.target)).or_insert(Entry {
                val: edge.val,
                owner: query,
                derived: true,
            });
        }
    }

    /// Drop every entry below `floor` (streaming window compaction); the
    /// savings counters are untouched.
    pub(crate) fn prune_below(&self, floor: u64) {
        let mut inner = self.inner.lock().expect("patternset cache lock");
        inner.map = inner.map.split_off(&(floor, 0));
    }

    /// `(saved, shared, stored)` counter snapshot.
    fn counters(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock().expect("patternset cache lock");
        (inner.saved, inner.shared, inner.stored)
    }

    #[cfg(test)]
    fn entries(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }
}

type Edges = Arc<RwLock<Vec<Vec<Edge>>>>;

/// One query's view into a shared group for a single cluster: installed
/// into that cluster's [`EvalCounter`], consulted by `test_element`
/// between `bump()` and conjunct evaluation.
pub struct SharedEvalHandle {
    cache: Arc<ClusterCache>,
    edges: Edges,
    classes: Arc<[u32]>,
    query: u16,
}

impl fmt::Debug for SharedEvalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedEvalHandle")
            .field("query", &self.query)
            .finish_non_exhaustive()
    }
}

impl SharedEvalHandle {
    #[inline]
    pub(crate) fn probe(&self, elem0: usize, pos: usize) -> Option<bool> {
        let class = *self.classes.get(elem0)?;
        if class == UNCLASSED {
            return None;
        }
        self.cache.probe(pos as u64, class, self.query)
    }

    pub(crate) fn store(&self, elem0: usize, pos: usize, avail: usize, val: bool) {
        let Some(&class) = self.classes.get(elem0) else {
            return;
        };
        if class == UNCLASSED {
            return;
        }
        let edges = self.edges.read().expect("patternset edges lock");
        self.cache
            .store(&edges, pos as u64, class, avail as u64, val, self.query);
    }
}

// ---------------------------------------------------------------------------
// Batch: SharedMatcher + execute_set
// ---------------------------------------------------------------------------

struct MatcherGroup {
    /// Indices into the caller's query slice, in input order.
    members: Vec<usize>,
    edges: Edges,
    /// Per member: element → class id (`UNCLASSED` where uncacheable).
    member_classes: Vec<Arc<[u32]>>,
}

/// The compiled form of a pattern set: shareable groups plus the queries
/// that fall back to solo execution.
pub struct SharedMatcher {
    groups: Vec<MatcherGroup>,
    solo: Vec<usize>,
    base: PatternSetStats,
}

impl SharedMatcher {
    /// Compile a set of queries into shared groups.  Queries group when
    /// they agree on `(CLUSTER BY, SEQUENCE BY)` and resolve to a forward
    /// scan under `options.direction`; everything else (including
    /// singleton groups) runs solo, falling back per query rather than
    /// failing the set.
    pub fn compile(queries: &[CompiledQuery], options: &ExecOptions) -> SharedMatcher {
        // (CLUSTER BY, SEQUENCE BY) column lists → member query indices.
        type GroupKey<'a> = (&'a [String], &'a [String]);
        let mut buckets: Vec<(GroupKey, Vec<usize>)> = Vec::new();
        let mut solo = Vec::new();
        for (qi, query) in queries.iter().enumerate() {
            let direction = match options.direction {
                DirectionChoice::Forward => Direction::Forward,
                DirectionChoice::Reverse => Direction::Reverse,
                DirectionChoice::Auto => direction_hint(query),
            };
            if direction != Direction::Forward {
                solo.push(qi);
                continue;
            }
            let key = (&query.cluster_by[..], &query.sequence_by[..]);
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(qi),
                None => buckets.push((key, vec![qi])),
            }
        }

        let mut base = PatternSetStats {
            queries: queries.len(),
            ..PatternSetStats::default()
        };
        let mut groups = Vec::new();
        for (_, members) in buckets {
            if members.len() < 2 {
                solo.extend(members);
                continue;
            }
            let mut interner = Interner::default();
            let mut edges: Vec<Vec<Edge>> = Vec::new();
            let mut raw: Vec<Vec<u32>> = Vec::new();
            let mut labels: Vec<Vec<(u32, bool)>> = Vec::new();
            for &qi in &members {
                let (ids, lab) = interner.intern_query(&queries[qi], &mut edges);
                raw.push(ids);
                labels.push(lab);
            }
            // Cacheability: a class earns a memo slot when it occurs in
            // ≥ 2 element slots or participates in the lattice; everything
            // else would only fill the cache without ever being reused.
            let edge_target: Vec<bool> = {
                let mut t = vec![false; interner.classes.len()];
                for list in &edges {
                    for e in list {
                        t[e.target as usize] = true;
                    }
                }
                t
            };
            let cacheable: Vec<bool> = interner
                .classes
                .iter()
                .enumerate()
                .map(|(c, info)| info.occurrences >= 2 || !edges[c].is_empty() || edge_target[c])
                .collect();
            let member_classes: Vec<Arc<[u32]>> = raw
                .iter()
                .map(|ids| {
                    ids.iter()
                        .map(|&id| {
                            if id != UNCLASSED && cacheable[id as usize] {
                                id
                            } else {
                                UNCLASSED
                            }
                        })
                        .collect::<Vec<u32>>()
                        .into()
                })
                .collect();
            let (nodes, depths) = trie_stats(&labels);
            base.classes += interner.classes.len();
            base.trie_nodes += nodes;
            base.implication_edges += edges.iter().map(Vec::len).sum::<usize>();
            for d in depths {
                base.shared_prefix_depth.record(d);
            }
            groups.push(MatcherGroup {
                members,
                edges: Arc::new(RwLock::new(edges)),
                member_classes,
            });
        }
        base.groups = groups.len();
        base.solo = solo.len();
        for _ in &solo {
            base.shared_prefix_depth.record(0);
        }
        solo.sort_unstable();
        SharedMatcher { groups, solo, base }
    }

    /// Compile-time slice of the set statistics (runtime counters zero).
    pub fn base_stats(&self) -> PatternSetStats {
        self.base.clone()
    }
}

/// The outcome of [`execute_set`]: one result per input query (same
/// order), plus the set-level sharing statistics.
#[derive(Debug)]
pub struct SetResult {
    /// Per-query results, index-aligned with the input slice.  Each entry
    /// is exactly what a solo [`crate::execute`] would have returned —
    /// including `ExecError::Governed` partials.
    pub results: Vec<Result<QueryResult, ExecError>>,
    /// Shared-set counters (compile stats + deterministic savings).
    pub stats: PatternSetStats,
}

/// Execute a set of compiled queries against one table with a shared
/// matcher.  Every query's rows, stats, governor accounting and armed
/// profile are bit-identical to its solo [`crate::execute`] run at every
/// thread count; the set-level savings land in [`SetResult::stats`].
pub fn execute_set(queries: &[CompiledQuery], table: &Table, options: &ExecOptions) -> SetResult {
    let matcher = SharedMatcher::compile(queries, options);
    let mut stats = matcher.base_stats();
    let mut slots: Vec<Option<Result<QueryResult, ExecError>>> =
        queries.iter().map(|_| None).collect();
    for &qi in &matcher.solo {
        slots[qi] = Some(crate::execute(&queries[qi], table, options));
    }
    for group in &matcher.groups {
        run_group(group, queries, table, options, &mut slots, &mut stats);
    }
    let results: Vec<Result<QueryResult, ExecError>> = slots
        .into_iter()
        .map(|slot| slot.expect("every query slot filled"))
        .collect();
    for result in &results {
        stats.tests_logical += match result {
            Ok(r) => r.stats.predicate_tests,
            Err(ExecError::Governed { partial, .. }) => partial.stats.predicate_tests,
            Err(_) => 0,
        };
    }
    stats.tests_evaluated = stats.tests_logical - stats.tests_saved;
    SetResult { results, stats }
}

/// One live member of a group run: the per-query pieces `execute` would
/// have set up for itself.
struct Member<'q> {
    qi: usize,
    pos: usize,
    query: &'q CompiledQuery,
    out: Table,
    search_plan: Option<SearchPlan>,
    plan_ns: u64,
    run: Option<Arc<RunGovernor>>,
}

/// What one cluster's shared pass produced: each member's run plus the
/// cluster cache's savings counters.
struct GroupClusterRun {
    runs: Vec<ClusterRun>,
    saved: u64,
    shared: u64,
    stored: u64,
}

fn run_group(
    group: &MatcherGroup,
    queries: &[CompiledQuery],
    table: &Table,
    options: &ExecOptions,
    slots: &mut [Option<Result<QueryResult, ExecError>>],
    stats: &mut PatternSetStats,
) {
    let q0 = &queries[group.members[0]];
    let cluster_cols: Vec<&str> = q0.cluster_by.iter().map(String::as_str).collect();
    let sequence_cols: Vec<&str> = q0.sequence_by.iter().map(String::as_str).collect();
    let clusters = match table.cluster_by(&cluster_cols, &sequence_cols) {
        Ok(clusters) => clusters,
        Err(_) => {
            // Cold path: re-derive the identical per-query error so each
            // slot carries its own owned value.
            for &qi in &group.members {
                let err = table
                    .cluster_by(&cluster_cols, &sequence_cols)
                    .expect_err("clustering failed a moment ago");
                slots[qi] = Some(Err(ExecError::Table(err)));
            }
            return;
        }
    };

    let profiling = options.instrument.armed();
    let search_options = SearchOptions {
        policy: options.policy,
    };
    let mut members: Vec<Member<'_>> = Vec::with_capacity(group.members.len());
    for (pos, &qi) in group.members.iter().enumerate() {
        let query = &queries[qi];
        let out = match output_schema(query) {
            Ok(schema) => Table::new(schema),
            Err(e) => {
                slots[qi] = Some(Err(ExecError::Table(e)));
                continue;
            }
        };
        let t_plan = profiling.then(Instant::now);
        let search_plan = match options.engine {
            EngineKind::Naive | EngineKind::NaiveBacktrack => None,
            kind => Some(plan(&query.elements, kind)),
        };
        let plan_ns = t_plan.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let run = (!options.governor.is_unlimited()).then(|| options.governor.begin());
        members.push(Member {
            qi,
            pos,
            query,
            out,
            search_plan,
            plan_ns,
            run,
        });
    }
    if members.is_empty() {
        return;
    }

    let t_exec = profiling.then(Instant::now);
    let run_one = |idx: usize, cluster: &Cluster<'_>| -> GroupClusterRun {
        let cache = Arc::new(ClusterCache::default());
        let runs = members
            .iter()
            .map(|m| {
                let handle = SharedEvalHandle {
                    cache: Arc::clone(&cache),
                    edges: Arc::clone(&group.edges),
                    classes: Arc::clone(&group.member_classes[m.pos]),
                    query: m.pos as u16,
                };
                run_cluster_guarded(
                    m.query,
                    cluster,
                    idx,
                    m.search_plan.as_ref(),
                    options.engine,
                    Direction::Forward,
                    &search_options,
                    m.run.as_ref(),
                    options.instrument,
                    Some(handle),
                )
            })
            .collect();
        let (saved, shared, stored) = cache.counters();
        GroupClusterRun {
            runs,
            saved,
            shared,
            stored,
        }
    };
    let worker_count = options.threads.get().min(clusters.len());
    let outcomes: Vec<GroupClusterRun> = if worker_count <= 1 {
        clusters
            .iter()
            .enumerate()
            .map(|(idx, cluster)| run_one(idx, cluster))
            .collect()
    } else {
        // Same shape as the executor's worker pool: an atomic cursor over
        // clusters, outcomes deposited into per-cluster slots so the
        // result is in cluster order for any thread count.  The unit of
        // work is one cluster × all members, so a cluster's cache is
        // filled and read entirely within one worker.
        let cursor = AtomicUsize::new(0);
        let cluster_slots: Vec<Mutex<Option<GroupClusterRun>>> =
            clusters.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                    let Some(cluster) = clusters.get(idx) else {
                        break;
                    };
                    *cluster_slots[idx].lock().expect("slot lock") = Some(run_one(idx, cluster));
                });
            }
        });
        cluster_slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("worker pool processed every cluster")
            })
            .collect()
    };

    // Transpose to per-member cluster runs, merging the cache counters in
    // cluster order (deterministic for every thread count).
    let mut per_member: Vec<Vec<ClusterRun>> = members
        .iter()
        .map(|_| Vec::with_capacity(clusters.len()))
        .collect();
    for outcome in outcomes {
        for (mpos, run) in outcome.runs.into_iter().enumerate() {
            per_member[mpos].push(run);
        }
        stats.tests_saved += outcome.saved;
        stats.tests_shared += outcome.shared;
        let _ = outcome.stored;
    }
    let exec_ns = t_exec.map_or(0, |t| t.elapsed().as_nanos() as u64);

    // Per-member merge: an exact mirror of `execute`'s tail.
    for (member, runs) in members.into_iter().zip(per_member) {
        let merged = merge_member(member, runs, &clusters, options, exec_ns);
        let (qi, result) = merged;
        slots[qi] = Some(result);
    }
}

fn merge_member(
    mut member: Member<'_>,
    runs: Vec<ClusterRun>,
    clusters: &[Cluster<'_>],
    options: &ExecOptions,
    exec_ns: u64,
) -> (usize, Result<QueryResult, ExecError>) {
    let profiling = options.instrument.armed();
    let mut stats = SearchStats::default();
    let mut partial = Vec::new();
    let mut profile = profiling.then(|| {
        Box::new(ExecutionProfile::new(
            options.engine.name(),
            options.threads.get(),
        ))
    });
    for (idx, run) in runs.into_iter().enumerate() {
        match run {
            ClusterRun::Done(outcome) => {
                stats.clusters += 1;
                stats.tuples += outcome.tuples;
                stats.predicate_tests += outcome.predicate_tests;
                stats.steps += outcome.predicate_tests;
                if let (Some(profile), Some(recorder)) = (profile.as_deref_mut(), outcome.recorder)
                {
                    let recorder = *recorder;
                    let events_dropped = recorder.events.dropped();
                    profile.push_cluster(ClusterProfile {
                        index: idx,
                        key: cluster_key(&clusters[idx]),
                        tuples: outcome.tuples,
                        metrics: recorder.metrics,
                        events: recorder.events.into_events(),
                        events_dropped,
                    });
                }
                for row in outcome.rows {
                    stats.matches += 1;
                    if let Err(e) = member.out.push_row(row) {
                        return (member.qi, Err(ExecError::Table(e)));
                    }
                }
            }
            ClusterRun::Skipped => {}
            ClusterRun::Failed { cause } => {
                partial.push(crate::executor::ClusterFailure {
                    cluster: idx,
                    key: cluster_key(&clusters[idx]),
                    cause,
                });
            }
        }
    }
    if let Some(profile) = profile.as_deref_mut() {
        profile.phases.plan = member.plan_ns;
        profile.phases.execute = exec_ns;
        profile.optimizer = Some(crate::explain::optimizer_report(member.query));
    }
    let result = QueryResult {
        table: member.out,
        stats,
        partial,
        profile,
    };
    if let Some(run) = member.run {
        if let Some(trip) = run.trip() {
            return (
                member.qi,
                Err(ExecError::Governed {
                    trip,
                    partial: Box::new(result),
                }),
            );
        }
    }
    (member.qi, Ok(result))
}

// ---------------------------------------------------------------------------
// Streaming / server: the standing-query registry
// ---------------------------------------------------------------------------

/// One shared group of standing queries on a feed.
struct RegistryGroup {
    origin: u64,
    cluster_by: Vec<String>,
    sequence_by: Vec<String>,
    policy: FirstTuplePolicy,
    interner: Interner,
    edges: Edges,
    caches: Arc<Mutex<BTreeMap<Vec<Value>, Arc<ClusterCache>>>>,
    labels: Vec<Vec<(u32, bool)>>,
    members: u16,
}

/// A registry of standing queries sharing one feed (one per server
/// channel).  Subscriptions [`join`](SetRegistry::join) as they are
/// created; joining interns the query's classes into the matching group
/// (grouping is keyed by stream **origin** — the feed position the
/// subscription's cluster positions are counted from — plus
/// `CLUSTER BY`/`SEQUENCE BY` and policy, so late joiners and resumed
/// subscriptions only ever share with members whose absolute positions
/// line up).
#[derive(Default)]
pub struct SetRegistry {
    groups: Mutex<Vec<RegistryGroup>>,
}

impl fmt::Debug for SetRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let groups = self.groups.lock().expect("patternset registry lock");
        f.debug_struct("SetRegistry")
            .field("groups", &groups.len())
            .finish()
    }
}

impl SetRegistry {
    /// An empty registry.
    pub fn new() -> SetRegistry {
        SetRegistry::default()
    }

    /// Join a standing query to the registry, creating its group on first
    /// contact.  Returns `None` when the pattern has no shareable
    /// (purely-local) element — the caller then runs exactly as before.
    /// Unlike the batch compiler, every classed element is cacheable:
    /// future joiners are unknown, so the memo is filled optimistically.
    pub fn join(
        &self,
        origin: u64,
        query: &CompiledQuery,
        policy: FirstTuplePolicy,
    ) -> Option<SharedJoin> {
        if !query.elements.iter().any(|e| class_signature(e).is_some()) {
            return None;
        }
        let mut groups = self.groups.lock().expect("patternset registry lock");
        let group = match groups.iter_mut().find(|g| {
            g.origin == origin
                && g.cluster_by == query.cluster_by
                && g.sequence_by == query.sequence_by
                && g.policy == policy
        }) {
            Some(group) => group,
            None => {
                groups.push(RegistryGroup {
                    origin,
                    cluster_by: query.cluster_by.clone(),
                    sequence_by: query.sequence_by.clone(),
                    policy,
                    interner: Interner::default(),
                    edges: Arc::new(RwLock::new(Vec::new())),
                    caches: Arc::new(Mutex::new(BTreeMap::new())),
                    labels: Vec::new(),
                    members: 0,
                });
                groups.last_mut().expect("just pushed")
            }
        };
        let mut edges = group.edges.write().expect("patternset edges lock");
        let (ids, labels) = group.interner.intern_query(query, &mut edges);
        drop(edges);
        group.labels.push(labels);
        let query_id = group.members;
        group.members += 1;
        Some(SharedJoin {
            edges: Arc::clone(&group.edges),
            caches: Arc::clone(&group.caches),
            classes: ids.into(),
            query: query_id,
        })
    }

    /// Registry-wide statistics: compile-time structure plus the runtime
    /// savings counters summed over every group's cluster caches.
    /// `tests_logical`/`tests_evaluated` are left for the caller, which
    /// knows the members' logical test totals.
    pub fn stats(&self) -> PatternSetStats {
        let groups = self.groups.lock().expect("patternset registry lock");
        let mut stats = PatternSetStats::default();
        for group in groups.iter() {
            stats.queries += group.members as usize;
            if group.members >= 2 {
                stats.groups += 1;
            } else {
                stats.solo += group.members as usize;
            }
            stats.classes += group.interner.classes.len();
            let edges = group.edges.read().expect("patternset edges lock");
            stats.implication_edges += edges.iter().map(Vec::len).sum::<usize>();
            let (nodes, depths) = trie_stats(&group.labels);
            stats.trie_nodes += nodes;
            for d in depths {
                stats.shared_prefix_depth.record(d);
            }
            let caches = group.caches.lock().expect("patternset cache registry lock");
            for cache in caches.values() {
                let (saved, shared, _) = cache.counters();
                stats.tests_saved += saved;
                stats.tests_shared += shared;
            }
        }
        stats
    }
}

/// A standing query's membership in a [`SetRegistry`] group, carried by
/// its streaming session: hands out per-cluster
/// [`SharedEvalHandle`]s keyed by the cluster's key values.
#[derive(Clone)]
pub struct SharedJoin {
    edges: Edges,
    caches: Arc<Mutex<BTreeMap<Vec<Value>, Arc<ClusterCache>>>>,
    classes: Arc<[u32]>,
    query: u16,
}

impl fmt::Debug for SharedJoin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedJoin")
            .field("query", &self.query)
            .finish_non_exhaustive()
    }
}

impl SharedJoin {
    /// The eval handle for one cluster, creating its cache on first use.
    pub(crate) fn handle_for(&self, key: &[Value]) -> SharedEvalHandle {
        let mut caches = self.caches.lock().expect("patternset cache registry lock");
        let cache = caches
            .entry(key.to_vec())
            .or_insert_with(|| Arc::new(ClusterCache::default()));
        SharedEvalHandle {
            cache: Arc::clone(cache),
            edges: Arc::clone(&self.edges),
            classes: Arc::clone(&self.classes),
            query: self.query,
        }
    }

    /// Drop memo entries below `floor` for one cluster (called alongside
    /// the session's window compaction; soft state, safe to over-prune).
    pub(crate) fn prune_below(&self, key: &[Value], floor: u64) {
        let caches = self.caches.lock().expect("patternset cache registry lock");
        if let Some(cache) = caches.get(key) {
            cache.prune_below(floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute;
    use sqlts_lang::{compile, CompileOptions};
    use sqlts_relation::{ColumnType, Schema};
    use std::num::NonZeroUsize;

    fn schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("day", ColumnType::Int),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    fn table(rows: usize) -> Table {
        let mut csv = String::from("name,day,price\n");
        for name in ["AAA", "BBB", "CCC"] {
            for day in 0..rows {
                let price = 100 + ((day * 7 + name.len()) % 13) as i64 - 6;
                csv.push_str(&format!("{name},{day},{price}\n"));
            }
        }
        Table::from_csv_str(schema(), &csv).unwrap()
    }

    fn q(src: &str) -> CompiledQuery {
        compile(src, &schema(), &CompileOptions::default()).unwrap()
    }

    fn prefix_family(n: usize) -> Vec<CompiledQuery> {
        // Shared (X, Y) prefix; per-query tail thresholds.
        (0..n)
            .map(|i| {
                q(&format!(
                    "SELECT X.name, Z.day AS day FROM t \
                     CLUSTER BY name SEQUENCE BY day AS (X, Y, Z) \
                     WHERE X.price > 95 AND Y.price > X.previous.price \
                     AND Z.price < {}",
                    100 + i
                ))
            })
            .collect()
    }

    #[test]
    fn identical_elements_intern_to_one_class() {
        let queries = [
            q(
                "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X, Y) \
               WHERE X.price > 95 AND Y.price > 95",
            ),
            q(
                "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X, Y) \
               WHERE X.price > 95 AND Y.price < 90",
            ),
        ];
        let matcher = SharedMatcher::compile(&queries, &ExecOptions::default());
        let stats = matcher.base_stats();
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.solo, 0);
        // Classes: "price > 95" (×3 occurrences) and "price < 90".
        assert_eq!(stats.classes, 2);
        // The two queries share exactly their first element in the trie.
        assert_eq!(stats.shared_prefix_depth.count(), 2);
        assert_eq!(stats.shared_prefix_depth.max(), 1);
    }

    #[test]
    fn subset_and_contradiction_edges_are_built() {
        let mut interner = Interner::default();
        let mut edges: Vec<Vec<Edge>> = Vec::new();
        let a = q(
            "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X) \
                   WHERE X.price > 100 AND X.price < 200",
        );
        let b = q(
            "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X) \
                   WHERE X.price > 100",
        );
        let c = q(
            "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X) \
                   WHERE X.price < 50",
        );
        interner.intern_query(&a, &mut edges);
        interner.intern_query(&b, &mut edges);
        interner.intern_query(&c, &mut edges);
        assert_eq!(interner.classes.len(), 3);
        // a ⊇ b: a-true → b-true; b-false → a-false.
        assert!(edges[0]
            .iter()
            .any(|e| e.on && e.target == 1 && e.val && !e.interior));
        assert!(edges[1]
            .iter()
            .any(|e| !e.on && e.target == 0 && !e.val && !e.interior));
        // b ("price > 100") contradicts c ("price < 50"), interior-gated.
        assert!(edges[1]
            .iter()
            .any(|e| e.on && e.target == 2 && !e.val && e.interior));
        assert!(edges[2]
            .iter()
            .any(|e| e.on && e.target == 1 && !e.val && e.interior));
    }

    #[test]
    fn execute_set_matches_solo_runs_bit_for_bit() {
        let table = table(40);
        let queries = prefix_family(8);
        for threads in [1usize, 4] {
            let options = ExecOptions {
                threads: NonZeroUsize::new(threads).unwrap(),
                ..ExecOptions::default()
            };
            let set = execute_set(&queries, &table, &options);
            assert_eq!(set.results.len(), queries.len());
            for (query, result) in queries.iter().zip(&set.results) {
                let solo = execute(query, &table, &options).unwrap();
                let shared = result.as_ref().unwrap();
                assert_eq!(shared.table, solo.table, "threads={threads}");
                assert_eq!(shared.stats, solo.stats, "threads={threads}");
            }
        }
    }

    #[test]
    fn execute_set_saves_tests_against_the_per_query_sum() {
        let table = table(40);
        let queries = prefix_family(8);
        let options = ExecOptions::default();
        let set = execute_set(&queries, &table, &options);
        let solo_sum: u64 = queries
            .iter()
            .map(|q| execute(q, &table, &options).unwrap().stats.predicate_tests)
            .sum();
        assert_eq!(set.stats.tests_logical, solo_sum);
        assert!(set.stats.tests_saved > 0, "{:?}", set.stats);
        assert!(set.stats.tests_shared > 0, "{:?}", set.stats);
        assert!(
            set.stats.tests_evaluated < solo_sum,
            "shared pass must evaluate strictly fewer tests: {} vs {}",
            set.stats.tests_evaluated,
            solo_sum
        );
        assert_eq!(
            set.stats.tests_evaluated + set.stats.tests_saved,
            set.stats.tests_logical
        );
    }

    #[test]
    fn mixed_cluster_keys_split_into_groups_and_solo() {
        let queries = [
            q(
                "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X, Y) \
               WHERE Y.price > X.price",
            ),
            q("SELECT X.day AS d FROM t SEQUENCE BY day AS (X, Y) \
               WHERE Y.price > X.price"),
            q(
                "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X, Y) \
               WHERE Y.price < X.price",
            ),
        ];
        let matcher = SharedMatcher::compile(&queries, &ExecOptions::default());
        let stats = matcher.base_stats();
        assert_eq!(stats.groups, 1, "the two CLUSTER BY name queries group");
        assert_eq!(stats.solo, 1, "the unclustered query runs solo");
        let set = execute_set(&queries, &table(10), &ExecOptions::default());
        for (query, result) in queries.iter().zip(&set.results) {
            let solo = execute(query, &table(10), &ExecOptions::default()).unwrap();
            assert_eq!(result.as_ref().unwrap().table, solo.table);
        }
    }

    #[test]
    fn registry_join_and_cache_roundtrip() {
        let registry = SetRegistry::new();
        let a = q(
            "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X, Y) \
                   WHERE X.price > 95 AND Y.price > 95",
        );
        let join_a = registry.join(0, &a, FirstTuplePolicy::default()).unwrap();
        let join_b = registry.join(0, &a, FirstTuplePolicy::default()).unwrap();
        // Different origin → different group, no cross-talk.
        let join_c = registry.join(7, &a, FirstTuplePolicy::default()).unwrap();
        let key = vec![Value::from("AAA")];
        let ha = join_a.handle_for(&key);
        let hb = join_b.handle_for(&key);
        let hc = join_c.handle_for(&key);
        assert_eq!(ha.probe(0, 3), None);
        ha.store(0, 3, 10, true);
        assert_eq!(hb.probe(0, 3), Some(true), "same group shares the memo");
        assert_eq!(hc.probe(0, 3), None, "different origin must not share");
        let stats = registry.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.solo, 1);
        assert_eq!(stats.tests_saved, 1);
        assert_eq!(stats.tests_shared, 1);
    }

    #[test]
    fn cache_prune_drops_only_older_positions() {
        let cache = ClusterCache::default();
        let edges: Vec<Vec<Edge>> = vec![Vec::new()];
        for pos in 0..10u64 {
            cache.store(&edges, pos, 0, 100, true, 0);
        }
        assert_eq!(cache.entries(), 10);
        cache.prune_below(6);
        assert_eq!(cache.entries(), 4);
        assert_eq!(cache.probe(5, 0, 1), None);
        assert_eq!(cache.probe(7, 0, 1), Some(true));
    }

    #[test]
    fn derived_entries_respect_the_interior_gate() {
        // Two contradicting strict classes with a one-back reference on
        // class 0: price > 100 ∧ prev-dependent margins.
        let mut interner = Interner::default();
        let mut edges: Vec<Vec<Edge>> = Vec::new();
        let a = q(
            "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X) \
                   WHERE X.price > 100 AND X.previous.price > 100",
        );
        let b = q(
            "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X) \
                   WHERE X.price < 50",
        );
        let (ids_a, _) = interner.intern_query(&a, &mut edges);
        let (ids_b, _) = interner.intern_query(&b, &mut edges);
        assert_eq!(ids_a, vec![0]);
        assert_eq!(ids_b, vec![1]);
        let cache = ClusterCache::default();
        // Boundary position 0: back margin is 1, so no derivation.
        cache.store(&edges, 0, 0, 10, true, 0);
        assert_eq!(cache.probe(0, 1, 1), None, "boundary must not derive");
        // Interior position: observing class 0 true derives class 1 false.
        cache.store(&edges, 5, 0, 10, true, 0);
        assert_eq!(cache.probe(5, 1, 1), Some(false));
    }
}
