//! Instrumentation: the paper's cost metric and Figure-5 search traces.

use crate::governor::GovernorScope;
use crate::patternset::SharedEvalHandle;
use sqlts_trace::{ClusterRecorder, TraceEvent, TraceSink};
use std::cell::{Cell, RefCell};

/// Counts how many times an input element is tested against a pattern
/// element — exactly the performance metric of the paper's §7:
/// *"In order to measure performance, we count the number of times that an
/// element of input is tested against a pattern element."*
///
/// Uses interior mutability so engines can thread a shared counter without
/// `&mut` plumbing through the recursion.
///
/// A counter can additionally be **governed**
/// ([`EvalCounter::governed`]): each bump then also spends one unit of a
/// batched credit from a [`GovernorScope`], and once the scope reports a
/// budget/deadline/cancellation trip the [`tripped`](EvalCounter::tripped)
/// flag latches.  The engines poll that flag at their loop heads and
/// return the matches collected so far — always a prefix of what the
/// ungoverned run would produce for that cluster.  An ungoverned counter
/// pays one predictable branch per bump.
/// A counter can also be **armed** with a per-cluster
/// [`ClusterRecorder`] ([`EvalCounter::with_recorder`]): the engines then
/// stream Figure-5 [`TraceEvent`]s and per-position test counts into it
/// through [`emit`](EvalCounter::emit) /
/// [`record_test`](EvalCounter::record_test).  When unarmed, both hooks
/// are a single predictable branch on a `None` — the same no-cost idiom
/// as the ungoverned governor path — so results and counts stay
/// bit-identical whether tracing is on or off.
#[derive(Debug, Default)]
pub struct EvalCounter {
    tests: Cell<u64>,
    /// Steps left before the next governor check (governed mode only).
    credit: Cell<u32>,
    /// How many of `tests` have been flushed to the governor already.
    flushed: Cell<u64>,
    tripped: Cell<bool>,
    scope: Option<GovernorScope>,
    /// The armed trace/metrics recorder, if any.  Boxed so the unarmed
    /// counter stays small; `RefCell` because engines only hold `&self`.
    recorder: Option<Box<RefCell<ClusterRecorder>>>,
    /// The shared pattern-set memo, if this cluster run is part of a
    /// shared group (`execute_set` / `SetRegistry`).  Consulted between
    /// `bump()` and conjunct evaluation; a single predictable branch on a
    /// `None` for solo runs, same idiom as the recorder.
    shared: Option<Box<SharedEvalHandle>>,
}

impl EvalCounter {
    /// A fresh, ungoverned counter.
    pub fn new() -> EvalCounter {
        EvalCounter::default()
    }

    /// A counter metering against a governor scope.  Performs an initial
    /// check so an already-expired deadline or tripped run is observed
    /// before any work happens.
    pub fn governed(scope: GovernorScope) -> EvalCounter {
        let counter = EvalCounter {
            scope: Some(scope),
            ..EvalCounter::default()
        };
        counter.refill();
        counter
    }

    /// Arm this counter with a per-cluster trace/metrics recorder.  The
    /// engines will stream search events and per-position test counts
    /// into it; take it back with [`into_recorder`](EvalCounter::into_recorder).
    pub fn with_recorder(mut self, recorder: ClusterRecorder) -> EvalCounter {
        self.recorder = Some(Box::new(RefCell::new(recorder)));
        self
    }

    /// Is a recorder armed?  Engines may use this to skip building
    /// events that need extra bookkeeping.
    #[inline]
    pub fn armed(&self) -> bool {
        self.recorder.is_some()
    }

    /// Emit one search event to the armed recorder; a single predictable
    /// branch when unarmed.
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        if let Some(recorder) = &self.recorder {
            recorder.borrow_mut().record(event);
        }
    }

    /// Record the outcome of one predicate test of input position `i`
    /// against pattern element `j` (both 1-based) — the armed recorder
    /// turns this into an `Advance`/`Fail` event and a per-position
    /// count.  No-op when unarmed.
    #[inline]
    pub fn record_test(&self, i: usize, j: usize, ok: bool) {
        if let Some(recorder) = &self.recorder {
            let (i, j) = (i as u32, j as u32);
            recorder.borrow_mut().record(if ok {
                TraceEvent::Advance { i, j }
            } else {
                TraceEvent::Fail { i, j }
            });
        }
    }

    /// Install a shared pattern-set memo handle.  The counter's own
    /// accounting is untouched — `bump()` still fires for every logical
    /// test — but `test_element` may answer from the memo instead of
    /// evaluating.
    pub(crate) fn with_shared(mut self, handle: SharedEvalHandle) -> EvalCounter {
        self.shared = Some(Box::new(handle));
        self
    }

    /// Look up element `elem0` (0-based) at position `pos` in the shared
    /// memo.  `None` when no memo is installed, the element is not
    /// classed, or the value has not been established yet.
    #[inline]
    pub(crate) fn shared_probe(&self, elem0: usize, pos: usize) -> Option<bool> {
        self.shared.as_ref()?.probe(elem0, pos)
    }

    /// Publish an evaluated element outcome to the shared memo (no-op
    /// without one).  `avail` is the cluster length at evaluation time —
    /// the interior gate for lattice-derived entries.
    #[inline]
    pub(crate) fn shared_store(&self, elem0: usize, pos: usize, avail: usize, ok: bool) {
        if let Some(handle) = &self.shared {
            handle.store(elem0, pos, avail, ok);
        }
    }

    /// Take the armed recorder back (end-of-cluster accounting).
    pub fn into_recorder(self) -> Option<ClusterRecorder> {
        self.recorder.map(|r| r.into_inner())
    }

    /// Clone the armed recorder's current state without disarming it
    /// (checkpoint capture for a still-running streaming session).
    pub fn recorder_snapshot(&self) -> Option<ClusterRecorder> {
        self.recorder.as_ref().map(|r| r.borrow().clone())
    }

    /// Restore a historical test total (checkpoint resume).  The restored
    /// steps are marked as already flushed: they were metered against the
    /// governor of the run that took the checkpoint, and the fresh governor
    /// of the resumed run only pays for work done after the split point.
    pub fn restore_total(&self, total: u64) {
        self.tests.set(total);
        self.flushed.set(total);
    }

    /// Record one predicate test.
    #[inline]
    pub fn bump(&self) {
        self.tests.set(self.tests.get() + 1);
        if self.scope.is_some() {
            let c = self.credit.get();
            if c <= 1 {
                self.refill();
            } else {
                self.credit.set(c - 1);
            }
        }
    }

    /// The cold path of a governed bump: flush the batch, run the shared
    /// checks, take the next batch of credit.
    #[cold]
    fn refill(&self) {
        let Some(scope) = &self.scope else { return };
        if let Some(recorder) = &self.recorder {
            recorder.borrow_mut().governor_flush();
        }
        let spent = self.tests.get() - self.flushed.get();
        self.flushed.set(self.tests.get());
        match scope.refill(spent) {
            Ok(credit) => self.credit.set(credit),
            Err(_) => {
                // Stop re-checking: the engines observe `tripped` at their
                // loop heads and wind the cluster down.
                self.tripped.set(true);
                self.credit.set(u32::MAX);
            }
        }
    }

    /// Record one match against the governor's match budget.  Returns
    /// `true` when the match may be retained; `false` means the budget is
    /// exhausted — the caller must drop the match (keeping the retained
    /// count exactly at the budget) and will observe
    /// [`tripped`](EvalCounter::tripped) at its next loop head.  Always
    /// `true` for ungoverned counters.
    #[inline]
    #[must_use]
    pub fn match_found(&self) -> bool {
        if let Some(scope) = &self.scope {
            if scope.record_match().is_err() {
                self.tripped.set(true);
                return false;
            }
        }
        true
    }

    /// Has the governor tripped?  Engines poll this at loop heads and
    /// return early with the matches found so far.
    #[inline]
    pub fn tripped(&self) -> bool {
        self.tripped.get()
    }

    /// Flush any steps not yet reported to the governor (end-of-cluster
    /// accounting; keeps `RunGovernor::steps_consumed` exact).
    pub fn finish(&self) {
        if let Some(scope) = &self.scope {
            scope.flush(self.tests.get() - self.flushed.get());
            self.flushed.set(self.tests.get());
        }
    }

    /// Total predicate tests recorded.
    pub fn total(&self) -> u64 {
        self.tests.get()
    }

    /// Reset the test count to zero (the governed credit/trip state is
    /// left untouched; reset is a bench/experiment convenience).
    pub fn reset(&self) {
        self.tests.set(0);
        self.flushed.set(0);
    }
}

/// Records the `(i, j)` trajectory of a search — the input cursor and
/// pattern cursor at every predicate test — to reproduce the path curves
/// of the paper's Figure 5.
#[derive(Debug, Default, Clone)]
pub struct SearchTrace {
    /// `(i, j)` pairs, 1-based as in the paper.
    pub steps: Vec<(usize, usize)>,
}

impl SearchTrace {
    /// A fresh trace.
    pub fn new() -> SearchTrace {
        SearchTrace::default()
    }

    /// Record a test of input position `i` against pattern position `j`
    /// (both 1-based).
    pub fn record(&mut self, i: usize, j: usize) {
        self.steps.push((i, j));
    }

    /// The length of the search path (number of tests) — the quantity the
    /// paper calls "the length of the search path".
    pub fn path_len(&self) -> usize {
        self.steps.len()
    }

    /// How many times the input cursor moved backwards (a "backtracking
    /// episode" in the paper's terms).
    pub fn backtrack_episodes(&self) -> usize {
        self.steps.windows(2).filter(|w| w[1].0 < w[0].0).count()
    }

    /// Render the trajectory as a small ASCII chart (input position on the
    /// x-axis over test steps), used by the `experiments fig5` binary.
    pub fn ascii_chart(&self, width: usize) -> String {
        if self.steps.is_empty() {
            return String::new();
        }
        let max_i = self.steps.iter().map(|s| s.0).max().unwrap_or(1);
        let mut out = String::new();
        for (step, &(i, _j)) in self.steps.iter().enumerate() {
            let col = (i - 1) * width.saturating_sub(1) / max_i.max(1);
            out.push_str(&format!("{step:5} |"));
            out.push_str(&" ".repeat(col));
            out.push('*');
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = EvalCounter::new();
        assert_eq!(c.total(), 0);
        c.bump();
        c.bump();
        assert_eq!(c.total(), 2);
        assert!(!c.tripped());
        assert!(c.match_found()); // always retained when ungoverned
        c.finish();
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn governed_counter_trips_on_step_budget() {
        use crate::governor::{Governor, TripReason};
        let run = Governor::unlimited().with_max_steps(100).begin();
        let c = EvalCounter::governed(run.scope());
        let mut bumps = 0u64;
        while !c.tripped() && bumps < 10_000 {
            c.bump();
            bumps += 1;
        }
        assert!(c.tripped(), "budget of 100 must trip");
        // Sequential credit clamping makes the trip land exactly when the
        // budget is first exceeded.
        assert_eq!(bumps, 101);
        c.finish();
        assert_eq!(run.steps_consumed(), c.total());
        assert_eq!(run.trip().unwrap().reason, TripReason::StepBudget);
        // The count itself stays exact despite governing.
        assert_eq!(c.total(), bumps);
    }

    #[test]
    fn governed_counter_without_limits_never_trips() {
        use crate::governor::Governor;
        let run = Governor::unlimited().begin();
        let c = EvalCounter::governed(run.scope());
        for _ in 0..100_000 {
            c.bump();
        }
        assert!(c.match_found());
        c.finish();
        assert!(!c.tripped());
        assert_eq!(run.steps_consumed(), 100_000);
        assert_eq!(run.matches_recorded(), 1);
    }

    #[test]
    fn governed_counter_trips_on_match_budget() {
        use crate::governor::{Governor, TripReason};
        let run = Governor::unlimited().with_max_matches(1).begin();
        let c = EvalCounter::governed(run.scope());
        assert!(c.match_found());
        assert!(!c.tripped());
        assert!(!c.match_found(), "second match must be rejected");
        assert!(c.tripped());
        assert_eq!(run.matches_recorded(), 1);
        assert_eq!(run.trip().unwrap().reason, TripReason::MatchBudget);
    }

    #[test]
    fn governed_counter_observes_pre_tripped_run() {
        use crate::governor::{CancellationToken, Governor};
        let token = CancellationToken::new();
        token.cancel();
        let run = Governor::unlimited().with_token(token).begin();
        let c = EvalCounter::governed(run.scope());
        assert!(c.tripped(), "initial check must observe cancellation");
    }

    #[test]
    fn trace_records_and_measures() {
        let mut t = SearchTrace::new();
        for (i, j) in [(1, 1), (2, 2), (3, 3), (2, 1), (3, 2), (4, 3)] {
            t.record(i, j);
        }
        assert_eq!(t.path_len(), 6);
        assert_eq!(t.backtrack_episodes(), 1); // 3 -> 2
    }

    #[test]
    fn ascii_chart_smoke() {
        let mut t = SearchTrace::new();
        t.record(1, 1);
        t.record(5, 1);
        let chart = t.ascii_chart(20);
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.contains('*'));
        assert!(SearchTrace::new().ascii_chart(10).is_empty());
    }
}
