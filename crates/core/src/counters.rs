//! Instrumentation: the paper's cost metric and Figure-5 search traces.

use std::cell::Cell;

/// Counts how many times an input element is tested against a pattern
/// element — exactly the performance metric of the paper's §7:
/// *"In order to measure performance, we count the number of times that an
/// element of input is tested against a pattern element."*
///
/// Uses interior mutability so engines can thread a shared counter without
/// `&mut` plumbing through the recursion.
#[derive(Debug, Default)]
pub struct EvalCounter {
    tests: Cell<u64>,
}

impl EvalCounter {
    /// A fresh counter.
    pub fn new() -> EvalCounter {
        EvalCounter::default()
    }

    /// Record one predicate test.
    #[inline]
    pub fn bump(&self) {
        self.tests.set(self.tests.get() + 1);
    }

    /// Total predicate tests recorded.
    pub fn total(&self) -> u64 {
        self.tests.get()
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.tests.set(0);
    }
}

/// Records the `(i, j)` trajectory of a search — the input cursor and
/// pattern cursor at every predicate test — to reproduce the path curves
/// of the paper's Figure 5.
#[derive(Debug, Default, Clone)]
pub struct SearchTrace {
    /// `(i, j)` pairs, 1-based as in the paper.
    pub steps: Vec<(usize, usize)>,
}

impl SearchTrace {
    /// A fresh trace.
    pub fn new() -> SearchTrace {
        SearchTrace::default()
    }

    /// Record a test of input position `i` against pattern position `j`
    /// (both 1-based).
    pub fn record(&mut self, i: usize, j: usize) {
        self.steps.push((i, j));
    }

    /// The length of the search path (number of tests) — the quantity the
    /// paper calls "the length of the search path".
    pub fn path_len(&self) -> usize {
        self.steps.len()
    }

    /// How many times the input cursor moved backwards (a "backtracking
    /// episode" in the paper's terms).
    pub fn backtrack_episodes(&self) -> usize {
        self.steps.windows(2).filter(|w| w[1].0 < w[0].0).count()
    }

    /// Render the trajectory as a small ASCII chart (input position on the
    /// x-axis over test steps), used by the `experiments fig5` binary.
    pub fn ascii_chart(&self, width: usize) -> String {
        if self.steps.is_empty() {
            return String::new();
        }
        let max_i = self.steps.iter().map(|s| s.0).max().unwrap_or(1);
        let mut out = String::new();
        for (step, &(i, _j)) in self.steps.iter().enumerate() {
            let col = (i - 1) * width.saturating_sub(1) / max_i.max(1);
            out.push_str(&format!("{step:5} |"));
            out.push_str(&" ".repeat(col));
            out.push('*');
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = EvalCounter::new();
        assert_eq!(c.total(), 0);
        c.bump();
        c.bump();
        assert_eq!(c.total(), 2);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn trace_records_and_measures() {
        let mut t = SearchTrace::new();
        for (i, j) in [(1, 1), (2, 2), (3, 3), (2, 1), (3, 2), (4, 3)] {
            t.record(i, j);
        }
        assert_eq!(t.path_len(), 6);
        assert_eq!(t.backtrack_episodes(), 1); // 3 -> 2
    }

    #[test]
    fn ascii_chart_smoke() {
        let mut t = SearchTrace::new();
        t.record(1, 1);
        t.record(5, 1);
        let chart = t.ascii_chart(20);
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.contains('*'));
        assert!(SearchTrace::new().ascii_chart(10).is_empty());
    }
}
