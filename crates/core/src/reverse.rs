//! Reverse-direction search (the paper's §8 further work, implemented).
//!
//! A pattern can be searched front-to-back or back-to-front; the
//! compile-time `shift` / `next` tables differ between the two directions,
//! and the paper suggests picking the direction with the larger average
//! `shift` (and `next`) as a heuristic.
//!
//! Reversal is a pure pattern transformation: element order flips, and
//! every physical offset negates (`previous` in the original stream is
//! `next` in the reversed stream).  The per-element solver formulas are
//! reused verbatim — variable ids encode *relative positions*, which align
//! the same way after reversal — so the optimizer reasons about the
//! reversed pattern at no extra cost.
//!
//! Semantic note: forward search is left-maximal over overlapping
//! candidates, reverse search right-maximal.  Match *sets* agree whenever
//! candidate matches don't overlap (typical for selective patterns); the
//! experiment E7 compares *cost*, reporting both.

use crate::counters::EvalCounter;
use crate::engine::{find_matches, EngineKind, MatchSpans, SearchOptions};
use crate::matrices::{PrecondMatrices, Predicates};
use crate::shift_next;
use crate::stargraph::star_shift_next;
use sqlts_lang::{Anchor, BoolExpr, CompiledQuery, Conjunct, PatternElement, ScalarExpr, SpanEnd};
use sqlts_relation::Cluster;

/// Search direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Front-to-back (the default).
    Forward,
    /// Back-to-front.
    Reverse,
}

/// Build the reversed pattern: elements in reverse order, offsets negated,
/// element anchors re-indexed and span ends flipped.
pub fn reverse_elements(elements: &[PatternElement]) -> Vec<PatternElement> {
    let m = elements.len();
    elements
        .iter()
        .rev()
        .map(|e| PatternElement {
            name: format!("{}'", e.name),
            star: e.star,
            conjuncts: e
                .conjuncts
                .iter()
                .map(|c| Conjunct {
                    expr: reverse_bool(&c.expr, m),
                    local: c.local,
                    display: format!("rev({})", c.display),
                })
                .collect(),
            formula: e.formula.clone(),
        })
        .collect()
}

fn reverse_bool(e: &BoolExpr, m: usize) -> BoolExpr {
    match e {
        BoolExpr::Cmp { lhs, op, rhs } => BoolExpr::Cmp {
            lhs: reverse_scalar(lhs, m),
            op: *op,
            rhs: reverse_scalar(rhs, m),
        },
        BoolExpr::And(a, b) => {
            BoolExpr::And(Box::new(reverse_bool(a, m)), Box::new(reverse_bool(b, m)))
        }
        BoolExpr::Or(a, b) => {
            BoolExpr::Or(Box::new(reverse_bool(a, m)), Box::new(reverse_bool(b, m)))
        }
        BoolExpr::Not(inner) => BoolExpr::Not(Box::new(reverse_bool(inner, m))),
        BoolExpr::Const(b) => BoolExpr::Const(*b),
    }
}

fn reverse_scalar(e: &ScalarExpr, m: usize) -> ScalarExpr {
    match e {
        ScalarExpr::Field(f) => {
            let anchor = match f.anchor {
                Anchor::Cur => Anchor::Cur,
                Anchor::Element { index, end } => Anchor::Element {
                    index: m - 1 - index,
                    end: match end {
                        SpanEnd::First => SpanEnd::Last,
                        SpanEnd::Last => SpanEnd::First,
                    },
                },
            };
            ScalarExpr::Field(sqlts_lang::FieldRef {
                anchor,
                offset: -f.offset,
                col: f.col,
                ty: f.ty,
            })
        }
        ScalarExpr::Arith { op, lhs, rhs } => ScalarExpr::Arith {
            op: *op,
            lhs: Box::new(reverse_scalar(lhs, m)),
            rhs: Box::new(reverse_scalar(rhs, m)),
        },
        ScalarExpr::Neg(inner) => ScalarExpr::Neg(Box::new(reverse_scalar(inner, m))),
        other => other.clone(),
    }
}

/// Map match spans found on a reversed cluster back to forward-stream
/// coordinates.
pub fn unreverse_matches(matches: Vec<MatchSpans>, cluster_len: usize) -> Vec<MatchSpans> {
    let mut out: Vec<MatchSpans> = matches
        .into_iter()
        .map(|m| {
            let mut spans: Vec<(usize, usize)> = m
                .spans
                .iter()
                .map(|&(a, b)| (cluster_len - 1 - b, cluster_len - 1 - a))
                .collect();
            spans.reverse();
            MatchSpans { spans }
        })
        .collect();
    out.reverse(); // restore ascending start order
    out
}

/// Search a cluster in the given direction, returning matches in forward
/// coordinates.
pub fn find_matches_directed(
    query: &CompiledQuery,
    cluster: &Cluster<'_>,
    direction: Direction,
    kind: EngineKind,
    options: &SearchOptions,
    counter: &EvalCounter,
) -> Vec<MatchSpans> {
    match direction {
        Direction::Forward => find_matches(&query.elements, cluster, kind, options, counter, None),
        Direction::Reverse => {
            let rev_elements = reverse_elements(&query.elements);
            let rev_cluster = cluster.reversed();
            let found = find_matches(&rev_elements, &rev_cluster, kind, options, counter, None);
            unreverse_matches(found, cluster.len())
        }
    }
}

/// The §8 heuristic: prefer the direction with the larger mean
/// `shift + next` (larger expected skips).
pub fn direction_hint(query: &CompiledQuery) -> Direction {
    let score = |elements: &[PatternElement]| {
        let pattern = Predicates::new(elements);
        let pre = PrecondMatrices::build(pattern);
        let sn = if elements.iter().any(|e| e.star) {
            star_shift_next(pattern, &pre)
        } else {
            shift_next::compute(&pre)
        };
        // "Specially a larger value of shift has more effect on the
        // speedup" — weight shift double.
        2.0 * sn.mean_shift() + sn.mean_next()
    };
    let forward = score(&query.elements);
    let reverse = score(&reverse_elements(&query.elements));
    if reverse > forward {
        Direction::Reverse
    } else {
        Direction::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlts_lang::{compile, CompileOptions, FirstTuplePolicy};
    use sqlts_relation::{ColumnType, Date, Schema, Table, Value};

    fn schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    fn table(prices: &[f64]) -> Table {
        let mut t = Table::new(schema());
        for (i, &p) in prices.iter().enumerate() {
            t.push_row(vec![
                Value::from("X"),
                Value::Date(Date::from_days(i as i32)),
                Value::from(p),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn reverse_finds_same_nonoverlapping_matches() {
        let q = compile(
            "SELECT X.name FROM t SEQUENCE BY date AS (X, Y, Z) \
             WHERE X.price = 10 AND Y.price = 11 AND Z.price = 15",
            &schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let prices = [9.0, 10.0, 11.0, 15.0, 3.0, 10.0, 11.0, 15.0];
        let t = table(&prices);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let opts = SearchOptions {
            policy: FirstTuplePolicy::Fail,
        };
        let fwd = find_matches_directed(
            &q,
            &clusters[0],
            Direction::Forward,
            EngineKind::Ops,
            &opts,
            &EvalCounter::new(),
        );
        let rev = find_matches_directed(
            &q,
            &clusters[0],
            Direction::Reverse,
            EngineKind::Ops,
            &opts,
            &EvalCounter::new(),
        );
        assert_eq!(fwd, rev);
        assert_eq!(fwd.len(), 2);
        assert_eq!(fwd[0].spans, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn reverse_star_pattern_spans_map_back() {
        // Rising run then a drop; pattern (*R, D).
        let q = compile(
            "SELECT FIRST(R).date FROM t SEQUENCE BY date AS (*R, D) \
             WHERE R.price > R.previous.price AND D.price < D.previous.price",
            &schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let prices = [5.0, 6.0, 7.0, 8.0, 4.0];
        let t = table(&prices);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let opts = SearchOptions {
            policy: FirstTuplePolicy::Fail,
        };
        let fwd = find_matches_directed(
            &q,
            &clusters[0],
            Direction::Forward,
            EngineKind::Naive,
            &opts,
            &EvalCounter::new(),
        );
        let rev = find_matches_directed(
            &q,
            &clusters[0],
            Direction::Reverse,
            EngineKind::Naive,
            &opts,
            &EvalCounter::new(),
        );
        assert_eq!(fwd, rev);
        assert_eq!(fwd[0].spans, vec![(1, 3), (4, 4)]);
    }

    #[test]
    fn direction_hint_prefers_selective_end() {
        // Selective constants at the end → reverse search skips faster.
        let q = compile(
            "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C) \
             WHERE A.price > A.previous.price AND B.price = 10 AND C.price = 20",
            &schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        // Just assert it runs and returns a definite answer.
        let hint = direction_hint(&q);
        assert!(matches!(hint, Direction::Forward | Direction::Reverse));
    }

    #[test]
    fn unreverse_maps_coordinates() {
        let m = vec![MatchSpans {
            spans: vec![(0, 1), (2, 2)],
        }];
        let un = unreverse_matches(m, 10);
        assert_eq!(un[0].spans, vec![(7, 7), (8, 9)]);
    }
}
