//! Session multiplexing: one owned worker thread per standing query.
//!
//! [`StreamSession`] borrows its compiled query for its whole life, which
//! is perfect for a driver with the query on its stack and awkward for a
//! long-lived registry that must own many sessions at once.  A
//! [`SessionWorker`] resolves the tension by compiling the query *inside*
//! a dedicated thread, where the session can borrow it until the thread
//! exits; the rest of the process talks to the worker over a bounded
//! command channel.  This is the substrate a multi-tenant host (the
//! `sqlts-server` crate, or any embedding) multiplexes subscriptions onto:
//!
//! * **Admission control** — the command queue is a
//!   [`std::sync::mpsc::sync_channel`] of configurable depth, so a slow
//!   subscription exerts backpressure on its feeders instead of buffering
//!   unboundedly, and per-worker [`Governor`](crate::Governor) budgets
//!   (deadline / step / match) ride in unchanged through
//!   [`StreamOptions::exec`].
//! * **Stalled-tenant reclamation** — the worker's idle loop calls
//!   [`StreamSession::poll_deadline`] every `poll_interval`, so a tenant
//!   that simply stops feeding still trips its wall-clock deadline and
//!   releases its budget without waiting for another tuple.
//! * **Checkpoint / resume** — [`SessionWorker::snapshot`] returns the
//!   session's `sqlts-checkpoint v1` text, and
//!   [`SessionWorkerConfig::resume_from`] rebuilds a worker that continues
//!   bit-identically (the checkpoint's engine wins, so a resumed
//!   subscription never silently switches machines).
//!
//! Every reply carries a [`WorkerError`] mapped onto the CLI's documented
//! exit-code scheme (3 input, 4 runtime/governed, 5 quarantine) so
//! transports can surface one consistent status vocabulary.

use crate::patternset::SetRegistry;
use crate::stream::{SessionCheckpoint, StreamError, StreamOptions, StreamSession};
use crate::{compile, Trip};
use sqlts_relation::Schema;
use sqlts_trace::ExecutionProfile;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything a [`SessionWorker`] needs to stand up its session.
#[derive(Clone, Debug)]
pub struct SessionWorkerConfig {
    /// A short identifier used for the worker thread's name and
    /// diagnostics (e.g. the subscription id).
    pub name: String,
    /// The SQL-TS query source; compiled inside the worker thread.
    pub sql: String,
    /// The input schema the query is compiled against.
    pub schema: Schema,
    /// The full stream options (engine, governor, instrumentation,
    /// bad-tuple policy, backpressure) the session runs under.
    pub stream: StreamOptions,
    /// Command-queue depth: how many commands may be pending before
    /// senders block (admission control / backpressure).  Clamped to ≥ 1.
    pub queue_depth: usize,
    /// How often the idle loop polls the session deadline when no
    /// commands arrive.  Keep this well under any configured
    /// `--timeout-ms` so stalled tenants are reclaimed promptly.
    pub poll_interval: Duration,
    /// `sqlts-checkpoint v1` text to resume from, or `None` for a fresh
    /// session.  On resume the checkpoint's engine overrides
    /// `stream.exec.engine` so continuation is bit-identical.
    pub resume_from: Option<String>,
    /// Shared pattern-set membership: when set, the worker joins the
    /// channel's [`SetRegistry`] after compiling, so its session shares
    /// predicate tests with every other subscription in the same group.
    /// `None` (the default) runs exactly as before.
    pub shared: Option<SharedSpec>,
}

/// How a worker joins a channel-level shared pattern-set registry.
#[derive(Clone, Debug)]
pub struct SharedSpec {
    /// The channel's registry of standing queries.
    pub registry: Arc<SetRegistry>,
    /// The feed position this subscription's cluster positions are
    /// counted from: `0` for a subscription created before any feed, the
    /// checkpointed record count for a resumed one.  Groups are keyed by
    /// origin, so misaligned members never share a memo entry.
    pub origin: u64,
}

impl SessionWorkerConfig {
    /// A config with the given query over `schema` and conservative
    /// defaults: fresh session, queue depth 16, 50ms poll interval.
    pub fn new(name: impl Into<String>, sql: impl Into<String>, schema: Schema) -> Self {
        SessionWorkerConfig {
            name: name.into(),
            sql: sql.into(),
            schema,
            stream: StreamOptions::default(),
            queue_depth: 16,
            poll_interval: Duration::from_millis(50),
            resume_from: None,
            shared: None,
        }
    }
}

/// A worker failure, classified onto the CLI's exit-code scheme so every
/// transport reports one consistent status vocabulary.
#[derive(Debug)]
pub enum WorkerError {
    /// Bad query or bad input (compile error, unbindable tuple, malformed
    /// checkpoint) — exit-code class 3.
    Input(String),
    /// The session started but failed at runtime (poisoned by a contained
    /// panic, I/O) — exit-code class 4.
    Runtime(String),
    /// The resource governor terminated the session — exit-code class 4,
    /// kept distinct so hosts can attach partial-result semantics.
    Governed(Trip),
    /// A quarantine reached its capacity — exit-code class 5.
    Quarantine(String),
    /// The worker thread is gone (already finished or crashed).
    Gone,
}

impl WorkerError {
    /// The CLI exit-code class this error mirrors.
    pub fn exit_code(&self) -> u8 {
        match self {
            WorkerError::Input(_) => 3,
            WorkerError::Runtime(_) | WorkerError::Governed(_) | WorkerError::Gone => 4,
            WorkerError::Quarantine(_) => 5,
        }
    }
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Input(m) | WorkerError::Runtime(m) | WorkerError::Quarantine(m) => {
                write!(f, "{m}")
            }
            WorkerError::Governed(trip) => {
                write!(f, "stream terminated by resource governor: {trip}")
            }
            WorkerError::Gone => write!(f, "session worker is gone"),
        }
    }
}

impl std::error::Error for WorkerError {}

fn map_stream_err(e: StreamError) -> WorkerError {
    match e {
        StreamError::Governed { trip, .. } => WorkerError::Governed(trip),
        StreamError::QuarantineFull { .. } => WorkerError::Quarantine(e.to_string()),
        StreamError::Poisoned(_) => WorkerError::Runtime(e.to_string()),
        StreamError::Unsupported(_)
        | StreamError::Table(_)
        | StreamError::BadTuple(_)
        | StreamError::Checkpoint(_) => WorkerError::Input(e.to_string()),
    }
}

/// A point-in-time view of a live session, cheap enough to serve on a
/// metrics scrape.
#[derive(Clone, Debug)]
pub struct SessionStatus {
    /// Input records seen (accepted + rejected).
    pub records: u64,
    /// Records dropped under the skip policy.
    pub skipped: u64,
    /// Tuples parked in quarantine.
    pub quarantined: usize,
    /// Estimated bytes buffered across cluster windows.
    pub window_bytes: usize,
    /// Logical predicate tests performed so far (memo hits under shared
    /// pattern-set execution are charged as if evaluated locally).
    pub predicate_tests: u64,
    /// The latched governor trip, if the session has tripped.
    pub trip: Option<Trip>,
    /// Has a contained panic poisoned the session?
    pub poisoned: bool,
}

/// The terminal report of a finished (or governed/failed) session.
#[derive(Debug)]
pub struct FinishReport {
    /// The result table as CSV (header + rows); partial when governed,
    /// empty when the finish failed outright.
    pub csv: String,
    /// Number of match rows in `csv`.
    pub rows: u64,
    /// The governor trip, when the session was cut short.
    pub trip: Option<Trip>,
    /// A non-governed finish failure (poisoned session, …).
    pub error: Option<String>,
    /// The armed execution profile, when instrumentation was on.
    pub profile: Option<Box<ExecutionProfile>>,
    /// Records dropped under the skip policy.
    pub skipped: u64,
    /// Tuples left in quarantine.
    pub quarantined: usize,
}

/// What a worker thread is doing *right now*, published through a
/// [`PhaseTag`] so an observer (the server's sampling profiler) can read
/// it with one relaxed atomic load — no lock, no signal, no stack
/// unwinding, and zero effect on what the worker computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WorkerPhase {
    /// Parked in `recv_timeout`, waiting for a command.
    Idle = 0,
    /// Compiling the query (and applying any resume checkpoint) at
    /// startup.
    Compile = 1,
    /// Applying a fed tuple to the session.
    Feed = 2,
    /// Serializing a `sqlts-checkpoint v1` snapshot.
    Snapshot = 3,
    /// Serving a status probe.
    Status = 4,
    /// Driving the session to end-of-input.
    Finish = 5,
}

impl WorkerPhase {
    /// The lowercase name used in collapsed-stack frames and `/status`.
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerPhase::Idle => "idle",
            WorkerPhase::Compile => "compile",
            WorkerPhase::Feed => "feed",
            WorkerPhase::Snapshot => "snapshot",
            WorkerPhase::Status => "status",
            WorkerPhase::Finish => "finish",
        }
    }

    fn from_u8(v: u8) -> WorkerPhase {
        match v {
            1 => WorkerPhase::Compile,
            2 => WorkerPhase::Feed,
            3 => WorkerPhase::Snapshot,
            4 => WorkerPhase::Status,
            5 => WorkerPhase::Finish,
            _ => WorkerPhase::Idle,
        }
    }
}

/// The cheap atomic tag a [`SessionWorker`] publishes for samplers: the
/// current [`WorkerPhase`] plus the session's record count.  All loads
/// and stores are `Relaxed` — a sampler tolerates a stale read by
/// design (it is a statistical profile, not a synchronization point),
/// and the worker pays two uncontended atomic stores per command, far
/// from the per-tuple hot loop.
#[derive(Debug, Default)]
pub struct PhaseTag {
    phase: AtomicU8,
    records: AtomicU64,
}

impl PhaseTag {
    /// The phase most recently published by the worker.
    pub fn phase(&self) -> WorkerPhase {
        WorkerPhase::from_u8(self.phase.load(Ordering::Relaxed))
    }

    /// The session's record count as of the last publish.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    fn set(&self, phase: WorkerPhase) {
        self.phase.store(phase as u8, Ordering::Relaxed);
    }

    fn set_records(&self, records: u64) {
        self.records.store(records, Ordering::Relaxed);
    }
}

enum Command {
    Feed {
        row: Vec<sqlts_relation::Value>,
        reply: SyncSender<Result<(), WorkerError>>,
    },
    Snapshot {
        reply: SyncSender<Result<(String, u64), WorkerError>>,
    },
    Status {
        reply: SyncSender<SessionStatus>,
    },
    Finish {
        reply: SyncSender<FinishReport>,
    },
}

/// A handle to one subscription's dedicated worker thread.
///
/// All methods take `&self`, so a handle can sit in a shared registry and
/// be driven from many connection threads at once; replies come back over
/// per-call rendezvous channels.  Dropping the handle without calling
/// [`finish`](SessionWorker::finish) shuts the worker down and discards
/// the session (take a [`snapshot`](SessionWorker::snapshot) first to
/// keep the work).
pub struct SessionWorker {
    tx: SyncSender<Command>,
    join: Mutex<Option<JoinHandle<()>>>,
    tag: Arc<PhaseTag>,
    queued: Arc<AtomicU64>,
}

impl fmt::Debug for SessionWorker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionWorker").finish_non_exhaustive()
    }
}

impl SessionWorker {
    /// Spawn the worker: compile the query (and apply any resume
    /// checkpoint) inside the new thread, then report readiness.  A
    /// compile or resume failure surfaces here, not later.
    pub fn spawn(config: SessionWorkerConfig) -> Result<SessionWorker, WorkerError> {
        let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
        let (ready_tx, ready_rx) = mpsc::sync_channel(1);
        let tag = Arc::new(PhaseTag::default());
        let queued = Arc::new(AtomicU64::new(0));
        let name = format!("sqlts-sub-{}", config.name);
        let worker_tag = Arc::clone(&tag);
        let worker_queued = Arc::clone(&queued);
        let join = std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_main(config, &rx, &ready_tx, &worker_tag, &worker_queued))
            .map_err(|e| WorkerError::Runtime(format!("spawn worker: {e}")))?;
        match ready_rx.recv() {
            Ok(Ok(())) => Ok(SessionWorker {
                tx,
                join: Mutex::new(Some(join)),
                tag,
                queued,
            }),
            Ok(Err(e)) => {
                let _ = join.join();
                Err(e)
            }
            Err(_) => {
                let _ = join.join();
                Err(WorkerError::Runtime("worker died during startup".into()))
            }
        }
    }

    fn call<T>(&self, make: impl FnOnce(SyncSender<T>) -> Command) -> Result<T, WorkerError> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        // Count the command as queued before the (possibly blocking)
        // send so a sampler sees the backpressure while a feeder is
        // stalled on a full queue; the worker decrements on dequeue.
        self.queued.fetch_add(1, Ordering::Relaxed);
        if self.tx.send(make(reply_tx)).is_err() {
            self.queued.fetch_sub(1, Ordering::Relaxed);
            return Err(WorkerError::Gone);
        }
        reply_rx.recv().map_err(|_| WorkerError::Gone)
    }

    /// The worker's live phase/record tag, for samplers.  Cloning the
    /// `Arc` lets a profiler thread keep observing without holding the
    /// registry lock.
    pub fn phase_tag(&self) -> Arc<PhaseTag> {
        Arc::clone(&self.tag)
    }

    /// Commands currently queued (or in flight) toward the worker —
    /// the live backpressure gauge.
    pub fn queue_depth(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Push one tuple into the session (blocks while the queue is full —
    /// that is the backpressure).
    pub fn feed(&self, row: Vec<sqlts_relation::Value>) -> Result<(), WorkerError> {
        self.call(|reply| Command::Feed { row, reply })?
    }

    /// Capture the session as `sqlts-checkpoint v1` text.
    pub fn snapshot(&self) -> Result<String, WorkerError> {
        Ok(self.snapshot_with_records()?.0)
    }

    /// Capture the session as checkpoint text *plus* the record count the
    /// checkpoint represents, extracted in the same worker round trip —
    /// so a persistence layer can align the snapshot with its input log
    /// without re-parsing the text and without racing concurrent feeds.
    pub fn snapshot_with_records(&self) -> Result<(String, u64), WorkerError> {
        self.call(|reply| Command::Snapshot { reply })?
    }

    /// A point-in-time status snapshot.
    pub fn status(&self) -> Result<SessionStatus, WorkerError> {
        self.call(|reply| Command::Status { reply })
    }

    /// Close the stream: drive the session to end-of-input and return the
    /// final (or partial, when governed) result.  The worker thread exits.
    pub fn finish(&self) -> Result<FinishReport, WorkerError> {
        let report = self.call(|reply| Command::Finish { reply })?;
        if let Ok(mut slot) = self.join.lock() {
            if let Some(join) = slot.take() {
                let _ = join.join();
            }
        }
        Ok(report)
    }
}

fn worker_main(
    config: SessionWorkerConfig,
    rx: &mpsc::Receiver<Command>,
    ready: &SyncSender<Result<(), WorkerError>>,
    tag: &PhaseTag,
    queued: &AtomicU64,
) {
    tag.set(WorkerPhase::Compile);
    let compiled = match compile(&config.sql, &config.schema, &config.stream.exec.compile) {
        Ok(q) => q,
        Err(e) => {
            let _ = ready.send(Err(WorkerError::Input(e.render(&config.sql))));
            return;
        }
    };
    let mut options = config.stream.clone();
    let built = match &config.resume_from {
        Some(text) => SessionCheckpoint::from_text(text).and_then(|cp| {
            // The checkpoint's engine wins: a resumed subscription must
            // continue bit-identically, never silently switch machines.
            options.exec.engine = cp.engine();
            StreamSession::resume(&compiled, options, cp)
        }),
        None => StreamSession::new(&compiled, options),
    };
    let mut session = match built {
        Ok(s) => s,
        Err(e) => {
            let _ = ready.send(Err(map_stream_err(e)));
            return;
        }
    };
    if let Some(shared) = &config.shared {
        if let Some(join) =
            shared
                .registry
                .join(shared.origin, &compiled, config.stream.exec.policy)
        {
            session.install_shared(join);
        }
    }
    tag.set_records(session.records());
    tag.set(WorkerPhase::Idle);
    if ready.send(Ok(())).is_err() {
        return;
    }
    loop {
        match rx.recv_timeout(config.poll_interval) {
            Ok(command) => {
                queued.fetch_sub(1, Ordering::Relaxed);
                match command {
                    Command::Feed { row, reply } => {
                        tag.set(WorkerPhase::Feed);
                        let result = session.feed(row).map_err(map_stream_err);
                        // Publish before the reply so a caller that saw
                        // its feed acknowledged also sees the count.
                        tag.set_records(session.records());
                        let _ = reply.send(result);
                    }
                    Command::Snapshot { reply } => {
                        tag.set(WorkerPhase::Snapshot);
                        let _ = reply.send(
                            session
                                .snapshot()
                                .map(|cp| (cp.to_text(), cp.records()))
                                .map_err(map_stream_err),
                        );
                    }
                    Command::Status { reply } => {
                        tag.set(WorkerPhase::Status);
                        let _ = reply.send(status_of(&session));
                    }
                    Command::Finish { reply } => {
                        tag.set(WorkerPhase::Finish);
                        let _ = reply.send(finish_report(session));
                        tag.set(WorkerPhase::Idle);
                        return;
                    }
                }
                tag.set(WorkerPhase::Idle);
            }
            Err(RecvTimeoutError::Timeout) => {
                // The stalled-tenant fix: an idle session still observes
                // its wall-clock deadline (and cancellation token).
                let _ = session.poll_deadline();
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn status_of(session: &StreamSession<'_>) -> SessionStatus {
    SessionStatus {
        records: session.records(),
        skipped: session.skipped(),
        quarantined: session.quarantine().len(),
        window_bytes: session.window_bytes(),
        predicate_tests: session.predicate_tests(),
        trip: session.trip().cloned(),
        poisoned: session.poisoned(),
    }
}

fn finish_report(session: StreamSession<'_>) -> FinishReport {
    let skipped = session.skipped();
    let quarantined = session.quarantine().len();
    match session.finish() {
        Ok(result) => FinishReport {
            csv: result.table.to_csv_string(),
            rows: result.stats.matches,
            trip: None,
            error: None,
            profile: result.profile,
            skipped,
            quarantined,
        },
        Err(StreamError::Governed { trip, partial }) => {
            let (csv, rows, profile) = match partial {
                Some(p) => (p.table.to_csv_string(), p.stats.matches, p.profile),
                None => (String::new(), 0, None),
            };
            FinishReport {
                csv,
                rows,
                trip: Some(trip),
                error: None,
                profile,
                skipped,
                quarantined,
            }
        }
        Err(e) => FinishReport {
            csv: String::new(),
            rows: 0,
            trip: None,
            error: Some(e.to_string()),
            profile: None,
            skipped,
            quarantined,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute, ExecOptions, Instrument};
    use crate::governor::{Governor, TripReason};
    use crate::EngineKind;
    use sqlts_relation::{ColumnType, Table, Value};

    fn quote_schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("day", ColumnType::Int),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    const QUERY: &str = "SELECT X.name, Z.price AS peak, Z.day AS day FROM quote \
                         CLUSTER BY name SEQUENCE BY day AS (X, *Y, Z) \
                         WHERE Y.price > Y.previous.price AND Z.price < Z.previous.price";

    fn workload() -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for day in 0..60i64 {
            for (name, phase) in [("AAA", 0i64), ("BBB", 3)] {
                let wave = ((day + phase) % 7) as f64;
                rows.push(vec![
                    Value::Str(name.to_string()),
                    Value::Int(day),
                    Value::Float(100.0 + 3.0 * wave - 0.1 * day as f64),
                ]);
            }
        }
        rows
    }

    fn batch_csv(rows: &[Vec<Value>]) -> String {
        let mut t = Table::new(quote_schema());
        for row in rows {
            t.push_row(row.clone()).unwrap();
        }
        let q = crate::compile(QUERY, &quote_schema(), &crate::CompileOptions::default()).unwrap();
        execute(&q, &t, &ExecOptions::default())
            .unwrap()
            .table
            .to_csv_string()
    }

    #[test]
    fn worker_matches_batch_and_resumes_from_checkpoint() {
        let rows = workload();
        let expected = batch_csv(&rows);

        // Straight through.
        let worker =
            SessionWorker::spawn(SessionWorkerConfig::new("t1", QUERY, quote_schema())).unwrap();
        for row in &rows {
            worker.feed(row.clone()).unwrap();
        }
        let report = worker.finish().unwrap();
        assert!(report.trip.is_none());
        assert_eq!(report.csv, expected);

        // Checkpoint at the midpoint, drop the worker, resume in a new one.
        let first =
            SessionWorker::spawn(SessionWorkerConfig::new("t2", QUERY, quote_schema())).unwrap();
        let mid = rows.len() / 2;
        for row in &rows[..mid] {
            first.feed(row.clone()).unwrap();
        }
        let checkpoint = first.snapshot().unwrap();
        drop(first);
        let mut config = SessionWorkerConfig::new("t3", QUERY, quote_schema());
        config.resume_from = Some(checkpoint);
        let second = SessionWorker::spawn(config).unwrap();
        for row in &rows[mid..] {
            second.feed(row.clone()).unwrap();
        }
        let resumed = second.finish().unwrap();
        assert_eq!(resumed.csv, expected, "resumed output must equal batch");
    }

    #[test]
    fn stalled_worker_trips_deadline_from_idle_loop() {
        // The acceptance criterion: a non-feeding subscription with a
        // wall-clock deadline trips Governed with no further feed call.
        let mut config = SessionWorkerConfig::new("stall", QUERY, quote_schema());
        config.stream.exec.governor = Governor::unlimited().with_timeout(Duration::from_millis(20));
        config.poll_interval = Duration::from_millis(5);
        let worker = SessionWorker::spawn(config).unwrap();
        worker
            .feed(vec![
                Value::Str("AAA".into()),
                Value::Int(0),
                Value::Float(100.0),
            ])
            .unwrap();
        // Stall: no feeds.  The idle loop must latch the trip by itself.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let trip = loop {
            let status = worker.status().unwrap();
            if let Some(trip) = status.trip {
                break trip;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stalled session never tripped its deadline"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(trip.reason, TripReason::Deadline);
        // finish() reports the partial result with the trip attached.
        let report = worker.finish().unwrap();
        assert_eq!(report.trip.unwrap().reason, TripReason::Deadline);
    }

    #[test]
    fn compile_and_governed_errors_map_to_exit_codes() {
        let err = SessionWorker::spawn(SessionWorkerConfig::new(
            "bad",
            "SELECT nonsense FROM",
            quote_schema(),
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "compile error is input class");

        let mut config = SessionWorkerConfig::new("budget", QUERY, quote_schema());
        config.stream.exec.governor = Governor::unlimited().with_max_steps(10);
        config.stream.exec.instrument = Instrument::default();
        let worker = SessionWorker::spawn(config).unwrap();
        let mut governed = None;
        for row in workload() {
            if let Err(e) = worker.feed(row) {
                governed = Some(e);
                break;
            }
        }
        let err = governed.expect("a 10-step budget must trip");
        assert!(matches!(err, WorkerError::Governed(_)), "{err}");
        assert_eq!(err.exit_code(), 4);
        let report = worker.finish().unwrap();
        assert!(report.trip.is_some());
    }

    #[test]
    fn phase_tag_publishes_records_and_settles_idle() {
        let rows = workload();
        let worker =
            SessionWorker::spawn(SessionWorkerConfig::new("tag", QUERY, quote_schema())).unwrap();
        let tag = worker.phase_tag();
        for row in &rows {
            worker.feed(row.clone()).unwrap();
        }
        // Every feed reply is a rendezvous, so once the last feed returns
        // the published record count is exact and the queue is drained.
        assert_eq!(tag.records(), rows.len() as u64);
        assert_eq!(worker.queue_depth(), 0);
        // The worker parks between commands; give it a beat to publish.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while tag.phase() != WorkerPhase::Idle {
            assert!(std::time::Instant::now() < deadline, "never settled idle");
            std::thread::sleep(Duration::from_millis(2));
        }
        // The tag outlives the handle — a sampler holding the Arc must
        // not keep the worker alive or crash after finish.
        let report = worker.finish().unwrap();
        assert!(report.error.is_none());
        assert_eq!(tag.records(), rows.len() as u64);
        assert_eq!(WorkerPhase::Feed.as_str(), "feed");
        assert_eq!(WorkerPhase::Idle.as_str(), "idle");
    }

    #[test]
    fn resume_adopts_checkpoint_engine() {
        let rows = workload();
        let mut config = SessionWorkerConfig::new("naive", QUERY, quote_schema());
        config.stream.exec.engine = EngineKind::Naive;
        let worker = SessionWorker::spawn(config).unwrap();
        for row in &rows[..10] {
            worker.feed(row.clone()).unwrap();
        }
        let checkpoint = worker.snapshot().unwrap();
        drop(worker);
        // Resume with a *different* configured engine: the checkpoint's
        // engine must win so continuation is bit-identical.
        let mut config = SessionWorkerConfig::new("resumed", QUERY, quote_schema());
        config.stream.exec.engine = EngineKind::Ops;
        config.resume_from = Some(checkpoint);
        let worker = SessionWorker::spawn(config).unwrap();
        for row in &rows[10..] {
            worker.feed(row.clone()).unwrap();
        }
        let report = worker.finish().unwrap();
        assert_eq!(report.csv, batch_csv(&rows));
    }
}
