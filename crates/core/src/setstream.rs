//! Streaming shared pattern-set execution: N standing queries over one
//! feed, each tuple dispatched once through the shared memo.
//!
//! A [`SharedStreamSession`] wraps one [`StreamSession`] per member query
//! and a private [`SetRegistry`]: members with the same
//! `CLUSTER BY`/`SEQUENCE BY` intern their element classes into a common
//! group, so the first member to test a shared class at a stream position
//! evaluates it and the rest answer from the memo.  Every member keeps its
//! own window, engine machine, counter and governor scope, so per-member
//! results, stats and checkpoints stay bit-identical to running the
//! member in its own [`StreamSession`] — including resume: checkpoints
//! are ordinary `sqlts-checkpoint v1` [`SessionCheckpoint`]s, and the
//! memo is soft state that is simply empty right after a resume.

use crate::executor::QueryResult;
use crate::patternset::SetRegistry;
use crate::stream::{SessionCheckpoint, StreamError, StreamOptions, StreamSession};
use sqlts_lang::CompiledQuery;
use sqlts_relation::Value;
use sqlts_trace::PatternSetStats;
use std::fmt;
use std::sync::Arc;

/// A feed error attributed to one member of a shared stream session.
#[derive(Debug)]
pub struct SetFeedError {
    /// Index of the member (into the query slice the session was built
    /// from) whose feed failed.
    pub member: usize,
    /// The member's error, exactly as its solo session would report it.
    pub error: StreamError,
}

impl fmt::Display for SetFeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "member {}: {}", self.member, self.error)
    }
}

impl std::error::Error for SetFeedError {}

/// N standing queries over one push-based feed, sharing predicate tests.
pub struct SharedStreamSession<'q> {
    members: Vec<StreamSession<'q>>,
    registry: Arc<SetRegistry>,
    /// Members whose pattern had no shareable element (they run exactly
    /// as solo sessions; counted as solo in the set stats).
    unshared: usize,
}

impl<'q> SharedStreamSession<'q> {
    /// Open a shared session over `queries`, all starting at feed
    /// position zero.  Every query must read the same input schema (they
    /// are fed the same tuples); queries that disagree on
    /// `CLUSTER BY`/`SEQUENCE BY` still run in the set, they just land in
    /// separate sharing groups.
    pub fn new(queries: &'q [CompiledQuery], options: &StreamOptions) -> Result<Self, StreamError> {
        let checkpoints = queries.iter().map(|_| None).collect();
        Self::build(queries, options, checkpoints)
    }

    /// Resume a shared session: one `sqlts-checkpoint v1` checkpoint per
    /// member, `None` entries starting fresh.  Sharing groups are keyed by
    /// each member's resume origin (its checkpointed record count), so
    /// members whose positions don't line up never share a memo entry.
    pub fn resume(
        queries: &'q [CompiledQuery],
        options: &StreamOptions,
        checkpoints: Vec<Option<SessionCheckpoint>>,
    ) -> Result<Self, StreamError> {
        if checkpoints.len() != queries.len() {
            return Err(StreamError::Checkpoint(format!(
                "checkpoint count mismatch: {} checkpoints for {} queries",
                checkpoints.len(),
                queries.len()
            )));
        }
        Self::build(queries, options, checkpoints)
    }

    fn build(
        queries: &'q [CompiledQuery],
        options: &StreamOptions,
        checkpoints: Vec<Option<SessionCheckpoint>>,
    ) -> Result<Self, StreamError> {
        if queries.is_empty() {
            return Err(StreamError::Unsupported(
                "shared stream session needs at least one query".into(),
            ));
        }
        for query in &queries[1..] {
            if query.schema != queries[0].schema {
                return Err(StreamError::Unsupported(
                    "shared stream members must read the same input schema".into(),
                ));
            }
        }
        let registry = Arc::new(SetRegistry::new());
        let mut members = Vec::with_capacity(queries.len());
        let mut unshared = 0;
        for (query, checkpoint) in queries.iter().zip(checkpoints) {
            let origin = checkpoint.as_ref().map_or(0, SessionCheckpoint::records);
            let mut session = match checkpoint {
                Some(cp) => StreamSession::resume(query, options.clone(), cp)?,
                None => StreamSession::new(query, options.clone())?,
            };
            match registry.join(origin, query, options.exec.policy) {
                Some(join) => session.install_shared(join),
                None => unshared += 1,
            }
            members.push(session);
        }
        Ok(SharedStreamSession {
            members,
            registry,
            unshared,
        })
    }

    /// Number of member queries.
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// Push one tuple into every member, in member order (the same order
    /// the memo's deterministic counters assume).  Fails fast on the
    /// first member error — its own feed semantics (bad-tuple policy,
    /// governor trips) are unchanged from a solo session.
    pub fn feed(&mut self, row: Vec<Value>) -> Result<(), SetFeedError> {
        for (member, session) in self.members.iter_mut().enumerate() {
            session
                .feed(row.clone())
                .map_err(|error| SetFeedError { member, error })?;
        }
        Ok(())
    }

    /// Checkpoint one member — a plain v1 [`SessionCheckpoint`], loadable
    /// by a solo [`StreamSession::resume`] as well as
    /// [`SharedStreamSession::resume`].  The shared memo is deliberately
    /// not captured: it is derivable state, and a resumed session simply
    /// starts with a cold memo.
    pub fn snapshot_member(&mut self, member: usize) -> Result<SessionCheckpoint, StreamError> {
        self.members[member].snapshot()
    }

    /// Checkpoint every member at the same feed boundary.
    pub fn snapshot_all(&mut self) -> Result<Vec<SessionCheckpoint>, StreamError> {
        self.members
            .iter_mut()
            .map(StreamSession::snapshot)
            .collect()
    }

    /// Poll deadlines/cancellation on every member (idle-loop hook).
    /// Returns the first member error, if any.
    pub fn poll_deadline(&mut self) -> Result<(), SetFeedError> {
        for (member, session) in self.members.iter_mut().enumerate() {
            session
                .poll_deadline()
                .map_err(|error| SetFeedError { member, error })?;
        }
        Ok(())
    }

    /// Close every member and assemble the set statistics.  Each member's
    /// result is exactly what its solo session would return; the stats
    /// combine the registry's compile/savings counters with the members'
    /// logical test totals.
    pub fn finish(self) -> (Vec<Result<QueryResult, StreamError>>, PatternSetStats) {
        let results: Vec<Result<QueryResult, StreamError>> = self
            .members
            .into_iter()
            .map(StreamSession::finish)
            .collect();
        let mut stats = self.registry.stats();
        stats.queries += self.unshared;
        stats.solo += self.unshared;
        for result in &results {
            stats.tests_logical += match result {
                Ok(r) => r.stats.predicate_tests,
                Err(StreamError::Governed {
                    partial: Some(p), ..
                }) => p.stats.predicate_tests,
                Err(_) => 0,
            };
        }
        stats.tests_evaluated = stats.tests_logical.saturating_sub(stats.tests_saved);
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ExecOptions;
    use sqlts_lang::{compile, CompileOptions};
    use sqlts_relation::{ColumnType, Schema, Table};

    fn schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("day", ColumnType::Int),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    fn rows(n: usize) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for day in 0..n {
            for name in ["AAA", "BBB"] {
                let price = 100 + ((day * 7 + name.len()) % 13) as i64 - 6;
                out.push(vec![
                    Value::from(name),
                    Value::from(day as i64),
                    Value::from(price as f64),
                ]);
            }
        }
        out
    }

    fn queries() -> Vec<CompiledQuery> {
        (0..4)
            .map(|i| {
                compile(
                    &format!(
                        "SELECT X.name, Z.day AS day FROM t \
                         CLUSTER BY name SEQUENCE BY day AS (X, Y, Z) \
                         WHERE X.price > 95 AND Y.price > X.previous.price \
                         AND Z.price < {}",
                        100 + i
                    ),
                    &schema(),
                    &CompileOptions::default(),
                )
                .unwrap()
            })
            .collect()
    }

    fn batch_reference(queries: &[CompiledQuery], rows: &[Vec<Value>]) -> Vec<Table> {
        let mut table = Table::new(schema());
        for row in rows {
            table.push_row(row.clone()).unwrap();
        }
        queries
            .iter()
            .map(|q| {
                crate::executor::execute(q, &table, &ExecOptions::default())
                    .unwrap()
                    .table
            })
            .collect()
    }

    #[test]
    fn shared_stream_matches_batch_and_saves_tests() {
        let queries = queries();
        let rows = rows(40);
        let reference = batch_reference(&queries, &rows);
        let mut session = SharedStreamSession::new(&queries, &StreamOptions::default()).unwrap();
        for row in &rows {
            session.feed(row.clone()).unwrap();
        }
        let (results, stats) = session.finish();
        for (result, expected) in results.iter().zip(&reference) {
            assert_eq!(&result.as_ref().unwrap().table, expected);
        }
        assert!(stats.tests_saved > 0, "{stats:?}");
        assert!(stats.tests_evaluated < stats.tests_logical, "{stats:?}");
    }

    #[test]
    fn resume_from_prefix_is_bit_identical() {
        let queries = queries();
        let rows = rows(30);
        let reference = batch_reference(&queries, &rows);
        let split = rows.len() / 2;
        let mut first = SharedStreamSession::new(&queries, &StreamOptions::default()).unwrap();
        for row in &rows[..split] {
            first.feed(row.clone()).unwrap();
        }
        let checkpoints = first.snapshot_all().unwrap();
        // Round-trip through the v1 text codec, like the server does.
        let checkpoints: Vec<Option<SessionCheckpoint>> = checkpoints
            .into_iter()
            .map(|cp| Some(SessionCheckpoint::from_text(&cp.to_text()).unwrap()))
            .collect();
        let mut resumed =
            SharedStreamSession::resume(&queries, &StreamOptions::default(), checkpoints).unwrap();
        for row in &rows[split..] {
            resumed.feed(row.clone()).unwrap();
        }
        let (results, _) = resumed.finish();
        for (result, expected) in results.iter().zip(&reference) {
            assert_eq!(&result.as_ref().unwrap().table, expected);
        }
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let other_schema = Schema::new([("x", ColumnType::Int)]).unwrap();
        let a = compile(
            "SELECT X.name FROM t CLUSTER BY name SEQUENCE BY day AS (X) WHERE X.price > 0",
            &schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let b = compile(
            "SELECT X.x FROM t SEQUENCE BY x AS (X) WHERE X.x > 0",
            &other_schema,
            &CompileOptions::default(),
        )
        .unwrap();
        let queries = vec![a, b];
        let Err(err) = SharedStreamSession::new(&queries, &StreamOptions::default()) else {
            panic!("schema mismatch must be rejected");
        };
        assert!(matches!(err, StreamError::Unsupported(_)));
    }
}
