//! `EXPLAIN` rendering of the compile-time artifacts: predicates, θ, φ,
//! S, and the shift/next tables — the worked objects of the paper's
//! Examples 5–7 and 9, as human-readable text.

use crate::engine::{plan, EngineKind};
use crate::matrices::{PrecondMatrices, Predicates};
use crate::shift_next;
use sqlts_lang::CompiledQuery;
use sqlts_trace::OptimizerReport;
use std::fmt::Write as _;

/// Build the machine-readable optimizer report: the rendered pattern plus
/// the shift/next tables and their means.  `explain` renders from this
/// same data, and `--profile` embeds it in the [`ExecutionProfile`]
/// (`sqlts_trace::ExecutionProfile`), so one artifact carries both the
/// plan and its runtime consequences.
pub fn optimizer_report(query: &CompiledQuery) -> OptimizerReport {
    let m = query.elements.len();
    let pattern = query
        .elements
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let star = if e.star { "*" } else { " " };
            let pred = if e.conjuncts.is_empty() {
                "TRUE".to_string()
            } else {
                e.conjuncts
                    .iter()
                    .map(|c| c.display.clone())
                    .collect::<Vec<_>>()
                    .join(" AND ")
            };
            format!(
                "p{} {}{}: {}{}",
                i + 1,
                star,
                e.name,
                pred,
                if e.purely_local() {
                    ""
                } else {
                    " [has non-local conjuncts]"
                }
            )
        })
        .collect();
    let sn = plan(&query.elements, EngineKind::Ops).tables;
    OptimizerReport {
        pattern,
        shift: (1..=m).map(|j| sn.shift(j)).collect(),
        next: (1..=m).map(|j| sn.next(j)).collect(),
        mean_shift: sn.mean_shift(),
        mean_next: sn.mean_next(),
    }
}

/// Render a full optimizer report for a compiled query.
pub fn explain(query: &CompiledQuery) -> String {
    let pattern = Predicates::new(&query.elements);
    let m = pattern.len();
    let report = optimizer_report(query);
    let mut out = String::new();

    let _ = writeln!(out, "pattern ({} elements):", m);
    for line in &report.pattern {
        let _ = writeln!(out, "  {line}");
    }

    let pre = PrecondMatrices::build(pattern);
    let _ = writeln!(out, "\ntheta (positive preconditions):");
    let _ = write!(out, "{}", indent(&pre.theta.to_string()));
    let _ = writeln!(out, "\nphi (negative preconditions):");
    let _ = write!(out, "{}", indent(&pre.phi.to_string()));

    if !query.has_star() {
        let s = shift_next::s_matrix(&pre);
        if m > 1 {
            let _ = writeln!(out, "\nS (whole-pattern shift matrix):");
            let _ = write!(out, "{}", indent(&s.to_string()));
        }
    }

    let _ = writeln!(out, "\nshift: {:?}", report.shift);
    let _ = writeln!(out, "next:  {:?}", report.next);
    let _ = writeln!(
        out,
        "mean shift = {:.2}, mean next = {:.2}",
        report.mean_shift, report.mean_next
    );
    out
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlts_lang::{compile, CompileOptions};
    use sqlts_relation::{ColumnType, Schema};

    #[test]
    fn explain_renders_all_sections() {
        let schema = Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap();
        let q = compile(
            "SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C, D) \
             WHERE A.price < A.previous.price \
             AND B.price < B.previous.price AND B.price > 40 AND B.price < 50 \
             AND C.price > C.previous.price AND C.price < 52 \
             AND D.price > D.previous.price",
            &schema,
            &CompileOptions::default(),
        )
        .unwrap();
        let text = explain(&q);
        assert!(text.contains("theta"));
        assert!(text.contains("phi"));
        assert!(text.contains("S (whole-pattern"));
        assert!(text.contains("shift: [1, 1, 1, 3]"));
        assert!(text.contains("next:  [0, 1, 2, 1]"));
    }

    #[test]
    fn explain_star_pattern_marks_stars() {
        let schema = Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap();
        let q = compile(
            "SELECT FIRST(X).date FROM quote SEQUENCE BY date AS (*X, Y) \
             WHERE X.price > X.previous.price AND Y.price < 30",
            &schema,
            &CompileOptions::default(),
        )
        .unwrap();
        let text = explain(&q);
        assert!(text.contains("*X"));
        assert!(!text.contains("S (whole-pattern"));
    }
}
