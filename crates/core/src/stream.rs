//! Resilient streaming execution: push-based [`StreamSession`]s.
//!
//! The batch executor ([`crate::executor::execute`]) needs the whole
//! relation up front.  A [`StreamSession`] instead accepts one tuple at a
//! time ([`StreamSession::feed`]) and drives the same resumable engine
//! machines ([`crate::engine::EngineMachine`]) incrementally, holding only
//! the bounded in-flight window each cluster still needs.  The central
//! invariant — enforced by the property suites — is **streamed equals
//! batch**: for every engine and policy, feeding a relation tuple by tuple
//! and then calling [`StreamSession::finish`] produces the same
//! [`QueryResult`] (rows, stats, and armed profile minus wall-clock
//! phases) as one batch `execute` over the same rows.
//!
//! Three resilience layers ride on top of the incremental core:
//!
//! * **Checkpoint/restore** — [`StreamSession::snapshot`] captures the
//!   complete session state (automaton positions, window buffers,
//!   counters, pending matches, emitted rows) as a [`SessionCheckpoint`];
//!   [`StreamSession::resume`] rebuilds a session that continues
//!   bit-identically to one that never stopped.  The checkpoint has a
//!   versioned text form ([`SessionCheckpoint::to_text`] /
//!   [`SessionCheckpoint::from_text`]) so a killed process can restart
//!   from a file without replaying history.
//! * **Input hardening** — malformed, unbindable, or out-of-order tuples
//!   never poison the session: per [`BadTuplePolicy`] they are skipped,
//!   surfaced as an error, or parked in a bounded quarantine with a
//!   [`BadTuple`] record mirroring the CSV reader's line-error context.
//!   A panic inside `feed` is contained by a `catch_unwind` barrier; the
//!   session latches [`StreamError::Poisoned`] and a previously saved
//!   checkpoint can resume from the last good boundary.
//! * **Backpressure** — an optional high-watermark on buffered window
//!   bytes ([`StreamOptions::max_window_bytes`]).  When exceeded, every
//!   cluster's in-flight attempt is force-failed via the realignment rules
//!   (sound in the same way a failed predicate is sound: emitted matches
//!   stay valid, later matches are still found), pending matches are
//!   projected against the current window, buffers are compacted, and a
//!   [`TripCause::StreamPressure`] trip is recorded in the stream log.
//!   This is the one documented divergence from batch output.
//!
//! Streaming is forward-only: `DirectionChoice::Reverse`/`Auto` are
//! rejected ([`StreamError::Unsupported`]) because a reverse scan needs
//! the end of the stream first.

use crate::counters::EvalCounter;
use crate::engine::{
    plan, EngineKind, EngineMachine, MatchSpans, SearchOptions, SearchPlan, StepInput, StepOutcome,
};
use crate::executor::{
    output_schema, panic_cause, DirectionChoice, ExecOptions, QueryResult, SearchStats,
};
use crate::governor::{RunGovernor, Trip};
use sqlts_lang::{
    eval_projection, Bindings, BoolExpr, CompiledQuery, EvalCtx, FieldRef, ScalarExpr,
};
use sqlts_relation::{Cluster, Date, Table, TableError, Value};
use sqlts_trace::{
    BoundedHistogram, ClusterMetrics, ClusterProfile, ClusterRecorder, ExecutionProfile,
    RingBuffer, TraceEvent, TraceSink, TripCause, HIST_BUCKETS,
};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// How many feeds between shared-memo prunes (soft state, so the exact
/// cadence only trades memory for lock traffic).
const SHARED_PRUNE_INTERVAL: u32 = 256;

/// What to do with a tuple that cannot be accepted (schema violation,
/// out-of-order `SEQUENCE BY` key, or an injected ingest fault).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BadTuplePolicy {
    /// Drop the tuple, count it in [`StreamSession::skipped`], continue.
    Skip,
    /// Surface [`StreamError::BadTuple`] to the caller (the default — bad
    /// input should be loud unless the operator opts out).
    #[default]
    Fail,
    /// Park up to `cap` bad tuples in the session's quarantine for later
    /// inspection; the `cap + 1`-th bad tuple surfaces
    /// [`StreamError::QuarantineFull`].
    Quarantine {
        /// Maximum quarantined tuples before the session refuses more.
        cap: usize,
    },
}

/// One rejected input tuple, with the same diagnostic shape as the CSV
/// reader's line errors: which record, why, and the rendered content.
#[derive(Clone, Debug, PartialEq)]
pub struct BadTuple {
    /// 1-based input record number (the session's feed count).
    pub record: u64,
    /// Why the tuple was rejected.
    pub reason: String,
    /// The tuple rendered as comma-separated values.
    pub rendered: String,
}

impl fmt::Display for BadTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "record {}: {} ({})",
            self.record, self.reason, self.rendered
        )
    }
}

/// Options for a [`StreamSession`].
#[derive(Clone, Debug, Default)]
pub struct StreamOptions {
    /// The batch execution options the session mirrors (engine, policy,
    /// governor, instrumentation).  `direction` must be `Forward`;
    /// `threads` is accepted for parity but clusters are driven
    /// sequentially (results are thread-count-independent anyway).
    pub exec: ExecOptions,
    /// What to do with unacceptable tuples.
    pub bad_tuple: BadTuplePolicy,
    /// Backpressure high-watermark on estimated buffered window bytes
    /// across all clusters (`None` = unbounded, the bit-identical mode).
    pub max_window_bytes: Option<usize>,
    /// Capacity of the session-level stream log (feed/quarantine/
    /// checkpoint/pressure events).  0 keeps no log.
    pub log_capacity: usize,
}

/// Errors surfaced by a [`StreamSession`].
#[derive(Debug)]
pub enum StreamError {
    /// The query or options cannot be streamed (e.g. reverse scans).
    Unsupported(String),
    /// Table/schema problem (unknown cluster/sequence column, …).
    Table(TableError),
    /// A tuple was rejected under [`BadTuplePolicy::Fail`].
    BadTuple(BadTuple),
    /// The quarantine reached its cap; the offending tuple is returned.
    QuarantineFull {
        /// The configured quarantine capacity.
        cap: usize,
        /// The tuple that did not fit.
        tuple: BadTuple,
    },
    /// The resource governor terminated the session.  `partial` carries
    /// the assembled result when the error comes from
    /// [`StreamSession::finish`]; it is `None` from `feed` (take a
    /// checkpoint and resume, or call `finish` for the partial result).
    Governed {
        /// What tripped and how much was consumed.
        trip: Trip,
        /// The partial result, from `finish` only.
        partial: Option<Box<QueryResult>>,
    },
    /// A panic inside `feed` was contained; the session refuses further
    /// work.  Resume from the last checkpoint.
    Poisoned(String),
    /// A checkpoint could not be taken, parsed, or applied.
    Checkpoint(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Unsupported(what) => write!(f, "streaming unsupported: {what}"),
            StreamError::Table(e) => write!(f, "{e}"),
            StreamError::BadTuple(t) => write!(f, "bad tuple at {t}"),
            StreamError::QuarantineFull { cap, tuple } => {
                write!(f, "quarantine full (cap {cap}); rejected {tuple}")
            }
            StreamError::Governed { trip, .. } => {
                write!(f, "stream terminated by resource governor: {trip}")
            }
            StreamError::Poisoned(cause) => {
                write!(f, "session poisoned by contained panic: {cause}")
            }
            StreamError::Checkpoint(why) => write!(f, "checkpoint error: {why}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<TableError> for StreamError {
    fn from(e: TableError) -> Self {
        StreamError::Table(e)
    }
}

/// How far a query's predicates and projection reach around a tuple, in
/// physical stream positions.  Derived once per session by walking every
/// compiled expression for [`FieldRef`] offsets.
///
/// * `test_ahead` gates predicate evaluation: before `eof`, tuple `i` may
///   only be tested once `i + test_ahead < buffered`, so `next`-style
///   references resolve exactly as in a batch run.
/// * `proj_ahead` gates projection: a match ending at `e` projects once
///   `e + proj_ahead < buffered` (or at `eof`).
/// * the `*_behind` margins keep enough prefix in the window that no
///   evaluation ever reaches below the retained base.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Margins {
    test_ahead: usize,
    test_behind: usize,
    proj_ahead: usize,
    proj_behind: usize,
}

fn margins_of(query: &CompiledQuery) -> Margins {
    let mut m = Margins::default();
    let mut test = |fr: &FieldRef| stretch(&mut m.test_ahead, &mut m.test_behind, fr.offset);
    for el in &query.elements {
        for c in &el.conjuncts {
            walk_bool(&c.expr, &mut test);
        }
    }
    let mut proj = |fr: &FieldRef| stretch(&mut m.proj_ahead, &mut m.proj_behind, fr.offset);
    for item in &query.projection {
        walk_scalar(&item.expr, &mut proj);
    }
    m
}

fn stretch(ahead: &mut usize, behind: &mut usize, offset: i32) {
    if offset > 0 {
        *ahead = (*ahead).max(offset as usize);
    } else if offset < 0 {
        *behind = (*behind).max(offset.unsigned_abs() as usize);
    }
}

fn walk_bool<F: FnMut(&FieldRef)>(e: &BoolExpr, f: &mut F) {
    match e {
        BoolExpr::Cmp { lhs, rhs, .. } => {
            walk_scalar(lhs, f);
            walk_scalar(rhs, f);
        }
        BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
            walk_bool(a, f);
            walk_bool(b, f);
        }
        BoolExpr::Not(a) => walk_bool(a, f),
        BoolExpr::Const(_) => {}
    }
}

fn walk_scalar<F: FnMut(&FieldRef)>(e: &ScalarExpr, f: &mut F) {
    match e {
        ScalarExpr::Field(fr) => f(fr),
        ScalarExpr::Arith { lhs, rhs, .. } => {
            walk_scalar(lhs, f);
            walk_scalar(rhs, f);
        }
        ScalarExpr::Neg(a) => walk_scalar(a, f),
        ScalarExpr::Num { .. } | ScalarExpr::Str(_) | ScalarExpr::Date(_) => {}
    }
}

/// Estimated heap footprint of one buffered value (backpressure
/// accounting; a coarse, deterministic model — not an allocator audit).
fn value_bytes(v: &Value) -> usize {
    32 + v.as_str().map_or(0, str::len)
}

/// Estimated footprint of one buffered row.
fn row_bytes(row: &[Value]) -> usize {
    24 + row.iter().map(value_bytes).sum::<usize>()
}

fn render_row(row: &[Value]) -> String {
    row.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn render_key(key: &[Value]) -> String {
    key.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// One cluster's live streaming state: the buffered window, the resumable
/// engine machine, its private counter, matches waiting for projection
/// lookahead, and the rows already projected.
struct ClusterStream {
    /// The buffered window (suffix of the cluster's stream).
    buf: Table,
    /// Absolute position of `buf`'s first row in the cluster stream.
    base: usize,
    /// Estimated bytes buffered in `buf`.
    bytes: usize,
    /// `SEQUENCE BY` key of the last accepted tuple (order enforcement).
    last_seq: Option<Vec<Value>>,
    machine: EngineMachine,
    counter: EvalCounter,
    /// Completed matches not yet projected (waiting for `proj_ahead`).
    pending: Vec<MatchSpans>,
    /// Projected output rows, in match order.
    rows: Vec<Vec<Value>>,
}

/// A push-based streaming execution session over one compiled query.
///
/// Built with [`StreamSession::new`] (or [`StreamSession::resume`] from a
/// checkpoint); fed one tuple at a time with [`StreamSession::feed`];
/// closed with [`StreamSession::finish`], which returns the same
/// [`QueryResult`] a batch run over the full input would.
pub struct StreamSession<'q> {
    query: &'q CompiledQuery,
    options: StreamOptions,
    search_options: SearchOptions,
    search_plan: Option<SearchPlan>,
    margins: Margins,
    cluster_idx: Vec<usize>,
    sequence_idx: Vec<usize>,
    clusters: BTreeMap<Vec<Value>, ClusterStream>,
    run: Option<Arc<RunGovernor>>,
    records: u64,
    skipped: u64,
    pressure_trips: u64,
    window_bytes: usize,
    quarantine: Vec<BadTuple>,
    log: Option<RingBuffer>,
    poisoned: Option<String>,
    trip: Option<Trip>,
    plan_ns: u64,
    /// Shared pattern-set membership (server `--shared-matcher`,
    /// `SharedStreamSession`): hands each cluster's counter a memo handle.
    shared: Option<crate::patternset::SharedJoin>,
    /// Feeds since the shared memo was last pruned to the window bases.
    feeds_since_prune: u32,
}

impl<'q> StreamSession<'q> {
    /// Open a fresh streaming session for `query`.
    pub fn new(query: &'q CompiledQuery, options: StreamOptions) -> Result<Self, StreamError> {
        if options.exec.direction != DirectionChoice::Forward {
            return Err(StreamError::Unsupported(
                "reverse/auto scan direction needs the end of the stream first".into(),
            ));
        }
        let mut cluster_idx = Vec::with_capacity(query.cluster_by.len());
        for name in &query.cluster_by {
            cluster_idx.push(query.schema.require(name)?);
        }
        let mut sequence_idx = Vec::with_capacity(query.sequence_by.len());
        for name in &query.sequence_by {
            sequence_idx.push(query.schema.require(name)?);
        }
        let profiling = options.exec.instrument.armed();
        let t_plan = profiling.then(Instant::now);
        let search_plan = match options.exec.engine {
            EngineKind::Naive | EngineKind::NaiveBacktrack => None,
            kind => Some(plan(&query.elements, kind)),
        };
        let plan_ns = t_plan.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let run = (!options.exec.governor.is_unlimited()).then(|| options.exec.governor.begin());
        let search_options = SearchOptions {
            policy: options.exec.policy,
        };
        let log = (options.log_capacity > 0).then(|| RingBuffer::new(options.log_capacity));
        Ok(StreamSession {
            query,
            options,
            search_options,
            search_plan,
            margins: margins_of(query),
            cluster_idx,
            sequence_idx,
            clusters: BTreeMap::new(),
            run,
            records: 0,
            skipped: 0,
            pressure_trips: 0,
            window_bytes: 0,
            quarantine: Vec::new(),
            log,
            poisoned: None,
            trip: None,
            plan_ns,
            shared: None,
            feeds_since_prune: 0,
        })
    }

    /// Attach this session to a shared pattern-set group.  Existing
    /// cluster counters (a resumed session's) are retrofitted with memo
    /// handles; clusters created later pick theirs up at birth.  The memo
    /// is soft state — it only short-circuits evaluations whose cached
    /// value is provably identical — so attaching (or not) never changes
    /// this session's output, stats or governor accounting.
    pub(crate) fn install_shared(&mut self, join: crate::patternset::SharedJoin) {
        for (key, cs) in self.clusters.iter_mut() {
            let counter = std::mem::take(&mut cs.counter);
            cs.counter = counter.with_shared(join.handle_for(key));
        }
        self.shared = Some(join);
    }

    /// Input records seen so far (accepted + rejected).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records dropped under [`BadTuplePolicy::Skip`].
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Backpressure relief episodes so far.
    pub fn pressure_trips(&self) -> u64 {
        self.pressure_trips
    }

    /// Estimated bytes currently buffered across all cluster windows.
    pub fn window_bytes(&self) -> usize {
        self.window_bytes
    }

    /// Predicate tests performed so far, summed over live clusters.  Under
    /// shared pattern-set execution this is the *logical* count: memo hits
    /// are charged exactly as if this session had evaluated them itself.
    pub fn predicate_tests(&self) -> u64 {
        self.clusters.values().map(|cs| cs.counter.total()).sum()
    }

    /// The quarantined tuples, in rejection order.
    pub fn quarantine(&self) -> &[BadTuple] {
        &self.quarantine
    }

    /// The session-level stream log, when a capacity was configured.
    pub fn stream_log(&self) -> Option<&RingBuffer> {
        self.log.as_ref()
    }

    /// Has the governor tripped this session?
    pub fn tripped(&self) -> bool {
        self.trip.is_some()
    }

    /// The latched governor trip, when one has occurred.
    pub fn trip(&self) -> Option<&Trip> {
        self.trip.as_ref()
    }

    /// Has a contained panic poisoned this session?
    pub fn poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    fn new_cluster(&self, key: &[Value]) -> ClusterStream {
        let mut counter = match &self.run {
            Some(run) => EvalCounter::governed(run.scope()),
            None => EvalCounter::new(),
        };
        if self.options.exec.instrument.armed() {
            counter = counter.with_recorder(ClusterRecorder::new(
                self.query.elements.len(),
                self.options.exec.instrument.capacity(),
            ));
        }
        if let Some(shared) = &self.shared {
            counter = counter.with_shared(shared.handle_for(key));
        }
        ClusterStream {
            buf: Table::new(self.query.schema.clone()),
            base: 0,
            bytes: 0,
            last_seq: None,
            machine: EngineMachine::new(self.options.exec.engine, self.query.elements.len()),
            counter,
            pending: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Push one input tuple into the session.
    ///
    /// Rejected tuples follow [`StreamOptions::bad_tuple`]; a governor
    /// trip surfaces [`StreamError::Governed`] (the tuple that observed a
    /// deadline trip at the feed boundary is **not** consumed); a panic is
    /// contained and poisons the session.
    pub fn feed(&mut self, row: Vec<Value>) -> Result<(), StreamError> {
        // Deadline/cancellation are honoured at every feed boundary, not
        // just at credit-batch flushes.
        self.poll_deadline()?;
        self.records += 1;
        match catch_unwind(AssertUnwindSafe(|| self.feed_inner(row))) {
            Ok(result) => result,
            Err(payload) => {
                let cause = panic_cause(payload);
                self.poisoned = Some(cause.clone());
                Err(StreamError::Poisoned(cause))
            }
        }
    }

    /// Check the wall-clock deadline and cancellation token *now*, without
    /// feeding anything, latching a [`StreamError::Governed`] trip exactly
    /// as a `feed` boundary would.
    ///
    /// `feed` polls the governor at every tuple boundary, but a stream
    /// that simply *stops feeding* would otherwise never observe its
    /// deadline: an idle or stalled tenant could hold its budget forever.
    /// Long-running hosts (the `sqlts-server` subscription workers, any
    /// `--follow`-style driver with a read timeout) call this from their
    /// idle loop so a stalled session still trips and releases its budget.
    ///
    /// Cheap when it does not trip: one latched-flag read plus at most one
    /// `Instant::now()`.  No steps are charged.
    pub fn poll_deadline(&mut self) -> Result<(), StreamError> {
        if let Some(cause) = &self.poisoned {
            return Err(StreamError::Poisoned(cause.clone()));
        }
        if let Some(trip) = &self.trip {
            return Err(StreamError::Governed {
                trip: trip.clone(),
                partial: None,
            });
        }
        if let Some(run) = &self.run {
            if let Err(reason) = run.poll() {
                // `poll` latches the trip before failing; fall back to a
                // synthesized record rather than panicking if the latch is
                // not visible (e.g. a racing cancellation).
                let trip = run.trip().unwrap_or_else(|| run.make_trip(reason));
                self.trip = Some(trip.clone());
                return Err(StreamError::Governed {
                    trip,
                    partial: None,
                });
            }
        }
        Ok(())
    }

    /// Fold an input fault detected *outside* the session (e.g. a CSV
    /// line that failed to parse) into the bad-tuple policy, so stream
    /// sources get one uniform skip/fail/quarantine story.
    pub fn quarantine_external(
        &mut self,
        reason: String,
        rendered: String,
    ) -> Result<(), StreamError> {
        if let Some(cause) = &self.poisoned {
            return Err(StreamError::Poisoned(cause.clone()));
        }
        self.records += 1;
        self.reject(reason, rendered)
    }

    fn feed_inner(&mut self, row: Vec<Value>) -> Result<(), StreamError> {
        #[cfg(feature = "failpoints")]
        if let Some(injected) = sqlts_relation::failpoints::hit("stream::feed", self.records) {
            if injected == sqlts_relation::failpoints::Injected::InjectError {
                let rendered = render_row(&row);
                return self.reject("failpoint 'stream::feed' injected error".into(), rendered);
            }
        }
        if let Err(e) = self.query.schema.validate_row(&row) {
            let rendered = render_row(&row);
            return self.reject(e.to_string(), rendered);
        }
        let key: Vec<Value> = self.cluster_idx.iter().map(|&c| row[c].clone()).collect();
        let seq: Vec<Value> = self.sequence_idx.iter().map(|&c| row[c].clone()).collect();
        if let Some(cs) = self.clusters.get(&key) {
            if let Some(last) = &cs.last_seq {
                if seq < *last {
                    let rendered = render_row(&row);
                    return self.reject(
                        format!(
                            "out-of-order SEQUENCE BY key ({}) in cluster ({})",
                            render_key(&seq),
                            render_key(&key)
                        ),
                        rendered,
                    );
                }
            }
        }
        if let Some(log) = &mut self.log {
            log.record(TraceEvent::Feed {
                i: self.records as u32,
            });
        }
        if !self.clusters.contains_key(&key) {
            let fresh = self.new_cluster(&key);
            self.clusters.insert(key.clone(), fresh);
        }
        let bytes = row_bytes(&row);
        let Some(cs) = self.clusters.get_mut(&key) else {
            // Unreachable (the key was ensured above); degrade to the
            // bad-tuple path rather than panicking inside `feed`.
            let rendered = render_row(&row);
            return self.reject("internal: cluster registry lost a key".into(), rendered);
        };
        cs.buf.push_row(row)?;
        cs.bytes += bytes;
        cs.last_seq = Some(seq);
        self.window_bytes += bytes;
        let outcome = drive(
            self.query,
            self.search_plan.as_ref(),
            &self.search_options,
            &self.margins,
            cs,
            false,
        );
        self.window_bytes -= compact(&self.margins, cs);
        if outcome == StepOutcome::Tripped {
            // A tripped machine implies a recorded trip; synthesize one
            // instead of panicking if the latch is not visible.
            let trip = match self.run.as_ref() {
                Some(run) => run
                    .trip()
                    .unwrap_or_else(|| run.make_trip(crate::governor::TripReason::StepBudget)),
                None => Trip {
                    reason: crate::governor::TripReason::StepBudget,
                    steps: 0,
                    matches: 0,
                    elapsed: std::time::Duration::ZERO,
                },
            };
            self.trip = Some(trip.clone());
            return Err(StreamError::Governed {
                trip,
                partial: None,
            });
        }
        if let Some(cap) = self.options.max_window_bytes {
            if self.window_bytes > cap {
                self.relieve_pressure();
            }
        }
        // Periodically drop shared-memo entries the compacted windows can
        // no longer probe.  Soft state: over-pruning (another member's
        // window may lag behind this one's base) only costs cache misses.
        if self.shared.is_some() {
            self.feeds_since_prune += 1;
            if self.feeds_since_prune >= SHARED_PRUNE_INTERVAL {
                self.feeds_since_prune = 0;
                if let Some(shared) = &self.shared {
                    for (key, cs) in &self.clusters {
                        shared.prune_below(key, cs.base as u64);
                    }
                }
            }
        }
        Ok(())
    }

    fn reject(&mut self, reason: String, rendered: String) -> Result<(), StreamError> {
        if let Some(log) = &mut self.log {
            log.record(TraceEvent::Quarantine {
                i: self.records as u32,
            });
        }
        let tuple = BadTuple {
            record: self.records,
            reason,
            rendered,
        };
        match self.options.bad_tuple {
            BadTuplePolicy::Skip => {
                self.skipped += 1;
                Ok(())
            }
            BadTuplePolicy::Fail => Err(StreamError::BadTuple(tuple)),
            BadTuplePolicy::Quarantine { cap } => {
                if self.quarantine.len() >= cap {
                    Err(StreamError::QuarantineFull { cap, tuple })
                } else {
                    self.quarantine.push(tuple);
                    Ok(())
                }
            }
        }
    }

    /// Force-fail every in-flight attempt, flush pending matches against
    /// the current window, and compact — the backpressure relief valve.
    fn relieve_pressure(&mut self) {
        for cs in self.clusters.values_mut() {
            if !cs.pending.is_empty() {
                let cluster = Cluster::windowed(&cs.buf, Vec::new(), cs.base);
                let ctx = EvalCtx {
                    cluster: &cluster,
                    policy: self.search_options.policy,
                };
                for m in cs.pending.drain(..) {
                    let bindings = Bindings { spans: m.spans };
                    cs.rows
                        .push(eval_projection(&self.query.projection, &ctx, &bindings));
                }
            }
            let avail = cs.base + cs.buf.len();
            cs.machine.restart_at(avail);
            self.window_bytes -= compact(&self.margins, cs);
        }
        self.pressure_trips += 1;
        if let Some(log) = &mut self.log {
            log.record(TraceEvent::GovernorTrip {
                cause: TripCause::StreamPressure,
            });
        }
    }

    /// Capture the session's complete state as a [`SessionCheckpoint`].
    ///
    /// The checkpoint event is recorded into the stream log *before* the
    /// capture, so a resumed session's log matches the live session's.
    pub fn snapshot(&mut self) -> Result<SessionCheckpoint, StreamError> {
        if let Some(cause) = &self.poisoned {
            return Err(StreamError::Poisoned(cause.clone()));
        }
        #[cfg(feature = "failpoints")]
        if let Some(injected) = sqlts_relation::failpoints::hit("stream::checkpoint", self.records)
        {
            if injected == sqlts_relation::failpoints::Injected::InjectError {
                return Err(StreamError::Checkpoint(
                    "failpoint 'stream::checkpoint' injected error".into(),
                ));
            }
        }
        if let Some(log) = &mut self.log {
            log.record(TraceEvent::Checkpoint {
                tuples: self.records as u32,
            });
        }
        let clusters = self
            .clusters
            .iter()
            .map(|(key, cs)| ClusterCheckpoint {
                key: key.clone(),
                base: cs.base,
                rows: cs.buf.rows().map(<[Value]>::to_vec).collect(),
                last_seq: cs.last_seq.clone(),
                machine: cs.machine.clone(),
                counter_total: cs.counter.total(),
                recorder: cs.counter.recorder_snapshot(),
                pending: cs.pending.clone(),
                out_rows: cs.rows.clone(),
            })
            .collect();
        Ok(SessionCheckpoint {
            engine: self.options.exec.engine,
            pattern_len: self.query.elements.len(),
            records: self.records,
            skipped: self.skipped,
            pressure_trips: self.pressure_trips,
            quarantine: self.quarantine.clone(),
            log: self.log.clone(),
            clusters,
        })
    }

    /// Rebuild a session from a checkpoint, continuing bit-identically to
    /// the session that took it.  The governor and deadline start fresh:
    /// restored work was already metered by the run that checkpointed.
    pub fn resume(
        query: &'q CompiledQuery,
        options: StreamOptions,
        checkpoint: SessionCheckpoint,
    ) -> Result<Self, StreamError> {
        if checkpoint.engine != options.exec.engine {
            return Err(StreamError::Checkpoint(format!(
                "engine mismatch: checkpoint '{}' vs session '{}'",
                checkpoint.engine.name(),
                options.exec.engine.name()
            )));
        }
        if checkpoint.pattern_len != query.elements.len() {
            return Err(StreamError::Checkpoint(format!(
                "pattern length mismatch: checkpoint {} vs query {}",
                checkpoint.pattern_len,
                query.elements.len()
            )));
        }
        let mut session = StreamSession::new(query, options)?;
        session.records = checkpoint.records;
        session.skipped = checkpoint.skipped;
        session.pressure_trips = checkpoint.pressure_trips;
        session.quarantine = checkpoint.quarantine;
        if checkpoint.log.is_some() {
            session.log = checkpoint.log;
        }
        for cc in checkpoint.clusters {
            let mut buf = Table::new(query.schema.clone());
            let mut bytes = 0;
            for row in cc.rows {
                bytes += row_bytes(&row);
                buf.push_row(row)?;
            }
            // Same construction order as a fresh cluster: governed scope
            // first (initial refill before the recorder is attached), then
            // the recorder, then the restored totals — this keeps
            // `governor_flushes` and flush timing bit-identical.
            let mut counter = match &session.run {
                Some(run) => EvalCounter::governed(run.scope()),
                None => EvalCounter::new(),
            };
            if let Some(recorder) = cc.recorder {
                counter = counter.with_recorder(recorder);
            } else if session.options.exec.instrument.armed() {
                counter = counter.with_recorder(ClusterRecorder::new(
                    query.elements.len(),
                    session.options.exec.instrument.capacity(),
                ));
            }
            counter.restore_total(cc.counter_total);
            session.window_bytes += bytes;
            session.clusters.insert(
                cc.key,
                ClusterStream {
                    buf,
                    base: cc.base,
                    bytes,
                    last_seq: cc.last_seq,
                    machine: cc.machine,
                    counter,
                    pending: cc.pending,
                    rows: cc.out_rows,
                },
            );
        }
        Ok(session)
    }

    /// Close the stream: drive every machine to end-of-input, project the
    /// remaining matches, and assemble the merged [`QueryResult`] exactly
    /// like the batch executor's cluster-order merge.
    pub fn finish(mut self) -> Result<QueryResult, StreamError> {
        if let Some(cause) = self.poisoned {
            return Err(StreamError::Poisoned(cause));
        }
        let query = self.query;
        let mut out = Table::new(output_schema(query)?);
        let mut stats = SearchStats::default();
        let instrument = self.options.exec.instrument;
        let mut profile = instrument.armed().then(|| {
            Box::new(ExecutionProfile::new(
                self.options.exec.engine.name(),
                self.options.exec.threads.get(),
            ))
        });
        // Once the governor has tripped, machines are not driven further —
        // the streaming analogue of the batch executor skipping clusters
        // after a trip.  Pending matches are still projected: they were
        // found before the trip.
        let mut tripped = self.trip.is_some();
        let clusters = std::mem::take(&mut self.clusters);
        for (idx, (key, mut cs)) in clusters.into_iter().enumerate() {
            if !tripped {
                let outcome = drive(
                    query,
                    self.search_plan.as_ref(),
                    &self.search_options,
                    &self.margins,
                    &mut cs,
                    true,
                );
                if outcome == StepOutcome::Tripped {
                    tripped = true;
                }
            }
            if !cs.pending.is_empty() {
                let cluster = Cluster::windowed(&cs.buf, Vec::new(), cs.base);
                let ctx = EvalCtx {
                    cluster: &cluster,
                    policy: self.search_options.policy,
                };
                for m in cs.pending.drain(..) {
                    let bindings = Bindings { spans: m.spans };
                    cs.rows
                        .push(eval_projection(&query.projection, &ctx, &bindings));
                }
            }
            cs.counter.finish();
            let tuples = (cs.base + cs.buf.len()) as u64;
            stats.clusters += 1;
            stats.tuples += tuples;
            stats.predicate_tests += cs.counter.total();
            stats.steps += cs.counter.total();
            if cs.counter.armed() && cs.counter.tripped() {
                if let Some(trip) = self.run.as_ref().and_then(|r| r.trip()) {
                    cs.counter.emit(TraceEvent::GovernorTrip {
                        cause: trip.reason.trace_cause(),
                    });
                }
            }
            if let Some(profile) = profile.as_deref_mut() {
                if let Some(recorder) = std::mem::take(&mut cs.counter).into_recorder() {
                    let events_dropped = recorder.events.dropped();
                    profile.push_cluster(ClusterProfile {
                        index: idx,
                        key: render_key(&key),
                        tuples,
                        metrics: recorder.metrics,
                        events: recorder.events.into_events(),
                        events_dropped,
                    });
                }
            }
            for row in cs.rows {
                stats.matches += 1;
                out.push_row(row)?;
            }
        }
        if let Some(profile) = profile.as_deref_mut() {
            profile.phases.plan = self.plan_ns;
            profile.optimizer = Some(crate::explain::optimizer_report(query));
        }
        let result = QueryResult {
            table: out,
            stats,
            partial: Vec::new(),
            profile,
        };
        if let Some(run) = &self.run {
            if let Some(trip) = run.trip() {
                return Err(StreamError::Governed {
                    trip,
                    partial: Some(Box::new(result)),
                });
            }
        }
        Ok(result)
    }
}

/// Advance one cluster's machine as far as the buffered input allows and
/// project every pending match whose lookahead is satisfied.  A free
/// function so the caller can hold disjoint borrows of the session.
fn drive(
    query: &CompiledQuery,
    search_plan: Option<&SearchPlan>,
    search_options: &SearchOptions,
    margins: &Margins,
    cs: &mut ClusterStream,
    eof: bool,
) -> StepOutcome {
    let cluster = Cluster::windowed(&cs.buf, Vec::new(), cs.base);
    let input = StepInput {
        cluster: &cluster,
        eof,
        lookahead: margins.test_ahead,
    };
    let outcome = cs.machine.run(
        &query.elements,
        search_plan,
        &input,
        search_options,
        &cs.counter,
        None,
        &mut cs.pending,
    );
    let avail = cs.base + cs.buf.len();
    let ready = cs
        .pending
        .iter()
        .take_while(|m| eof || m.end() + margins.proj_ahead < avail)
        .count();
    if ready > 0 {
        let ctx = EvalCtx {
            cluster: &cluster,
            policy: search_options.policy,
        };
        for m in cs.pending.drain(..ready) {
            let bindings = Bindings { spans: m.spans };
            cs.rows
                .push(eval_projection(&query.projection, &ctx, &bindings));
        }
    }
    outcome
}

/// Drop the window prefix no evaluation can reach any more; returns the
/// estimated bytes freed.  The retention floor is the minimum of the
/// machine's window low and the oldest pending match start, each minus the
/// relevant lookbehind margin; both floors are monotone, so `base` only
/// ever moves forward.
fn compact(margins: &Margins, cs: &mut ClusterStream) -> usize {
    let machine_floor = cs.machine.window_low().saturating_sub(margins.test_behind);
    let pending_floor = cs.pending.first().map_or(usize::MAX, |m| {
        m.start().saturating_sub(margins.proj_behind)
    });
    let floor = machine_floor.min(pending_floor);
    let k = floor.saturating_sub(cs.base).min(cs.buf.len());
    if k == 0 {
        return 0;
    }
    let freed: usize = (0..k).map(|r| row_bytes(cs.buf.row(r))).sum();
    cs.buf.remove_prefix(k);
    cs.base += k;
    cs.bytes -= freed;
    freed
}

/// One cluster's captured state inside a [`SessionCheckpoint`].
#[derive(Clone, Debug)]
struct ClusterCheckpoint {
    key: Vec<Value>,
    base: usize,
    rows: Vec<Vec<Value>>,
    last_seq: Option<Vec<Value>>,
    machine: EngineMachine,
    counter_total: u64,
    recorder: Option<ClusterRecorder>,
    pending: Vec<MatchSpans>,
    out_rows: Vec<Vec<Value>>,
}

/// A complete, self-contained capture of a [`StreamSession`]'s state,
/// taken at a tuple boundary by [`StreamSession::snapshot`].
///
/// The versioned text form (`sqlts-checkpoint v1`, line-oriented,
/// space-separated tokens with percent-escaped strings) is produced by
/// [`SessionCheckpoint::to_text`] and parsed back by
/// [`SessionCheckpoint::from_text`]; `from_text(to_text(c))` round-trips
/// exactly.
#[derive(Clone, Debug)]
pub struct SessionCheckpoint {
    engine: EngineKind,
    pattern_len: usize,
    records: u64,
    skipped: u64,
    pressure_trips: u64,
    quarantine: Vec<BadTuple>,
    log: Option<RingBuffer>,
    clusters: Vec<ClusterCheckpoint>,
}

impl SessionCheckpoint {
    /// Input records covered by this checkpoint.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The engine the checkpointed session ran.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Serialize to the versioned line-based text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("sqlts-checkpoint v1\n");
        out.push_str(&format!("engine {}\n", self.engine.name()));
        out.push_str(&format!("pattern {}\n", self.pattern_len));
        out.push_str(&format!("records {}\n", self.records));
        out.push_str(&format!("skipped {}\n", self.skipped));
        out.push_str(&format!("pressure {}\n", self.pressure_trips));
        out.push_str(&format!("quarantine {}\n", self.quarantine.len()));
        for bad in &self.quarantine {
            out.push_str(&format!(
                "bad {} {} {}\n",
                bad.record,
                escape(&bad.reason),
                escape(&bad.rendered)
            ));
        }
        match &self.log {
            None => out.push_str("log none\n"),
            Some(rb) => write_ring(&mut out, "log", rb),
        }
        out.push_str(&format!("clusters {}\n", self.clusters.len()));
        for cc in &self.clusters {
            out.push_str(&format!("cluster {}", cc.key.len()));
            for v in &cc.key {
                out.push(' ');
                out.push_str(&write_value(v));
            }
            out.push('\n');
            out.push_str(&format!("base {}\n", cc.base));
            match &cc.last_seq {
                None => out.push_str("lastseq none\n"),
                Some(seq) => {
                    out.push_str(&format!("lastseq {}", seq.len()));
                    for v in seq {
                        out.push(' ');
                        out.push_str(&write_value(v));
                    }
                    out.push('\n');
                }
            }
            out.push_str(&format!("rows {}\n", cc.rows.len()));
            for row in &cc.rows {
                write_row(&mut out, row);
            }
            write_machine(&mut out, &cc.machine);
            out.push_str(&format!("counter {}\n", cc.counter_total));
            match &cc.recorder {
                None => out.push_str("recorder none\n"),
                Some(rec) => write_recorder(&mut out, rec),
            }
            out.push_str(&format!("pending {}\n", cc.pending.len()));
            for m in &cc.pending {
                out.push_str(&format!("match {}", m.spans.len()));
                for (a, b) in &m.spans {
                    out.push_str(&format!(" {a} {b}"));
                }
                out.push('\n');
            }
            out.push_str(&format!("out {}\n", cc.out_rows.len()));
            for row in &cc.out_rows {
                write_row(&mut out, row);
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parse the text format back into a checkpoint.
    pub fn from_text(text: &str) -> Result<SessionCheckpoint, StreamError> {
        let mut lines = CheckpointLines::new(text);
        lines.expect_literal("sqlts-checkpoint v1")?;
        let engine_name = lines.tagged("engine")?.to_string();
        let engine = engine_from_name(&engine_name)
            .ok_or_else(|| codec_err(format!("unknown engine '{engine_name}'")))?;
        let pattern_len = lines.tagged_parse::<usize>("pattern")?;
        let records = lines.tagged_parse::<u64>("records")?;
        let skipped = lines.tagged_parse::<u64>("skipped")?;
        let pressure_trips = lines.tagged_parse::<u64>("pressure")?;
        let n_bad = lines.tagged_parse::<usize>("quarantine")?;
        let mut quarantine = Vec::with_capacity(parse_cap(n_bad));
        for _ in 0..n_bad {
            let rest = lines.tagged("bad")?;
            let mut toks = rest.split(' ');
            let record = parse_tok::<u64>(toks.next(), "bad record")?;
            let reason = unescape(toks.next().ok_or_else(|| codec_err("bad reason missing"))?)?;
            let rendered = unescape(
                toks.next()
                    .ok_or_else(|| codec_err("bad rendered missing"))?,
            )?;
            quarantine.push(BadTuple {
                record,
                reason,
                rendered,
            });
        }
        let log = parse_ring(&mut lines, "log")?;
        let n_clusters = lines.tagged_parse::<usize>("clusters")?;
        let mut clusters = Vec::with_capacity(parse_cap(n_clusters));
        for _ in 0..n_clusters {
            let rest = lines.tagged("cluster")?;
            let mut toks = rest.split(' ');
            let key_len = parse_tok::<usize>(toks.next(), "cluster key length")?;
            let mut key = Vec::with_capacity(parse_cap(key_len));
            for _ in 0..key_len {
                key.push(parse_value(
                    toks.next()
                        .ok_or_else(|| codec_err("cluster key value missing"))?,
                )?);
            }
            let base = lines.tagged_parse::<usize>("base")?;
            let rest = lines.tagged("lastseq")?;
            let last_seq = if rest == "none" {
                None
            } else {
                let mut toks = rest.split(' ');
                let n = parse_tok::<usize>(toks.next(), "lastseq length")?;
                let mut seq = Vec::with_capacity(parse_cap(n));
                for _ in 0..n {
                    seq.push(parse_value(
                        toks.next()
                            .ok_or_else(|| codec_err("lastseq value missing"))?,
                    )?);
                }
                Some(seq)
            };
            let n_rows = lines.tagged_parse::<usize>("rows")?;
            let mut rows = Vec::with_capacity(parse_cap(n_rows));
            for _ in 0..n_rows {
                rows.push(parse_row(lines.tagged("row")?)?);
            }
            let machine = parse_machine(&mut lines)?;
            let counter_total = lines.tagged_parse::<u64>("counter")?;
            let recorder = parse_recorder(&mut lines)?;
            let n_pending = lines.tagged_parse::<usize>("pending")?;
            let mut pending = Vec::with_capacity(parse_cap(n_pending));
            for _ in 0..n_pending {
                let rest = lines.tagged("match")?;
                let mut toks = rest.split(' ');
                let n = parse_tok::<usize>(toks.next(), "match span count")?;
                let mut spans = Vec::with_capacity(parse_cap(n));
                for _ in 0..n {
                    let a = parse_tok::<usize>(toks.next(), "match span start")?;
                    let b = parse_tok::<usize>(toks.next(), "match span end")?;
                    spans.push((a, b));
                }
                pending.push(MatchSpans { spans });
            }
            let n_out = lines.tagged_parse::<usize>("out")?;
            let mut out_rows = Vec::with_capacity(parse_cap(n_out));
            for _ in 0..n_out {
                out_rows.push(parse_row(lines.tagged("row")?)?);
            }
            clusters.push(ClusterCheckpoint {
                key,
                base,
                rows,
                last_seq,
                machine,
                counter_total,
                recorder,
                pending,
                out_rows,
            });
        }
        lines.expect_literal("end")?;
        lines.expect_eof()?;
        Ok(SessionCheckpoint {
            engine,
            pattern_len,
            records,
            skipped,
            pressure_trips,
            quarantine,
            log,
            clusters,
        })
    }
}

fn engine_from_name(name: &str) -> Option<EngineKind> {
    Some(match name {
        "naive" => EngineKind::Naive,
        "backtrack" => EngineKind::NaiveBacktrack,
        "ops" => EngineKind::Ops,
        "shift-only" => EngineKind::OpsShiftOnly,
        _ => return None,
    })
}

fn codec_err(why: impl fmt::Display) -> StreamError {
    StreamError::Checkpoint(why.to_string())
}

/// Clamp a parsed element count before `Vec::with_capacity`: a corrupted
/// or adversarial count in checkpoint text must surface as a parse error
/// on the missing elements, not as a capacity-overflow panic or an absurd
/// up-front allocation.  Parsing still pushes every element it actually
/// reads, so legitimate larger sections simply grow past the hint.
fn parse_cap(n: usize) -> usize {
    n.min(4096)
}

fn parse_tok<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, StreamError> {
    tok.ok_or_else(|| codec_err(format!("{what} missing")))?
        .parse::<T>()
        .map_err(|_| codec_err(format!("{what} unparsable")))
}

/// Percent-escape the bytes that would break the space/line-delimited
/// format; everything else (including multi-byte UTF-8) passes through.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for b in s.bytes() {
        match b {
            b'%' | b' ' | b'\n' | b'\r' => out.push_str(&format!("%{b:02x}")),
            _ => out.push(b as char),
        }
    }
    // An empty token would vanish between separators; mark it explicitly.
    if out.is_empty() {
        out.push_str("%00");
    }
    out
}

fn unescape(s: &str) -> Result<String, StreamError> {
    let mut out = Vec::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| codec_err("truncated escape"))?;
            let hex = std::str::from_utf8(hex).map_err(|_| codec_err("invalid escape"))?;
            let b = u8::from_str_radix(hex, 16).map_err(|_| codec_err("invalid escape"))?;
            if b != 0 {
                out.push(b);
            }
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| codec_err("escaped string is not UTF-8"))
}

/// Encode one value as a single space-free token:
/// `n` (null), `i:<int>`, `f:<f64 bits as hex>`, `d:<day number>`,
/// `s:<escaped string>`.  Floats round-trip exactly via their bits.
fn write_value(v: &Value) -> String {
    match v {
        Value::Null => "n".to_string(),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{:016x}", f.to_bits()),
        Value::Date(d) => format!("d:{}", d.days()),
        Value::Str(s) => format!("s:{}", escape(s)),
    }
}

fn parse_value(tok: &str) -> Result<Value, StreamError> {
    if tok == "n" {
        return Ok(Value::Null);
    }
    let (tag, body) = tok
        .split_once(':')
        .ok_or_else(|| codec_err(format!("malformed value token '{tok}'")))?;
    Ok(match tag {
        "i" => Value::Int(
            body.parse()
                .map_err(|_| codec_err(format!("bad int '{body}'")))?,
        ),
        "f" => Value::Float(f64::from_bits(
            u64::from_str_radix(body, 16)
                .map_err(|_| codec_err(format!("bad float bits '{body}'")))?,
        )),
        "d" => Value::Date(Date::from_days(
            body.parse()
                .map_err(|_| codec_err(format!("bad date '{body}'")))?,
        )),
        "s" => Value::Str(unescape(body)?),
        _ => return Err(codec_err(format!("unknown value tag '{tag}'"))),
    })
}

fn write_row(out: &mut String, row: &[Value]) {
    out.push_str("row");
    for v in row {
        out.push(' ');
        out.push_str(&write_value(v));
    }
    out.push('\n');
}

fn parse_row(rest: &str) -> Result<Vec<Value>, StreamError> {
    if rest.is_empty() {
        return Ok(Vec::new());
    }
    rest.split(' ').map(parse_value).collect()
}

fn write_machine(out: &mut String, machine: &EngineMachine) {
    use crate::engine::{BtFrame, BtPc};
    match machine {
        EngineMachine::Naive(m) => {
            out.push_str(&format!(
                "machine naive {} {} {} {} {}\n",
                m.start,
                m.i,
                m.e,
                m.span_start,
                u8::from(m.in_star)
            ));
            write_spans(out, &m.bindings.spans);
        }
        EngineMachine::Backtrack(m) => {
            out.push_str(&format!("machine backtrack {}\n", m.start));
            match m.pc {
                BtPc::Idle => out.push_str("pc idle\n"),
                BtPc::Call { j, i } => out.push_str(&format!("pc call {j} {i}\n")),
                BtPc::Ret { ok } => out.push_str(&format!("pc ret {}\n", u8::from(ok))),
                BtPc::StarExtend => out.push_str("pc starext\n"),
            }
            out.push_str(&format!("frames {}", m.frames.len()));
            for frame in &m.frames {
                match frame {
                    BtFrame::NonStar => out.push_str(" ns"),
                    BtFrame::Star { i, end } => out.push_str(&format!(" st {i} {end}")),
                }
            }
            out.push('\n');
            write_spans(out, &m.bindings.spans);
        }
        EngineMachine::Ops(m) => {
            out.push_str(&format!(
                "machine ops {} {} {} {}\n",
                m.start,
                m.i,
                m.j,
                u8::from(m.finished)
            ));
            out.push_str(&format!("counts {}", m.counts.len()));
            for c in &m.counts {
                out.push_str(&format!(" {c}"));
            }
            out.push('\n');
            write_spans(out, &m.bindings.spans);
        }
    }
}

fn write_spans(out: &mut String, spans: &[(usize, usize)]) {
    out.push_str(&format!("spans {}", spans.len()));
    for (a, b) in spans {
        out.push_str(&format!(" {a} {b}"));
    }
    out.push('\n');
}

fn parse_spans(lines: &mut CheckpointLines<'_>) -> Result<Vec<(usize, usize)>, StreamError> {
    let rest = lines.tagged("spans")?;
    let mut toks = rest.split(' ');
    let n = parse_tok::<usize>(toks.next(), "span count")?;
    let mut spans = Vec::with_capacity(parse_cap(n));
    for _ in 0..n {
        let a = parse_tok::<usize>(toks.next(), "span start")?;
        let b = parse_tok::<usize>(toks.next(), "span end")?;
        spans.push((a, b));
    }
    Ok(spans)
}

fn parse_machine(lines: &mut CheckpointLines<'_>) -> Result<EngineMachine, StreamError> {
    use crate::engine::{BacktrackMachine, BtFrame, BtPc, NaiveMachine, OpsMachine};
    let rest = lines.tagged("machine")?;
    let mut toks = rest.split(' ');
    let kind = toks
        .next()
        .ok_or_else(|| codec_err("machine kind missing"))?;
    match kind {
        "naive" => {
            let start = parse_tok::<usize>(toks.next(), "naive start")?;
            let i = parse_tok::<usize>(toks.next(), "naive i")?;
            let e = parse_tok::<usize>(toks.next(), "naive e")?;
            let span_start = parse_tok::<usize>(toks.next(), "naive span_start")?;
            let in_star = parse_tok::<u8>(toks.next(), "naive in_star")? != 0;
            let spans = parse_spans(lines)?;
            let mut m = NaiveMachine::new();
            m.start = start;
            m.i = i;
            m.e = e;
            m.span_start = span_start;
            m.in_star = in_star;
            m.bindings.spans = spans;
            Ok(EngineMachine::Naive(m))
        }
        "backtrack" => {
            let start = parse_tok::<usize>(toks.next(), "backtrack start")?;
            let rest = lines.tagged("pc")?;
            let mut toks = rest.split(' ');
            let pc = match toks.next().ok_or_else(|| codec_err("pc kind missing"))? {
                "idle" => BtPc::Idle,
                "call" => BtPc::Call {
                    j: parse_tok::<usize>(toks.next(), "pc call j")?,
                    i: parse_tok::<usize>(toks.next(), "pc call i")?,
                },
                "ret" => BtPc::Ret {
                    ok: parse_tok::<u8>(toks.next(), "pc ret ok")? != 0,
                },
                "starext" => BtPc::StarExtend,
                other => return Err(codec_err(format!("unknown pc '{other}'"))),
            };
            let rest = lines.tagged("frames")?;
            let mut toks = rest.split(' ');
            let n = parse_tok::<usize>(toks.next(), "frame count")?;
            let mut frames = Vec::with_capacity(parse_cap(n));
            for _ in 0..n {
                match toks.next().ok_or_else(|| codec_err("frame missing"))? {
                    "ns" => frames.push(BtFrame::NonStar),
                    "st" => frames.push(BtFrame::Star {
                        i: parse_tok::<usize>(toks.next(), "frame i")?,
                        end: parse_tok::<usize>(toks.next(), "frame end")?,
                    }),
                    other => return Err(codec_err(format!("unknown frame '{other}'"))),
                }
            }
            let spans = parse_spans(lines)?;
            let mut m = BacktrackMachine::new();
            m.start = start;
            m.pc = pc;
            m.frames = frames;
            m.bindings.spans = spans;
            Ok(EngineMachine::Backtrack(m))
        }
        "ops" => {
            let start = parse_tok::<usize>(toks.next(), "ops start")?;
            let i = parse_tok::<usize>(toks.next(), "ops i")?;
            let j = parse_tok::<usize>(toks.next(), "ops j")?;
            let finished = parse_tok::<u8>(toks.next(), "ops finished")? != 0;
            let rest = lines.tagged("counts")?;
            let mut toks = rest.split(' ');
            let n = parse_tok::<usize>(toks.next(), "count length")?;
            if n == 0 {
                return Err(codec_err("ops counts must be non-empty"));
            }
            let mut counts = Vec::with_capacity(parse_cap(n));
            for _ in 0..n {
                counts.push(parse_tok::<usize>(toks.next(), "count value")?);
            }
            let spans = parse_spans(lines)?;
            let mut m = OpsMachine::new(n - 1);
            m.start = start;
            m.i = i;
            m.j = j;
            m.finished = finished;
            m.counts = counts;
            m.bindings.spans = spans;
            Ok(EngineMachine::Ops(m))
        }
        other => Err(codec_err(format!("unknown machine kind '{other}'"))),
    }
}

fn write_event(out: &mut String, event: &TraceEvent) {
    match event {
        TraceEvent::Advance { i, j } => out.push_str(&format!("ev a {i} {j}\n")),
        TraceEvent::Fail { i, j } => out.push_str(&format!("ev f {i} {j}\n")),
        TraceEvent::Shift { j, dist } => out.push_str(&format!("ev s {j} {dist}\n")),
        TraceEvent::Next { j, k } => out.push_str(&format!("ev n {j} {k}\n")),
        TraceEvent::MatchEmitted { start, end } => out.push_str(&format!("ev m {start} {end}\n")),
        TraceEvent::GovernorTrip { cause } => out.push_str(&format!("ev g {}\n", cause.as_str())),
        TraceEvent::Feed { i } => out.push_str(&format!("ev fd {i}\n")),
        TraceEvent::Quarantine { i } => out.push_str(&format!("ev q {i}\n")),
        TraceEvent::Checkpoint { tuples } => out.push_str(&format!("ev c {tuples}\n")),
    }
}

fn parse_event(rest: &str) -> Result<TraceEvent, StreamError> {
    let mut toks = rest.split(' ');
    let kind = toks.next().ok_or_else(|| codec_err("event kind missing"))?;
    Ok(match kind {
        "a" => TraceEvent::Advance {
            i: parse_tok::<u32>(toks.next(), "event i")?,
            j: parse_tok::<u32>(toks.next(), "event j")?,
        },
        "f" => TraceEvent::Fail {
            i: parse_tok::<u32>(toks.next(), "event i")?,
            j: parse_tok::<u32>(toks.next(), "event j")?,
        },
        "s" => TraceEvent::Shift {
            j: parse_tok::<u32>(toks.next(), "event j")?,
            dist: parse_tok::<u32>(toks.next(), "event dist")?,
        },
        "n" => TraceEvent::Next {
            j: parse_tok::<u32>(toks.next(), "event j")?,
            k: parse_tok::<u32>(toks.next(), "event k")?,
        },
        "m" => TraceEvent::MatchEmitted {
            start: parse_tok::<u32>(toks.next(), "event start")?,
            end: parse_tok::<u32>(toks.next(), "event end")?,
        },
        "g" => TraceEvent::GovernorTrip {
            cause: TripCause::parse(toks.next().ok_or_else(|| codec_err("trip cause missing"))?)
                .ok_or_else(|| codec_err("unknown trip cause"))?,
        },
        "fd" => TraceEvent::Feed {
            i: parse_tok::<u32>(toks.next(), "event i")?,
        },
        "q" => TraceEvent::Quarantine {
            i: parse_tok::<u32>(toks.next(), "event i")?,
        },
        "c" => TraceEvent::Checkpoint {
            tuples: parse_tok::<u32>(toks.next(), "event tuples")?,
        },
        other => return Err(codec_err(format!("unknown event kind '{other}'"))),
    })
}

fn write_ring(out: &mut String, tag: &str, rb: &RingBuffer) {
    out.push_str(&format!(
        "{tag} {} {} {}\n",
        rb.capacity(),
        rb.dropped(),
        rb.len()
    ));
    for event in rb.events() {
        write_event(out, event);
    }
}

fn parse_ring(
    lines: &mut CheckpointLines<'_>,
    tag: &str,
) -> Result<Option<RingBuffer>, StreamError> {
    let rest = lines.tagged(tag)?;
    if rest == "none" {
        return Ok(None);
    }
    let mut toks = rest.split(' ');
    let capacity = parse_tok::<usize>(toks.next(), "ring capacity")?;
    let dropped = parse_tok::<u64>(toks.next(), "ring dropped")?;
    let n = parse_tok::<usize>(toks.next(), "ring length")?;
    let mut events = Vec::with_capacity(parse_cap(n));
    for _ in 0..n {
        events.push(parse_event(lines.tagged("ev")?)?);
    }
    Ok(Some(RingBuffer::from_parts(capacity, events, dropped)))
}

fn write_recorder(out: &mut String, rec: &ClusterRecorder) {
    out.push_str(&format!(
        "recorder {}",
        rec.metrics.tests_per_position.len()
    ));
    for t in &rec.metrics.tests_per_position {
        out.push_str(&format!(" {t}"));
    }
    out.push('\n');
    write_hist(out, "shifts", &rec.metrics.shifts);
    write_hist(out, "backs", &rec.metrics.backtracks);
    out.push_str(&format!("matches {}\n", rec.metrics.matches));
    out.push_str(&format!("flushes {}\n", rec.metrics.governor_flushes));
    match rec.metrics.trip {
        None => out.push_str("trip none\n"),
        Some(cause) => out.push_str(&format!("trip {}\n", cause.as_str())),
    }
    out.push_str(&format!("lasti {}\n", rec.last_i()));
    write_ring(out, "events", &rec.events);
}

fn parse_recorder(lines: &mut CheckpointLines<'_>) -> Result<Option<ClusterRecorder>, StreamError> {
    let rest = lines.tagged("recorder")?;
    if rest == "none" {
        return Ok(None);
    }
    let mut toks = rest.split(' ');
    let n = parse_tok::<usize>(toks.next(), "tests length")?;
    let mut tests_per_position = Vec::with_capacity(parse_cap(n));
    for _ in 0..n {
        tests_per_position.push(parse_tok::<u64>(toks.next(), "tests value")?);
    }
    let shifts = parse_hist(lines, "shifts")?;
    let backtracks = parse_hist(lines, "backs")?;
    let matches = lines.tagged_parse::<u64>("matches")?;
    let governor_flushes = lines.tagged_parse::<u64>("flushes")?;
    let rest = lines.tagged("trip")?;
    let trip = if rest == "none" {
        None
    } else {
        Some(TripCause::parse(rest).ok_or_else(|| codec_err("unknown trip cause"))?)
    };
    let last_i = lines.tagged_parse::<u32>("lasti")?;
    let events =
        parse_ring(lines, "events")?.ok_or_else(|| codec_err("recorder events must be present"))?;
    let metrics = ClusterMetrics {
        tests_per_position,
        shifts,
        backtracks,
        matches,
        governor_flushes,
        trip,
    };
    Ok(Some(ClusterRecorder::from_parts(metrics, events, last_i)))
}

fn write_hist(out: &mut String, tag: &str, hist: &BoundedHistogram) {
    out.push_str(tag);
    for b in hist.raw_buckets() {
        out.push_str(&format!(" {b}"));
    }
    out.push_str(&format!(
        " {} {} {}\n",
        hist.count(),
        hist.sum(),
        hist.max()
    ));
}

fn parse_hist(lines: &mut CheckpointLines<'_>, tag: &str) -> Result<BoundedHistogram, StreamError> {
    let rest = lines.tagged(tag)?;
    let mut toks = rest.split(' ');
    let mut buckets = [0u64; HIST_BUCKETS];
    for bucket in &mut buckets {
        *bucket = parse_tok::<u64>(toks.next(), "histogram bucket")?;
    }
    let count = parse_tok::<u64>(toks.next(), "histogram count")?;
    let sum = parse_tok::<u64>(toks.next(), "histogram sum")?;
    let max = parse_tok::<u64>(toks.next(), "histogram max")?;
    Ok(BoundedHistogram::from_parts(buckets, count, sum, max))
}

/// A cursor over the checkpoint's lines with error positions.
struct CheckpointLines<'a> {
    iter: std::str::Lines<'a>,
    lineno: usize,
}

impl<'a> CheckpointLines<'a> {
    fn new(text: &'a str) -> CheckpointLines<'a> {
        CheckpointLines {
            iter: text.lines(),
            lineno: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str, StreamError> {
        self.lineno += 1;
        self.iter.next().ok_or_else(|| {
            codec_err(format!(
                "unexpected end of checkpoint at line {}",
                self.lineno
            ))
        })
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), StreamError> {
        let line = self.next()?;
        if line != literal {
            return Err(codec_err(format!(
                "line {}: expected '{literal}', found '{line}'",
                self.lineno
            )));
        }
        Ok(())
    }

    /// The rest of a line after a required leading tag (empty string when
    /// the line is exactly the tag).
    fn tagged(&mut self, tag: &str) -> Result<&'a str, StreamError> {
        let line = self.next()?;
        if line == tag {
            return Ok("");
        }
        line.strip_prefix(tag)
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or_else(|| {
                codec_err(format!(
                    "line {}: expected '{tag} …', found '{line}'",
                    self.lineno
                ))
            })
    }

    /// Require that nothing but blank lines follows — trailing garbage
    /// after the `end` marker means the text is not a checkpoint this
    /// version wrote, and silently ignoring it would mask corruption.
    fn expect_eof(&mut self) -> Result<(), StreamError> {
        for line in self.iter.by_ref() {
            self.lineno += 1;
            if !line.trim().is_empty() {
                return Err(codec_err(format!(
                    "line {}: trailing content after 'end': '{line}'",
                    self.lineno
                )));
            }
        }
        Ok(())
    }

    fn tagged_parse<T: std::str::FromStr>(&mut self, tag: &str) -> Result<T, StreamError> {
        let rest = self.tagged(tag)?;
        rest.parse::<T>()
            .map_err(|_| codec_err(format!("line {}: bad '{tag}' value '{rest}'", self.lineno)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute, ExecError, Instrument};
    use crate::governor::Governor;
    use sqlts_lang::{compile, CompileOptions};
    use sqlts_relation::{ColumnType, Schema};
    use std::num::NonZeroUsize;

    fn quote_schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("day", ColumnType::Int),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    const QUERY: &str = "SELECT X.name, Z.price AS peak, Z.day AS day FROM quote \
                         CLUSTER BY name SEQUENCE BY day AS (X, *Y, Z) \
                         WHERE Y.price > Y.previous.price AND Z.price < Z.previous.price";

    fn compiled(src: &str) -> CompiledQuery {
        compile(src, &quote_schema(), &CompileOptions::default()).unwrap()
    }

    /// A deterministic two-cluster zig-zag workload.
    fn workload() -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for (name, phase) in [("AAA", 0u64), ("BBB", 3u64)] {
            for day in 0..40u64 {
                let wave = ((day + phase) % 7) as f64;
                rows.push(vec![
                    Value::Str(name.to_string()),
                    Value::Int(day as i64),
                    Value::Float(100.0 + 3.0 * wave - 0.1 * day as f64),
                ]);
            }
        }
        // Interleave the clusters to exercise per-cluster windows.
        let mid = rows.len() / 2;
        let (a, b) = rows.split_at(mid);
        let mut interleaved = Vec::new();
        for (x, y) in a.iter().zip(b) {
            interleaved.push(x.clone());
            interleaved.push(y.clone());
        }
        interleaved
    }

    fn batch_table(rows: &[Vec<Value>]) -> Table {
        let mut t = Table::new(quote_schema());
        for row in rows {
            t.push_row(row.clone()).unwrap();
        }
        t
    }

    fn all_engines() -> [EngineKind; 4] {
        [
            EngineKind::Naive,
            EngineKind::NaiveBacktrack,
            EngineKind::Ops,
            EngineKind::OpsShiftOnly,
        ]
    }

    fn stream_opts(engine: EngineKind) -> StreamOptions {
        StreamOptions {
            exec: ExecOptions {
                engine,
                instrument: Instrument::tracing(),
                ..ExecOptions::default()
            },
            ..StreamOptions::default()
        }
    }

    fn table_rows(t: &Table) -> Vec<Vec<Value>> {
        t.rows().map(<[Value]>::to_vec).collect()
    }

    #[test]
    fn margins_cover_previous_and_next() {
        // `next` is only legal in SELECT (the binder rejects it in WHERE),
        // so predicate margins only ever look backwards; the projection
        // can reach one tuple ahead.
        let q = compiled(
            "SELECT X.price AS p, Y.next.price AS nx FROM quote \
             CLUSTER BY name SEQUENCE BY day AS (X, Y) \
             WHERE X.price > X.previous.price AND Y.price < Y.previous.price",
        );
        let m = margins_of(&q);
        assert_eq!(m.test_ahead, 0);
        assert_eq!(m.test_behind, 1);
        assert_eq!(m.proj_ahead, 1);
        assert_eq!(m.proj_behind, 0);
    }

    #[test]
    fn streamed_equals_batch_for_every_engine() {
        let query = compiled(QUERY);
        let rows = workload();
        let table = batch_table(&rows);
        for engine in all_engines() {
            let opts = stream_opts(engine);
            let batch = execute(&query, &table, &opts.exec).unwrap();
            let mut session = StreamSession::new(&query, opts).unwrap();
            for row in &rows {
                session.feed(row.clone()).unwrap();
            }
            let streamed = session.finish().unwrap();
            assert_eq!(
                table_rows(&streamed.table),
                table_rows(&batch.table),
                "{engine:?} rows"
            );
            assert_eq!(streamed.stats, batch.stats, "{engine:?} stats");
            let (sp, bp) = (streamed.profile.unwrap(), batch.profile.unwrap());
            assert_eq!(sp.clusters, bp.clusters, "{engine:?} cluster profiles");
            assert_eq!(sp.totals, bp.totals, "{engine:?} profile totals");
        }
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let query = compiled(QUERY);
        let rows = workload();
        let table = batch_table(&rows);
        for engine in [EngineKind::Ops, EngineKind::Naive] {
            let batch = execute(&query, &table, &stream_opts(engine).exec).unwrap();
            for split in [1usize, 7, rows.len() / 2, rows.len() - 1] {
                let mut first = StreamSession::new(&query, stream_opts(engine)).unwrap();
                for row in &rows[..split] {
                    first.feed(row.clone()).unwrap();
                }
                let text = first.snapshot().unwrap().to_text();
                drop(first);
                let checkpoint = SessionCheckpoint::from_text(&text).unwrap();
                let mut second =
                    StreamSession::resume(&query, stream_opts(engine), checkpoint).unwrap();
                assert_eq!(second.records(), split as u64);
                for row in &rows[split..] {
                    second.feed(row.clone()).unwrap();
                }
                let resumed = second.finish().unwrap();
                assert_eq!(
                    table_rows(&resumed.table),
                    table_rows(&batch.table),
                    "{engine:?} split {split} rows"
                );
                assert_eq!(resumed.stats, batch.stats, "{engine:?} split {split} stats");
                let (rp, bp) = (resumed.profile.unwrap(), batch.profile.clone().unwrap());
                assert_eq!(rp.clusters, bp.clusters, "{engine:?} split {split} profile");
            }
        }
    }

    #[test]
    fn checkpoint_text_round_trips() {
        let query = compiled(QUERY);
        let rows = workload();
        let mut opts = stream_opts(EngineKind::Ops);
        opts.log_capacity = 32;
        opts.bad_tuple = BadTuplePolicy::Quarantine { cap: 4 };
        let mut session = StreamSession::new(&query, opts).unwrap();
        for row in &rows[..17] {
            session.feed(row.clone()).unwrap();
        }
        // Park something in quarantine so that section round-trips too.
        session
            .quarantine_external("synthetic, with spaces".into(), "a,b c%d".into())
            .unwrap();
        let checkpoint = session.snapshot().unwrap();
        let text = checkpoint.to_text();
        let parsed = SessionCheckpoint::from_text(&text).unwrap();
        assert_eq!(parsed.to_text(), text, "codec must be a fixed point");
    }

    #[test]
    fn bad_tuple_policies() {
        let query = compiled(QUERY);
        let good = vec![Value::Str("AAA".into()), Value::Int(0), Value::Float(100.0)];
        let wrong_arity = vec![Value::Str("AAA".into())];
        // Fail (the default) surfaces the error.
        let mut fail = StreamSession::new(&query, stream_opts(EngineKind::Ops)).unwrap();
        fail.feed(good.clone()).unwrap();
        match fail.feed(wrong_arity.clone()) {
            Err(StreamError::BadTuple(bad)) => {
                assert_eq!(bad.record, 2);
                assert_eq!(bad.rendered, "AAA");
            }
            other => panic!("expected BadTuple, got {other:?}"),
        }
        // Skip counts and continues.
        let mut opts = stream_opts(EngineKind::Ops);
        opts.bad_tuple = BadTuplePolicy::Skip;
        let mut skip = StreamSession::new(&query, opts).unwrap();
        skip.feed(good.clone()).unwrap();
        skip.feed(wrong_arity.clone()).unwrap();
        assert_eq!(skip.skipped(), 1);
        assert_eq!(skip.records(), 2);
        // Quarantine parks up to the cap, then refuses.
        let mut opts = stream_opts(EngineKind::Ops);
        opts.bad_tuple = BadTuplePolicy::Quarantine { cap: 1 };
        let mut quarantine = StreamSession::new(&query, opts).unwrap();
        quarantine.feed(wrong_arity.clone()).unwrap();
        assert_eq!(quarantine.quarantine().len(), 1);
        match quarantine.feed(wrong_arity) {
            Err(StreamError::QuarantineFull { cap: 1, tuple }) => assert_eq!(tuple.record, 2),
            other => panic!("expected QuarantineFull, got {other:?}"),
        }
    }

    #[test]
    fn out_of_order_sequence_key_is_rejected() {
        let query = compiled(QUERY);
        let mut session = StreamSession::new(&query, stream_opts(EngineKind::Ops)).unwrap();
        let row = |day: i64| {
            vec![
                Value::Str("AAA".into()),
                Value::Int(day),
                Value::Float(100.0),
            ]
        };
        session.feed(row(5)).unwrap();
        match session.feed(row(3)) {
            Err(StreamError::BadTuple(bad)) => {
                assert!(bad.reason.contains("out-of-order"), "{}", bad.reason)
            }
            other => panic!("expected BadTuple, got {other:?}"),
        }
        // Order is per cluster: another cluster may start anywhere.
        session
            .feed(vec![
                Value::Str("BBB".into()),
                Value::Int(0),
                Value::Float(100.0),
            ])
            .unwrap();
    }

    #[test]
    fn backpressure_bounds_the_window_and_logs_a_trip() {
        let query = compiled(QUERY);
        let rows = workload();
        let mut opts = stream_opts(EngineKind::Ops);
        opts.max_window_bytes = Some(600);
        opts.log_capacity = 256;
        let mut session = StreamSession::new(&query, opts).unwrap();
        for row in &rows {
            session.feed(row.clone()).unwrap();
            assert!(
                session.window_bytes() <= 600 + 2 * row_bytes(row),
                "window stays near the watermark"
            );
        }
        assert!(session.pressure_trips() > 0, "pressure must have tripped");
        let pressure_events = session
            .stream_log()
            .unwrap()
            .events()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::GovernorTrip {
                        cause: TripCause::StreamPressure
                    }
                )
            })
            .count();
        assert_eq!(pressure_events as u64, session.pressure_trips());
        // Relief is sound: already-found matches were kept and the session
        // still finishes cleanly.
        let result = session.finish().unwrap();
        let unbounded = execute(
            &query,
            &batch_table(&rows),
            &stream_opts(EngineKind::Ops).exec,
        )
        .unwrap();
        assert!(result.stats.matches <= unbounded.stats.matches);
    }

    #[test]
    fn reverse_direction_is_unsupported() {
        let query = compiled(QUERY);
        let mut opts = stream_opts(EngineKind::Ops);
        opts.exec.direction = DirectionChoice::Reverse;
        match StreamSession::new(&query, opts) {
            Err(StreamError::Unsupported(_)) => {}
            other => panic!("expected Unsupported, got {:?}", other.err()),
        }
    }

    #[test]
    fn governed_session_trips_and_finish_carries_partial() {
        let query = compiled(QUERY);
        let rows = workload();
        let mut opts = stream_opts(EngineKind::Ops);
        opts.exec.governor = Governor::unlimited().with_max_steps(40);
        let mut session = StreamSession::new(&query, opts).unwrap();
        let mut governed = false;
        for row in &rows {
            match session.feed(row.clone()) {
                Ok(()) => {}
                Err(StreamError::Governed { .. }) => {
                    governed = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(governed, "a 40-step budget must trip on this workload");
        assert!(session.tripped());
        // A tripped session can still checkpoint…
        let checkpoint = session.snapshot().unwrap();
        assert!(checkpoint.records() > 0);
        // …and finish() reports the trip with the partial result attached.
        match session.finish() {
            Err(StreamError::Governed { partial, .. }) => {
                assert!(partial.is_some());
            }
            other => panic!("expected Governed from finish, got {:?}", other.err()),
        }
        // Resuming from the checkpoint with a fresh (unlimited) governor
        // completes the stream.
        let resumed = StreamSession::resume(&query, stream_opts(EngineKind::Ops), checkpoint);
        assert!(resumed.is_ok());
    }

    #[test]
    fn stalled_session_trips_deadline_via_poll() {
        use crate::governor::TripReason;
        use std::time::Duration;
        // Regression (PR 5 note): the wall-clock deadline used to be
        // observed only at feed boundaries, so a tenant that stopped
        // feeding never tripped and never released its budget.  A stalled
        // session must now trip from `poll_deadline` alone.
        let query = compiled(QUERY);
        let mut opts = stream_opts(EngineKind::Ops);
        opts.exec.governor = Governor::unlimited().with_timeout(Duration::from_millis(5));
        let mut session = StreamSession::new(&query, opts).unwrap();
        session
            .feed(vec![
                Value::Str("AAA".into()),
                Value::Int(0),
                Value::Float(100.0),
            ])
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        // No further feed: the idle poll alone must observe the deadline.
        match session.poll_deadline() {
            Err(StreamError::Governed { trip, partial }) => {
                assert_eq!(trip.reason, TripReason::Deadline);
                assert!(partial.is_none());
            }
            other => panic!("expected Governed from poll_deadline, got {other:?}"),
        }
        assert!(session.tripped());
        // The trip is latched: a later feed reports the same verdict.
        match session.feed(vec![
            Value::Str("AAA".into()),
            Value::Int(1),
            Value::Float(100.0),
        ]) {
            Err(StreamError::Governed { trip, .. }) => {
                assert_eq!(trip.reason, TripReason::Deadline)
            }
            other => panic!("expected latched Governed, got {other:?}"),
        }
        // An ungoverned session's poll is a no-op.
        let mut free = StreamSession::new(&query, stream_opts(EngineKind::Ops)).unwrap();
        assert!(free.poll_deadline().is_ok());
    }

    #[test]
    fn stream_log_records_feeds_and_checkpoints() {
        let query = compiled(QUERY);
        let mut opts = stream_opts(EngineKind::Ops);
        opts.log_capacity = 16;
        let mut session = StreamSession::new(&query, opts).unwrap();
        session
            .feed(vec![
                Value::Str("AAA".into()),
                Value::Int(0),
                Value::Float(100.0),
            ])
            .unwrap();
        let _ = session.snapshot().unwrap();
        let events: Vec<TraceEvent> = session.stream_log().unwrap().events().copied().collect();
        assert_eq!(
            events,
            vec![
                TraceEvent::Feed { i: 1 },
                TraceEvent::Checkpoint { tuples: 1 }
            ]
        );
    }

    #[test]
    fn threads_do_not_change_streamed_results() {
        let query = compiled(QUERY);
        let rows = workload();
        let table = batch_table(&rows);
        let mut opts = stream_opts(EngineKind::Ops);
        opts.exec.threads = NonZeroUsize::new(4).unwrap();
        let batch = execute(&query, &table, &opts.exec).unwrap();
        let mut session = StreamSession::new(&query, opts).unwrap();
        for row in &rows {
            session.feed(row.clone()).unwrap();
        }
        let streamed = session.finish().unwrap();
        assert_eq!(table_rows(&streamed.table), table_rows(&batch.table));
        assert_eq!(streamed.stats, batch.stats);
        assert_eq!(
            streamed.profile.unwrap().clusters,
            batch.profile.unwrap().clusters
        );
    }

    #[test]
    fn governed_err_from_execute_matches_stream_governed() {
        // Sanity: the batch executor and the stream session surface the
        // same trip reason for the same budget.
        let query = compiled(QUERY);
        let rows = workload();
        let table = batch_table(&rows);
        let mut opts = stream_opts(EngineKind::Ops);
        opts.exec.governor = Governor::unlimited().with_max_steps(40);
        let batch_err = execute(&query, &table, &opts.exec).unwrap_err();
        let ExecError::Governed {
            trip: batch_trip, ..
        } = batch_err
        else {
            panic!("expected governed batch run");
        };
        let mut session = StreamSession::new(&query, opts).unwrap();
        let mut stream_trip = None;
        for row in &rows {
            if let Err(StreamError::Governed { trip, .. }) = session.feed(row.clone()) {
                stream_trip = Some(trip);
                break;
            }
        }
        assert_eq!(stream_trip.unwrap().reason, batch_trip.reason);
    }
}
