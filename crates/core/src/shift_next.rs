//! The whole-pattern matrix `S` and the `shift` / `next` arrays for
//! star-free patterns (§4.2 of the paper).
//!
//! `S[j][k]` (defined for `j > k`) answers: *given that the pattern was
//! satisfied up to (and excluding) element `j`, can it possibly be
//! satisfied after shifting `k` positions to the right?*
//!
//! ```text
//! S[j][k] = θ[k+1][1] ∧ θ[k+2][2] ∧ … ∧ θ[j-1][j-k-1] ∧ φ[j][j-k]
//! ```
//!
//! From `S`, for every failure position `j`:
//!
//! * `shift(j)` — the least viable shift (`j` when every entry is 0);
//! * `next(j)` — the pattern element from which checking resumes after
//!   the shift (0 means "start over at the next input element").

use crate::matrices::PrecondMatrices;
use sqlts_tvl::{StrictTriMatrix, Truth};

/// The compiled `shift` / `next` tables (1-based, `shift[0]`/`next[0]`
/// unused padding so indices match the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShiftNext {
    /// `shift[j]` for `1 ≤ j ≤ m`.
    shift: Vec<usize>,
    /// `next[j]` for `1 ≤ j ≤ m`.
    next: Vec<usize>,
}

impl ShiftNext {
    /// `shift(j)`, 1-based.
    #[inline]
    pub fn shift(&self, j: usize) -> usize {
        self.shift[j]
    }

    /// `next(j)`, 1-based.
    #[inline]
    pub fn next(&self, j: usize) -> usize {
        self.next[j]
    }

    /// Pattern length `m`.
    pub fn len(&self) -> usize {
        self.shift.len() - 1
    }

    /// `true` for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean shift value — the paper's §8 heuristic for choosing the search
    /// direction ("a large average value for shift and next is a good
    /// indication of effective optimization").
    pub fn mean_shift(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.shift[1..].iter().sum::<usize>() as f64 / self.len() as f64
    }

    /// Mean next value (see [`ShiftNext::mean_shift`]).
    pub fn mean_next(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.next[1..].iter().sum::<usize>() as f64 / self.len() as f64
    }

    /// Build directly from arrays (used by the star-pattern path and by
    /// ablation studies).
    pub fn from_arrays(shift: Vec<usize>, next: Vec<usize>) -> ShiftNext {
        assert_eq!(shift.len(), next.len());
        assert!(!shift.is_empty(), "arrays must include the index-0 padding");
        ShiftNext { shift, next }
    }

    /// The conservative tables that make OPS degenerate to the naive
    /// search: `shift(j) = 1`, `next(j) = 1` (and `next(1) = 0`,
    /// `shift(1) = 1`, which restarts at the next input position).
    pub fn naive(m: usize) -> ShiftNext {
        let mut shift = vec![1; m + 1];
        let mut next = vec![1; m + 1];
        shift[0] = 0;
        next[0] = 0;
        if m >= 1 {
            // Failing at the first element: move input forward one.
            shift[1] = 1;
            next[1] = 0;
        }
        ShiftNext { shift, next }
    }
}

/// Compute the matrix `S` from θ and φ.
pub fn s_matrix(pre: &PrecondMatrices) -> StrictTriMatrix {
    let m = pre.dim();
    let mut s = StrictTriMatrix::unknown(m);
    for j in 2..=m {
        for k in 1..j {
            // θ[k+1][1] ∧ … ∧ θ[j-1][j-k-1] ∧ φ[j][j-k]
            let mut v = pre.phi.get(j, j - k);
            for t in 1..=(j - k - 1) {
                v &= pre.theta.get(k + t, t);
                if v == Truth::False {
                    break;
                }
            }
            s.set(j, k, v);
        }
    }
    s
}

/// Compute `shift` and `next` for a star-free pattern (§4.2).
pub fn compute(pre: &PrecondMatrices) -> ShiftNext {
    let m = pre.dim();
    let s = s_matrix(pre);
    let mut shift = vec![0usize; m + 1];
    let mut next = vec![0usize; m + 1];

    for j in 1..=m {
        // shift(j): leftmost non-zero column of row j, else j.
        let sh = (1..j).find(|&k| s.get(j, k) != Truth::False).unwrap_or(j);
        shift[j] = sh;

        // next(j): the paper's case 1 (full shift → restart), else the
        // leftmost element that still needs testing: the first t with
        // θ[sh+t][t] = U, defaulting to j-sh.
        //
        // The paper's case 2 (S[j][sh] = 1 → next = j-sh+1, stepping the
        // input past the failed tuple) is deliberately folded into case 3
        // (next = j-sh): our runtime realigns uniformly via the count
        // array, so element j-sh is re-tested on the failed tuple — a test
        // φ[j][j-sh] = 1 guarantees to succeed.  This costs at most one
        // extra test per failure and is exactly what textbook KMP does
        // (its inner loop re-compares t_i with p_next(j)).
        next[j] = if sh == j {
            0
        } else {
            (1..(j - sh))
                .find(|&t| pre.theta.get(sh + t, t) == Truth::Unknown)
                .unwrap_or(j - sh)
        };
    }
    ShiftNext { shift, next }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{PrecondMatrices, Predicates};
    use sqlts_lang::{compile, CompileOptions};
    use sqlts_relation::{ColumnType, Schema};
    use sqlts_tvl::Truth::*;

    fn quote_schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    fn example4() -> PrecondMatrices {
        let q = compile(
            "SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C, D) \
             WHERE A.price < A.previous.price \
             AND B.price < B.previous.price AND B.price > 40 AND B.price < 50 \
             AND C.price > C.previous.price AND C.price < 52 \
             AND D.price > D.previous.price",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        PrecondMatrices::build(Predicates::new(&q.elements))
    }

    #[test]
    fn example6_s_matrix() {
        // The paper's Example 6:
        //   S21 = U; S31 = U; S32 = U; S41 = 0; S42 = 0; S43 = U.
        let s = s_matrix(&example4());
        assert_eq!(s.get(2, 1), Unknown);
        assert_eq!(s.get(3, 1), Unknown);
        assert_eq!(s.get(3, 2), Unknown);
        assert_eq!(s.get(4, 1), False);
        assert_eq!(s.get(4, 2), False);
        assert_eq!(s.get(4, 3), Unknown);
    }

    #[test]
    fn example7_shift_and_next() {
        // The paper's Example 7:
        //   shift = [1, 1, 1, 3], next = [0, 1, 2, 1].
        let sn = compute(&example4());
        assert_eq!(sn.len(), 4);
        assert_eq!(
            (1..=4).map(|j| sn.shift(j)).collect::<Vec<_>>(),
            vec![1, 1, 1, 3]
        );
        assert_eq!(
            (1..=4).map(|j| sn.next(j)).collect::<Vec<_>>(),
            vec![0, 1, 2, 1]
        );
    }

    #[test]
    fn kmp_reduction_on_constant_equalities() {
        // Example 3's pattern (10, 11, 15): a tuple failing "=11" (or
        // "=15") might itself be a 10, so the pattern slides to place
        // element 1 under the failed tuple and re-tests it — textbook
        // KMP's next = [0, 1, 1] for a pattern of three distinct symbols.
        let q = compile(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
             WHERE X.price = 10 AND Y.price = 11 AND Z.price = 15",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let sn = compute(&PrecondMatrices::build(Predicates::new(&q.elements)));
        assert_eq!(
            (1..=3).map(|j| sn.shift(j)).collect::<Vec<_>>(),
            vec![1, 1, 2],
            "shift realigns element 1 onto the failed tuple"
        );
        assert_eq!(
            (1..=3).map(|j| sn.next(j)).collect::<Vec<_>>(),
            vec![0, 1, 1]
        );
    }

    #[test]
    fn kmp_reduction_with_self_overlap() {
        // Pattern (5, 7, 5, 7): failing at j=3 (value ≠ 5 where 5 was
        // expected)... the interesting row is j=4: prefix (5,7,5) has been
        // read; shifting by 2 aligns (5) under the read (5) — the classic
        // KMP border. φ[4][2] = 0 (¬(=7) ⇒ ¬(=7) is p2 ⇒ p4: both =7 → 0),
        // so S[4][2] = 0; S[4][1] = θ21 ∧ φ43 where θ21 (7⇒5) = 0.
        // Failing at 4 must therefore shift fully: but wait — shifting by
        // 2 re-tests element 3 against the failed input. φ[4][2] relates
        // ¬p4 to p2 = (=7): failing "=7" contradicts "=7", S42 = 0 ✓.
        // The overlap pays off at *success* continuation, not captured
        // here; what we verify is plain consistency with naive search via
        // the engine equivalence tests.
        let q = compile(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z, W) \
             WHERE X.price = 5 AND Y.price = 7 AND Z.price = 5 AND W.price = 7",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let sn = compute(&PrecondMatrices::build(Predicates::new(&q.elements)));
        // Failing at j=2 ("expected 7"): could the failed tuple be a 5
        // (pattern start)?  Unknown — ¬(=7) doesn't decide (=5).  So
        // shift(2) = 1 and re-test from element 1.
        assert_eq!(sn.shift(2), 1);
        assert_eq!(sn.next(2), 1);
        // Failing at j=3 ("expected 5" after reading 5,7): shift 1 aligns
        // element 1 (=5) under the read 7 (θ21 = 0, impossible) and shift
        // 2 aligns element 1 (=5) under the tuple that just failed "=5"
        // (φ31 = 0, impossible) — so the whole prefix is skipped.
        assert_eq!(sn.shift(3), 3);
        assert_eq!(sn.next(3), 0);
        // Failing at j=4 (≠7 after 5,7,5): shifts 1 and 2 are refuted
        // (S41 = 0 via θ21, S42 = θ31 ∧ φ42 = 1 ∧ 0 = 0), but the failed
        // tuple itself may be a 5, so shift 3 and test element 1 on it.
        assert_eq!(sn.shift(4), 3);
        assert_eq!(sn.next(4), 1);
    }

    #[test]
    fn naive_tables() {
        let sn = ShiftNext::naive(3);
        assert_eq!(sn.shift(1), 1);
        assert_eq!(sn.next(1), 0);
        assert_eq!(sn.shift(2), 1);
        assert_eq!(sn.next(2), 1);
        assert!((sn.mean_shift() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shift_one_patterns_all_unknown() {
        // Identical predicates: θ = 1 everywhere, φ = 0 everywhere...
        // failing p_j refutes every same-predicate shift: S rows all 0,
        // so shift(j) = j, next(j) = 0 — the whole prefix is skipped.
        let q = compile(
            "SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C) \
             WHERE A.price < A.previous.price AND B.price < B.previous.price \
             AND C.price < C.previous.price",
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        let sn = compute(&PrecondMatrices::build(Predicates::new(&q.elements)));
        for j in 1..=3 {
            assert_eq!(sn.shift(j), j);
            assert_eq!(sn.next(j), 0);
        }
    }

    #[test]
    fn mean_statistics() {
        let sn = ShiftNext::from_arrays(vec![0, 1, 1, 3], vec![0, 0, 1, 1]);
        assert!((sn.mean_shift() - 5.0 / 3.0).abs() < 1e-9);
        assert!((sn.mean_next() - 2.0 / 3.0).abs() < 1e-9);
    }
}
