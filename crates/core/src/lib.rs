#![warn(missing_docs)]

//! The **OPS** (Optimized Pattern Search) optimizer and pattern-search
//! engines of *Optimization of Sequence Queries in Database Systems*
//! (Sadri, Zaniolo, Zarkesh, Adibi — PODS 2001).
//!
//! OPS generalizes the Knuth–Morris–Pratt string-search algorithm from
//! constant-equality patterns to SQL-TS patterns whose elements are
//! arbitrary predicate conjunctions, possibly starred (greedy one-or-more
//! repetition).  At query-compile time it derives:
//!
//! * the pairwise **precondition matrices** θ and φ over three-valued
//!   logic (§4.2) — [`matrices`];
//! * for star-free patterns, the whole-pattern matrix **S** and the
//!   `shift` / `next` arrays (§4.2) — [`shift_next`];
//! * for patterns with stars, the **implication graph** `G_P` and its
//!   per-failure variants `G_P^j`, from which `shift` / `next` are derived
//!   by reachability and deterministic-path walking (§5.1) — [`stargraph`];
//!
//! and at run time executes the search without re-reading input tuples the
//! compile-time analysis already accounts for — [`engine`].  The paper's
//! cost metric (number of times an input element is tested against a
//! pattern element) is tracked by [`counters::EvalCounter`]; the search
//! trajectories of Figure 5 are recorded by [`counters::SearchTrace`].
//!
//! ```
//! use sqlts_core::{execute_query, EngineKind, ExecOptions};
//! use sqlts_relation::{ColumnType, Schema, Table};
//!
//! let schema = Schema::new([
//!     ("name", ColumnType::Str),
//!     ("date", ColumnType::Date),
//!     ("price", ColumnType::Float),
//! ]).unwrap();
//! let csv = "name,date,price\n\
//!            IBM,1999-01-25,55\nIBM,1999-01-26,50\nIBM,1999-01-27,45\n\
//!            IBM,1999-01-28,57\nIBM,1999-01-29,54\n";
//! let table = Table::from_csv_str(schema, csv).unwrap();
//!
//! // Falling-then-rising: one period of drops, then a rise.
//! let result = execute_query(
//!     "SELECT FIRST(Y).date AS from_date, Z.date AS to_date \
//!      FROM quote CLUSTER BY name SEQUENCE BY date AS (*Y, Z) \
//!      WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price",
//!     &table,
//!     &ExecOptions { engine: EngineKind::Ops, ..Default::default() },
//! ).unwrap();
//! assert_eq!(result.table.len(), 1);
//! ```

pub mod counters;
pub mod engine;
pub mod executor;
pub mod explain;
pub mod governor;
pub mod kmp;
pub mod matrices;
pub mod multiplex;
pub mod patternset;
pub mod persist;
pub mod reverse;
pub mod setstream;
pub mod shift_next;
pub mod stargraph;
pub mod stream;

/// Deterministic fault injection (compiled only under
/// `--features failpoints`): named sites in the engine, executor and CSV
/// ingest paths that tests configure to panic, delay, inject errors or
/// exhaust budgets.  See [`sqlts_relation::failpoints`].
#[cfg(feature = "failpoints")]
pub mod failpoints {
    pub use sqlts_relation::failpoints::*;
}

pub use counters::{EvalCounter, SearchTrace};
pub use engine::{find_matches, EngineKind, MatchSpans, SearchOptions};
pub use executor::{
    execute, execute_query, ClusterFailure, DirectionChoice, ExecError, ExecOptions, Instrument,
    QueryResult, SearchStats,
};
pub use explain::{explain, optimizer_report};
pub use governor::{CancellationToken, Governor, Trip, TripReason};
pub use matrices::{PrecondMatrices, Predicates};
pub use multiplex::{
    FinishReport, PhaseTag, SessionStatus, SessionWorker, SessionWorkerConfig, SharedSpec,
    WorkerError, WorkerPhase,
};
pub use patternset::{execute_set, SetRegistry, SetResult, SharedJoin, SharedMatcher};
pub use persist::atomic_write;
pub use setstream::{SetFeedError, SharedStreamSession};
pub use shift_next::ShiftNext;
pub use stargraph::star_shift_next;
pub use stream::{
    BadTuple, BadTuplePolicy, SessionCheckpoint, StreamError, StreamOptions, StreamSession,
};

// Re-export the compiler front end so downstream users need one crate.
pub use sqlts_lang::{compile, CompileOptions, CompiledQuery, FirstTuplePolicy};

/// Re-export of the instrumentation crate: profiles, metrics registries,
/// trace events and their exporters.
pub use sqlts_trace as trace;
pub use sqlts_trace::{ExecutionProfile, PatternSetStats, TraceEvent};
