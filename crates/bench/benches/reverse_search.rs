//! E7 / §8: forward vs reverse search over the double-bottom workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlts_bench::{djia, DJIA_SEED, DOUBLE_BOTTOM};
use sqlts_core::engine::SearchOptions;
use sqlts_core::reverse::{find_matches_directed, Direction};
use sqlts_core::{compile, CompileOptions, EngineKind, EvalCounter, FirstTuplePolicy};

fn bench(c: &mut Criterion) {
    let table = djia(DJIA_SEED);
    let query = compile(DOUBLE_BOTTOM, table.schema(), &CompileOptions::default()).unwrap();
    let clusters = table.cluster_by(&[], &["date"]).unwrap();
    let opts = SearchOptions {
        policy: FirstTuplePolicy::VacuousTrue,
    };

    let mut group = c.benchmark_group("reverse_search_double_bottom");
    for direction in [Direction::Forward, Direction::Reverse] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{direction:?}")),
            &direction,
            |b, &direction| {
                b.iter(|| {
                    find_matches_directed(
                        &query,
                        &clusters[0],
                        direction,
                        EngineKind::Ops,
                        &opts,
                        &EvalCounter::new(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
