//! E6 / §3.1: OPS on constant-equality patterns vs classic KMP vs naive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlts_bench::{kmp_workload, run_cost};
use sqlts_core::kmp::Kmp;
use sqlts_core::{EngineKind, EvalCounter};

const QUERY: &str = "SELECT X.date FROM t SEQUENCE BY date AS (X, Y, Z) \
                     WHERE X.price = 0 AND Y.price = 1 AND Z.price = 0";

fn bench(c: &mut Criterion) {
    let n = 50_000;
    let table = kmp_workload(n, 4, 42);
    let symbols: Vec<i64> = table
        .rows()
        .map(|r| r[2].as_f64().unwrap() as i64)
        .collect();

    let mut group = c.benchmark_group("kmp_vs_ops_equality_pattern");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for engine in [EngineKind::Naive, EngineKind::Ops] {
        group.bench_with_input(
            BenchmarkId::new("sqlts", format!("{engine:?}")),
            &engine,
            |b, &engine| b.iter(|| run_cost(QUERY, &table, engine)),
        );
    }
    // Classic KMP on the raw symbol stream — the lower bound OPS should
    // track (modulo the tuple-evaluation machinery).
    let kmp = Kmp::new(&[0i64, 1, 0]);
    group.bench_function("raw_kmp", |b| {
        b.iter(|| {
            let counter = EvalCounter::new();
            kmp.find_all(&symbols, &counter)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
