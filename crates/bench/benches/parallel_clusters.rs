//! E11: cluster-parallel execution of the E5 sweep workload.
//!
//! Scales the worker-thread count over a many-cluster table; the cost
//! metric (predicate tests) is identical at every count — only wall time
//! changes.  `threads = 1` is the sequential baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlts_bench::{clustered_query, clustered_sweep_workload, run_cost_threads};
use sqlts_core::EngineKind;

fn bench(c: &mut Criterion) {
    let table = clustered_sweep_workload(64, 1_000, 7);
    let query = clustered_query(
        "SELECT FIRST(A).date FROM t SEQUENCE BY date AS (*A, *B, C) \
         WHERE A.price <= A.previous.price AND B.price <= B.previous.price \
         AND C.price > C.previous.price AND C.price > 9",
    );
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("parallel_clusters");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8, 16] {
        if threads > max_threads.max(1) * 2 {
            continue; // oversubscribing further tells us nothing
        }
        group.bench_with_input(BenchmarkId::new("ops", threads), &threads, |b, &threads| {
            b.iter(|| run_cost_threads(&query, &table, EngineKind::Ops, threads))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
