//! E1 / Figure 5: naive vs OPS search over the paper's §4.2.1 sequence
//! (tiled so timings are measurable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlts_bench::{price_table, run_cost, EXAMPLE4, FIG5_PRICES};
use sqlts_core::EngineKind;

fn bench(c: &mut Criterion) {
    let prices: Vec<f64> = FIG5_PRICES.iter().cycle().take(15_000).copied().collect();
    let table = price_table(&prices);
    let mut group = c.benchmark_group("fig5_example4_search");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for engine in [EngineKind::Naive, EngineKind::Ops, EngineKind::OpsShiftOnly] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{engine:?}")),
            &engine,
            |b, &engine| b.iter(|| run_cost(EXAMPLE4, &table, engine)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
