//! E4 / §7, Figures 6–7: the relaxed double bottom over the simulated
//! 25-year DJIA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlts_bench::{djia, run_cost, DJIA_SEED, DOUBLE_BOTTOM};
use sqlts_core::EngineKind;

fn bench(c: &mut Criterion) {
    let table = djia(DJIA_SEED);
    let mut group = c.benchmark_group("double_bottom_djia_25y");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for engine in [
        EngineKind::NaiveBacktrack,
        EngineKind::Naive,
        EngineKind::OpsShiftOnly,
        EngineKind::Ops,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{engine:?}")),
            &engine,
            |b, &engine| b.iter(|| run_cost(DOUBLE_BOTTOM, &table, engine)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
