//! E8 / §5.1: compile-time cost of the optimizer vs pattern length m
//! (matrices are O(m²) solver calls; shift/next is O(m³)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlts_core::matrices::{PrecondMatrices, Predicates};
use sqlts_core::{compile, star_shift_next, CompileOptions};
use sqlts_datagen::quote_schema;

fn star_chain_query(m: usize) -> String {
    let vars: Vec<String> = (0..m).map(|i| format!("V{i}")).collect();
    let conds: Vec<String> = vars
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if i % 2 == 0 {
                format!("{v}.price < {v}.previous.price")
            } else {
                format!("{v}.price > {v}.previous.price")
            }
        })
        .collect();
    format!(
        "SELECT FIRST(V0).date FROM t SEQUENCE BY date AS (*{}) WHERE {}",
        vars.join(", *"),
        conds.join(" AND ")
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_cost");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for m in [4usize, 8, 16, 32] {
        let q = compile(
            &star_chain_query(m),
            &quote_schema(),
            &CompileOptions::default(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("matrices", m), &q, |b, q| {
            b.iter(|| PrecondMatrices::build(Predicates::new(&q.elements)))
        });
        let pre = PrecondMatrices::build(Predicates::new(&q.elements));
        group.bench_with_input(BenchmarkId::new("shift_next", m), &q, |b, q| {
            b.iter(|| star_shift_next(Predicates::new(&q.elements), &pre))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
