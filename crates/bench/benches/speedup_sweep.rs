//! E5 / §7: speedups across complex patterns ("up to 800 times").
//!
//! The wall-clock sweep uses reduced workload sizes so the backtracking
//! baseline stays benchable; the `experiments sweep` binary reports the
//! full-size predicate-test counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlts_bench::{price_table, run_cost, sweep_patterns, sweep_workload, Workload};
use sqlts_core::EngineKind;
use sqlts_datagen::sawtooth;

fn bench(c: &mut Criterion) {
    let walk = sweep_workload(4_000, 7);
    let saw = price_table(&sawtooth(1_500, 24, 3));
    let mut group = c.benchmark_group("speedup_sweep");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for case in sweep_patterns() {
        // Skip the most explosive backtracking cases in the wall-clock
        // sweep (counted in `experiments sweep` instead).
        let engines: &[EngineKind] = if case.id.starts_with("saw-4") || case.id.starts_with("saw-5")
        {
            &[EngineKind::Naive, EngineKind::Ops]
        } else {
            &[
                EngineKind::NaiveBacktrack,
                EngineKind::Naive,
                EngineKind::Ops,
            ]
        };
        let table = match case.workload {
            Workload::Walk => &walk,
            Workload::Sawtooth => &saw,
        };
        for &engine in engines {
            group.bench_with_input(
                BenchmarkId::new(case.id, format!("{engine:?}")),
                &engine,
                |b, &engine| b.iter(|| run_cost(&case.query, table, engine)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
