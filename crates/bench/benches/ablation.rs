//! E10: ablation — full OPS vs shift-only vs naive on the headline
//! workloads, isolating the contribution of the `next` array.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlts_bench::{djia, kmp_workload, run_cost, DJIA_SEED, DOUBLE_BOTTOM};
use sqlts_core::EngineKind;

const EQUALITY: &str = "SELECT V0.date FROM t SEQUENCE BY date AS (V0, V1, V2, V3, V4) \
                        WHERE V0.price = 3 AND V1.price = 5 AND V2.price = 3 \
                        AND V3.price = 5 AND V4.price = 9";

fn bench(c: &mut Criterion) {
    let djia_table = djia(DJIA_SEED);
    let sym_table = kmp_workload(20_000, 10, 21);
    let mut group = c.benchmark_group("ablation");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for engine in [EngineKind::Naive, EngineKind::OpsShiftOnly, EngineKind::Ops] {
        group.bench_with_input(
            BenchmarkId::new("double_bottom", format!("{engine:?}")),
            &engine,
            |b, &engine| b.iter(|| run_cost(DOUBLE_BOTTOM, &djia_table, engine)),
        );
        group.bench_with_input(
            BenchmarkId::new("equality_chain", format!("{engine:?}")),
            &engine,
            |b, &engine| b.iter(|| run_cost(EQUALITY, &sym_table, engine)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
