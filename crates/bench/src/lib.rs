//! Shared workloads and runners for the paper's experiments.
//!
//! Every figure and table of the paper's evaluation maps to a function
//! here (see the experiment index in DESIGN.md §5); the `experiments`
//! binary renders them as text and the Criterion benches time them.

use sqlts_core::{
    compile, execute, execute_query, execute_set, CompileOptions, EngineKind, EvalCounter,
    ExecOptions, ExecutionProfile, FirstTuplePolicy, Instrument, PatternSetStats, SearchTrace,
};
use sqlts_datagen::{djia_series, integer_walk, prices_to_table, symbol_series};
use sqlts_relation::{Date, Table, Value};
use std::num::NonZeroUsize;

/// The paper's Example 10: the relaxed double-bottom query (±2% bands).
pub const DOUBLE_BOTTOM: &str = "\
SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
FROM djia SEQUENCE BY date AS (X, *Y, *Z, *T, *U, *V, *W, *R, S) \
WHERE X.price >= 0.98 * X.previous.price \
AND Y.price < 0.98 * Y.previous.price \
AND 0.98 * Z.previous.price < Z.price AND Z.price < 1.02 * Z.previous.price \
AND T.price > 1.02 * T.previous.price \
AND 0.98 * U.previous.price < U.price AND U.price < 1.02 * U.previous.price \
AND V.price < 0.98 * V.previous.price \
AND 0.98 * W.previous.price < W.price AND W.price < 1.02 * W.previous.price \
AND R.price > 1.02 * R.previous.price \
AND S.price <= 1.02 * S.previous.price";

/// The paper's Example 4 predicate pattern (as a standalone 4-element
/// query).
pub const EXAMPLE4: &str = "\
SELECT A.date FROM quote SEQUENCE BY date AS (A, B, C, D) \
WHERE A.price < A.previous.price \
AND B.price < B.previous.price AND B.price > 40 AND B.price < 50 \
AND C.price > C.previous.price AND C.price < 52 \
AND D.price > D.previous.price";

/// The paper's Example 9 (seven elements, four stars).
pub const EXAMPLE9: &str = "\
SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
FROM quote CLUSTER BY name SEQUENCE BY date AS (*X, Y, *Z, *T, U, *V, S) \
WHERE X.price > X.previous.price \
AND 30 < Y.price AND Y.price < 40 \
AND Z.price < Z.previous.price \
AND T.price > T.previous.price \
AND 35 < U.price AND U.price < 40 \
AND V.price < V.previous.price \
AND S.price < 30";

/// The paper's §4.2.1 fifteen-value price sequence used for Figure 5.
pub const FIG5_PRICES: [f64; 15] = [
    55.0, 50.0, 45.0, 57.0, 54.0, 50.0, 47.0, 49.0, 45.0, 42.0, 55.0, 57.0, 59.0, 60.0, 57.0,
];

/// Default seed: the publication year, for the simulated DJIA.
pub const DJIA_SEED: u64 = 2001;

/// Build a single-cluster quote table from a plain price series.
pub fn price_table(prices: &[f64]) -> Table {
    prices_to_table("X", Date::from_ymd(1990, 1, 1), prices)
}

/// Cost/result summary of one engine on one workload.
#[derive(Clone, Debug)]
pub struct RunCost {
    /// Engine used.
    pub engine: EngineKind,
    /// Matches found.
    pub matches: u64,
    /// Predicate tests (the paper's metric).
    pub tests: u64,
}

/// Execute `query` over `table` under `engine`, returning the paper's
/// cost metric.
pub fn run_cost(query: &str, table: &Table, engine: EngineKind) -> RunCost {
    run_cost_threads(query, table, engine, 1)
}

/// [`run_cost`] with an explicit worker-thread count for the
/// cluster-parallel executor (the cost metric is identical for every
/// count; only wall time changes).
pub fn run_cost_threads(query: &str, table: &Table, engine: EngineKind, threads: usize) -> RunCost {
    let result = execute_query(
        query,
        table,
        &ExecOptions {
            engine,
            policy: FirstTuplePolicy::VacuousTrue,
            compile: CompileOptions::default(),
            threads: NonZeroUsize::new(threads).expect("thread count must be nonzero"),
            ..Default::default()
        },
    )
    .expect("experiment query executes");
    RunCost {
        engine,
        matches: result.stats.matches,
        tests: result.stats.predicate_tests,
    }
}

/// [`run_cost`] with the metrics registry armed: returns the full
/// machine-readable [`ExecutionProfile`] (per-position test counts,
/// shift-distance histograms, per-cluster breakdown, optimizer report)
/// instead of the two scalar totals.
pub fn run_profile(query: &str, table: &Table, engine: EngineKind) -> ExecutionProfile {
    let result = execute_query(
        query,
        table,
        &ExecOptions {
            engine,
            policy: FirstTuplePolicy::VacuousTrue,
            compile: CompileOptions::default(),
            instrument: Instrument::profiling(),
            ..Default::default()
        },
    )
    .expect("experiment query executes");
    *result.profile.expect("profiling was armed")
}

/// Speedup of `b` relative to `a` in predicate tests (`a.tests/b.tests`).
pub fn speedup(a: &RunCost, b: &RunCost) -> f64 {
    a.tests as f64 / b.tests.max(1) as f64
}

/// Record the `(i, j)` search path of a single-cluster workload.
pub fn trace_path(query: &str, prices: &[f64], engine: EngineKind) -> SearchTrace {
    use sqlts_core::engine::{find_matches, SearchOptions};
    let table = price_table(prices);
    let compiled = sqlts_core::compile(query, table.schema(), &CompileOptions::default())
        .expect("query compiles");
    let clusters = table.cluster_by(&[], &["date"]).expect("cluster");
    let mut trace = SearchTrace::new();
    let counter = EvalCounter::new();
    find_matches(
        &compiled.elements,
        &clusters[0],
        engine,
        &SearchOptions {
            policy: FirstTuplePolicy::Fail,
        },
        &counter,
        Some(&mut trace),
    );
    trace
}

/// The simulated 25-year DJIA table (experiment E4).
pub fn djia(seed: u64) -> Table {
    djia_series(seed)
}

/// Which workload a sweep case runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Bounded integer random walk (short runs).
    Walk,
    /// Sawtooth with long non-increasing runs (backtracking blow-up
    /// regime).
    Sawtooth,
}

/// One case of the E5 speedup sweep.
pub struct SweepCase {
    /// Short readable id.
    pub id: &'static str,
    /// The SQL-TS query.
    pub query: String,
    /// Which workload to run it on.
    pub workload: Workload,
}

/// Materialize a sweep workload (sizes tuned so the backtracking
/// baseline finishes in seconds).
pub fn sweep_table(workload: Workload) -> Table {
    match workload {
        Workload::Walk => sweep_workload(20_000, 7),
        Workload::Sawtooth => price_table(&sqlts_datagen::sawtooth(12_000, 24, 3)),
    }
}

/// The E5 sweep: a family of patterns of growing length and star density
/// over a workload tuned so that backtracking hurts, paired with readable
/// ids.
pub fn sweep_patterns() -> Vec<SweepCase> {
    let case = |id, query: String, workload| SweepCase {
        id,
        query,
        workload,
    };
    let mut out = Vec::new();
    // Star-free chains of alternating rises/falls, m = 4, 8, 12.
    for (id, m) in [("chain-4", 4usize), ("chain-8", 8), ("chain-12", 12)] {
        let vars: Vec<String> = (0..m).map(|i| format!("V{i}")).collect();
        let conds: Vec<String> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if i % 2 == 0 {
                    format!("{v}.price < {v}.previous.price")
                } else {
                    format!("{v}.price > {v}.previous.price")
                }
            })
            .collect();
        out.push(case(
            id,
            format!(
                "SELECT V0.date FROM t SEQUENCE BY date AS ({}) WHERE {}",
                vars.join(", "),
                conds.join(" AND ")
            ),
            Workload::Walk,
        ));
    }
    // Starred variants with *overlapping* adjacent predicates — the
    // regime where the backtracking baseline explodes.
    out.push(case(
        "star-overlap-3",
        "SELECT FIRST(A).date FROM t SEQUENCE BY date AS (*A, *B, C) \
         WHERE A.price <= A.previous.price AND B.price <= B.previous.price \
         AND C.price > C.previous.price AND C.price > 9"
            .to_string(),
        Workload::Walk,
    ));
    out.push(case(
        "star-overlap-4",
        "SELECT FIRST(A).date FROM t SEQUENCE BY date AS (*A, *B, *C, D) \
         WHERE A.price <= A.previous.price AND B.price <= B.previous.price \
         AND C.price <= C.previous.price AND D.price > D.previous.price AND D.price > 9"
            .to_string(),
        Workload::Walk,
    ));
    // The blow-up regime: overlapping stars over long non-increasing
    // sawtooth runs — a run of length L admits ~L^(k-1) splits across k
    // stars, all of which the backtracker explores before failing.
    for (id, stars) in [
        ("saw-2-stars", 2usize),
        ("saw-3-stars", 3),
        ("saw-4-stars", 4),
        ("saw-5-stars", 5),
    ] {
        let vars: Vec<String> = (0..stars).map(|i| format!("S{i}")).collect();
        let conds: Vec<String> = vars
            .iter()
            .map(|v| format!("{v}.price <= {v}.previous.price"))
            .collect();
        out.push(case(
            id,
            format!(
                "SELECT FIRST(S0).date FROM t SEQUENCE BY date AS (*{}, E) \
                 WHERE {} AND E.price > E.previous.price + 500",
                vars.join(", *"),
                conds.join(" AND ")
            ),
            Workload::Sawtooth,
        ));
    }
    // Exclusive starred pattern (Example 8 style).
    out.push(case(
        "star-exclusive-3",
        "SELECT FIRST(A).date FROM t SEQUENCE BY date AS (*A, *B, *C) \
         WHERE A.price > A.previous.price AND B.price < B.previous.price \
         AND C.price > C.previous.price"
            .to_string(),
        Workload::Walk,
    ));
    // Selective equality chain (KMP regime).
    out.push(case(
        "equality-5",
        "SELECT V0.date FROM t SEQUENCE BY date AS (V0, V1, V2, V3, V4) \
         WHERE V0.price = 3 AND V1.price = 5 AND V2.price = 3 AND V3.price = 5 \
         AND V4.price = 9"
            .to_string(),
        Workload::Walk,
    ));
    out
}

/// The E5 sweep workload: an integer random walk (exact in f64).
pub fn sweep_workload(n: usize, seed: u64) -> Table {
    price_table(&integer_walk(n, 1, 10, 2, seed))
}

/// A `CLUSTER BY name` variant of the E5 sweep workload: `clusters`
/// independent integer walks of `rows_per_cluster` tuples each, under
/// distinct symbol names.  This is the workload the parallel executor
/// fans out (experiment E11 / the `parallel_clusters` bench).
pub fn clustered_sweep_workload(clusters: usize, rows_per_cluster: usize, seed: u64) -> Table {
    let mut table = Table::new(sqlts_datagen::quote_schema());
    let start = Date::from_ymd(1990, 1, 1);
    for c in 0..clusters {
        let name = format!("S{c:04}");
        let prices = integer_walk(
            rows_per_cluster,
            1,
            10,
            2,
            seed ^ (c as u64).wrapping_mul(0x9E37),
        );
        let mut day = start;
        for p in prices {
            while day.is_weekend() {
                day = day.plus_days(1);
            }
            table
                .push_row(vec![
                    Value::from(name.as_str()),
                    Value::Date(day),
                    Value::from(p),
                ])
                .expect("generated rows match the schema");
            day = day.plus_days(1);
        }
    }
    table
}

/// Rewrite an E5 sweep query (`FROM t SEQUENCE BY date`) to cluster by
/// symbol, for use with [`clustered_sweep_workload`].
pub fn clustered_query(query: &str) -> String {
    query.replace("SEQUENCE BY date", "CLUSTER BY name SEQUENCE BY date")
}

/// The E6 workload: i.i.d. symbols as prices.
pub fn kmp_workload(n: usize, alphabet: u8, seed: u64) -> Table {
    price_table(&symbol_series(n, alphabet, seed))
}

/// A prefix-sharing family of `n` standing queries for the shared
/// pattern-set experiment (E13): the `X`/`Y` elements are identical
/// across the family, only `Z`'s threshold varies, so the shared matcher
/// memoizes the common prefix once per cluster position.  Runs over
/// [`clustered_sweep_workload`] tables (integer walks in 1..10).
pub fn pattern_set_family(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "SELECT X.date, Z.date AS to_d FROM quote CLUSTER BY name \
                 SEQUENCE BY date AS (X, Y, Z) WHERE X.price >= 3 \
                 AND Y.price > Y.previous.price AND Z.price < {}",
                3 + i
            )
        })
        .collect()
}

/// The shared-vs-solo measurement for one query family: set-level
/// counters from one `execute_set` pass, plus the independently measured
/// per-query solo test sum the sharing is judged against.
#[derive(Clone, Debug)]
pub struct SetCost {
    /// Counters from the shared pass (savings, trie shape, lattice size).
    pub stats: PatternSetStats,
    /// Sum of each member's solo `predicate_tests` — what `n` independent
    /// passes would have cost.
    pub solo_tests: u64,
    /// Total matches across the family (identical shared or solo).
    pub matches: u64,
}

/// Execute `queries` as one shared pattern set and, for reference, each
/// solo, returning both cost sides (the E13 experiment).
pub fn pattern_set_cost(queries: &[String], table: &Table, engine: EngineKind) -> SetCost {
    let opts = ExecOptions {
        engine,
        policy: FirstTuplePolicy::VacuousTrue,
        compile: CompileOptions::default(),
        ..Default::default()
    };
    let compiled: Vec<_> = queries
        .iter()
        .map(|q| compile(q, table.schema(), &opts.compile).expect("family query compiles"))
        .collect();
    let set = execute_set(&compiled, table, &opts);
    let mut matches = 0;
    for result in &set.results {
        matches += result
            .as_ref()
            .expect("family query executes")
            .stats
            .matches;
    }
    let mut solo_tests = 0;
    for query in &compiled {
        let solo = execute(query, table, &opts).expect("family query executes");
        solo_tests += solo.stats.predicate_tests;
    }
    SetCost {
        stats: set.stats,
        solo_tests,
        matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_bottom_compiles_and_engines_agree_on_matches() {
        let table = djia(DJIA_SEED);
        let naive = run_cost(DOUBLE_BOTTOM, &table, EngineKind::Naive);
        let ops = run_cost(DOUBLE_BOTTOM, &table, EngineKind::Ops);
        assert_eq!(naive.matches, ops.matches);
        assert!(ops.tests <= naive.tests);
        // The number recorded in EXPERIMENTS.md (paper: 12 on recorded
        // DJIA).  Pinned so the experiment record stays reproducible; if
        // the simulator changes, re-measure and update EXPERIMENTS.md.
        assert_eq!(ops.matches, 11, "E4 match count drifted");
    }

    #[test]
    fn sweep_patterns_all_compile() {
        // Small stand-ins for both workloads keep the test fast.
        let walk = sweep_workload(500, 7);
        let saw = price_table(&sqlts_datagen::sawtooth(500, 24, 3));
        for case in sweep_patterns() {
            let table = match case.workload {
                Workload::Walk => &walk,
                Workload::Sawtooth => &saw,
            };
            let c = run_cost(&case.query, table, EngineKind::Ops);
            assert!(c.tests > 0, "{}", case.id);
        }
    }

    #[test]
    fn clustered_sweep_parallel_costs_match_sequential() {
        let table = clustered_sweep_workload(8, 300, 7);
        let query = clustered_query(
            "SELECT FIRST(A).date FROM t SEQUENCE BY date AS (*A, *B, C) \
             WHERE A.price <= A.previous.price AND B.price <= B.previous.price \
             AND C.price > C.previous.price AND C.price > 9",
        );
        let seq = run_cost_threads(&query, &table, EngineKind::Ops, 1);
        let par = run_cost_threads(&query, &table, EngineKind::Ops, 4);
        assert_eq!(seq.matches, par.matches);
        assert_eq!(seq.tests, par.tests);
        assert!(seq.tests > 0);
    }

    #[test]
    fn fig5_traces_differ() {
        let naive = trace_path(EXAMPLE4, &FIG5_PRICES, EngineKind::Naive);
        let ops = trace_path(EXAMPLE4, &FIG5_PRICES, EngineKind::Ops);
        assert!(ops.path_len() < naive.path_len());
        assert!(ops.backtrack_episodes() <= naive.backtrack_episodes());
    }
}
