//! Regenerate every figure and table of the paper's evaluation.
//!
//! ```text
//! experiments [all|ex5|ex9|fig5|kmp|double_bottom|sweep|reverse|compile_cost|disjunction|ablation|parallel|bench-json]
//! ```
//!
//! Each subcommand corresponds to one experiment of the index in
//! DESIGN.md §5 and prints the paper-vs-measured comparison recorded in
//! EXPERIMENTS.md.

use sqlts_bench::*;
use sqlts_core::engine::SearchOptions;
use sqlts_core::reverse::{direction_hint, find_matches_directed, Direction};
use sqlts_core::{compile, explain, CompileOptions, EngineKind, EvalCounter, FirstTuplePolicy};
use sqlts_datagen::big_move_fraction;
use std::time::Instant;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = arg == "all";
    let mut ran = false;
    let experiments: &[(&str, fn())] = &[
        ("ex5", ex5),
        ("ex9", ex9),
        ("fig5", fig5),
        ("kmp", kmp),
        ("double_bottom", double_bottom),
        ("sweep", sweep),
        ("reverse", reverse),
        ("compile_cost", compile_cost),
        ("disjunction", disjunction),
        ("ablation", ablation),
        ("parallel", parallel),
        ("pattern_set", pattern_set),
        ("bench-json", bench_json),
    ];
    for (name, f) in experiments {
        if all || arg == *name {
            println!("\n================ {name} ================");
            f();
            ran = true;
        }
    }
    if !ran {
        eprintln!(
            "unknown experiment {arg:?}; available: all {}",
            experiments
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
}

fn quote_schema() -> sqlts_relation::Schema {
    sqlts_datagen::quote_schema()
}

/// E2 — the worked tables of Examples 5–7 (θ, φ, S, shift, next for the
/// Example 4 pattern).
fn ex5() {
    let q = compile(EXAMPLE4, &quote_schema(), &CompileOptions::default()).unwrap();
    println!("{}", explain(&q));
    println!("paper (Example 7): shift = [1, 1, 1, 3], next = [0, 1, 2, 1]");
}

/// E3 — Example 9's matrices and the worked shift(6) = 3, next(6) = 1.
fn ex9() {
    let q = compile(EXAMPLE9, &quote_schema(), &CompileOptions::default()).unwrap();
    println!("{}", explain(&q));
    println!("paper (§5.1): shift(6) = 3, next(6) = 1");
}

/// E1 — Figure 5: naive vs OPS search-path curves on the §4.2.1 sequence.
fn fig5() {
    println!("input: {FIG5_PRICES:?}");
    for engine in [EngineKind::Naive, EngineKind::Ops] {
        let trace = trace_path(EXAMPLE4, &FIG5_PRICES, engine);
        println!(
            "\n{engine:?}: path length = {}, backtracking episodes = {}",
            trace.path_len(),
            trace.backtrack_episodes()
        );
        println!("input-cursor trajectory (x = input position, row = test step):");
        print!("{}", trace.ascii_chart(48));
    }
    println!(
        "\npaper (Figure 5): \"for the OPS algorithm, the backtracking episodes are \
         less frequent and less deep, and therefore the length of the search path is \
         significantly shorter\""
    );
}

/// E6 — §3.1: KMP on the paper's text, and OPS ≡ KMP on constant-equality
/// patterns.
fn kmp() {
    use sqlts_core::kmp::{find_all_str, Kmp};
    let pattern = "abcabcacab";
    let text = "babcbabcabcaabcabcabcacabc";
    let kmp = Kmp::new(pattern.as_bytes());
    println!("pattern {pattern:?}, next = {:?}", &kmp.next_array()[1..]);
    let c = EvalCounter::new();
    let hits = find_all_str(pattern, text, &c);
    println!(
        "text {text:?}: occurrences at {hits:?}, {} comparisons for {} symbols (KMP bound 2n = {})",
        c.total(),
        text.len(),
        2 * text.len()
    );

    // Example 3 as a query: OPS comparisons == KMP comparisons.
    let n = 20_000;
    let table = kmp_workload(n, 4, 42);
    let query = "SELECT X.date FROM t SEQUENCE BY date AS (X, Y, Z) \
                 WHERE X.price = 0 AND Y.price = 1 AND Z.price = 0";
    let naive = run_cost(query, &table, EngineKind::Naive);
    let ops = run_cost(query, &table, EngineKind::Ops);
    // Reference KMP over the same symbol stream (non-overlapping
    // restarts to mirror SQL-TS match semantics are immaterial to cost
    // here; report both).
    println!(
        "\nExample 3 analogue over {n} symbols (alphabet 4): \
         naive = {} tests, OPS = {} tests, {} matches each",
        naive.tests, ops.tests, ops.matches
    );
    println!(
        "OPS/naive = {:.3}; OPS stays within the KMP linear bound 2n = {} → {}",
        ops.tests as f64 / naive.tests as f64,
        2 * n,
        ops.tests <= 2 * n as u64
    );
}

/// E4 — §7 / Figures 6–7: the relaxed double bottom over 25 years of
/// (simulated) DJIA closes.
fn double_bottom() {
    let table = djia(DJIA_SEED);
    let prices: Vec<f64> = table.rows().map(|r| r[2].as_f64().unwrap()).collect();
    println!(
        "workload: simulated DJIA, {} trading days, start {:.0}, end {:.0}, \
         ±2% daily moves: {:.2}% of days",
        table.len(),
        prices.first().unwrap(),
        prices.last().unwrap(),
        100.0 * big_move_fraction(&prices, 0.02)
    );

    let t0 = Instant::now();
    let bt = run_cost(DOUBLE_BOTTOM, &table, EngineKind::NaiveBacktrack);
    let t_bt = t0.elapsed();
    let t0 = Instant::now();
    let naive = run_cost(DOUBLE_BOTTOM, &table, EngineKind::Naive);
    let t_naive = t0.elapsed();
    let t0 = Instant::now();
    let ops = run_cost(DOUBLE_BOTTOM, &table, EngineKind::Ops);
    let t_ops = t0.elapsed();

    println!(
        "\n{:<22} {:>12} {:>10} {:>12}",
        "engine", "tests", "matches", "wall"
    );
    for (name, c, t) in [
        ("naive-backtracking", &bt, t_bt),
        ("naive-greedy", &naive, t_naive),
        ("OPS", &ops, t_ops),
    ] {
        println!(
            "{:<22} {:>12} {:>10} {:>10.2?}",
            name, c.tests, c.matches, t
        );
    }
    println!(
        "\nspeedup OPS vs naive-backtracking: {:.1}x (paper: 93x on recorded DJIA)",
        speedup(&bt, &ops)
    );
    println!(
        "speedup OPS vs naive-greedy:       {:.2}x",
        speedup(&naive, &ops)
    );
    println!(
        "matches found: {} (paper: 12 on recorded DJIA; counts differ on a \
         simulated series, the engines agree with each other: {})",
        ops.matches,
        ops.matches == naive.matches
    );
}

/// E5 — §7: "speedups up to 800 times over naive search" across complex
/// patterns.
fn sweep() {
    let walk = sweep_table(Workload::Walk);
    let saw = sweep_table(Workload::Sawtooth);
    println!(
        "{:<18} {:>13} {:>12} {:>12} {:>9} {:>9}",
        "pattern", "backtrack", "naive", "OPS", "vs-bt", "vs-naive"
    );
    let mut best: f64 = 0.0;
    for case in sweep_patterns() {
        let table = match case.workload {
            Workload::Walk => &walk,
            Workload::Sawtooth => &saw,
        };
        let bt = run_cost(&case.query, table, EngineKind::NaiveBacktrack);
        let naive = run_cost(&case.query, table, EngineKind::Naive);
        let ops = run_cost(&case.query, table, EngineKind::Ops);
        let s_bt = speedup(&bt, &ops);
        let s_naive = speedup(&naive, &ops);
        best = best.max(s_bt);
        println!(
            "{:<18} {:>13} {:>12} {:>12} {:>8.1}x {:>8.2}x",
            case.id, bt.tests, naive.tests, ops.tests, s_bt, s_naive
        );
    }
    println!(
        "\nmax speedup over the backtracking baseline: {best:.0}x \
         (paper: \"speedups up to 800 times over naive search\")"
    );
}

/// E7 — §8: forward vs reverse search and the direction heuristic.
fn reverse() {
    let queries = [
        ("double-bottom", DOUBLE_BOTTOM.to_string()),
        (
            "selective-tail",
            "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C) \
             WHERE A.price > A.previous.price AND B.price > B.previous.price \
             AND C.price = 1"
                .to_string(),
        ),
        (
            "selective-head",
            "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C) \
             WHERE A.price = 1 AND B.price > B.previous.price \
             AND C.price > C.previous.price"
                .to_string(),
        ),
    ];
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>10}",
        "query", "fwd tests", "rev tests", "hint", "hint ok"
    );
    for (id, src) in queries {
        let table = if id == "double-bottom" {
            djia(DJIA_SEED)
        } else {
            sweep_workload(20_000, 11)
        };
        let compiled = compile(&src, table.schema(), &CompileOptions::default()).unwrap();
        let clusters = table.cluster_by(&[], &["date"]).unwrap();
        let opts = SearchOptions {
            policy: FirstTuplePolicy::VacuousTrue,
        };
        let mut costs = Vec::new();
        for dir in [Direction::Forward, Direction::Reverse] {
            let counter = EvalCounter::new();
            let found = find_matches_directed(
                &compiled,
                &clusters[0],
                dir,
                EngineKind::Ops,
                &opts,
                &counter,
            );
            costs.push((counter.total(), found.len()));
        }
        let hint = direction_hint(&compiled);
        let better = if costs[0].0 <= costs[1].0 {
            Direction::Forward
        } else {
            Direction::Reverse
        };
        println!(
            "{:<16} {:>12} {:>12} {:>10} {:>10}",
            id,
            costs[0].0,
            costs[1].0,
            format!("{hint:?}"),
            hint == better
        );
    }
    println!("\npaper (§8): pick the direction with the larger average shift/next");
}

/// E8 — §5.1: compile-time cost of shift/next vs pattern length
/// (claimed O(m³)).
fn compile_cost() {
    use sqlts_core::matrices::{PrecondMatrices, Predicates};
    use sqlts_core::star_shift_next;
    println!("{:>4} {:>14} {:>14}", "m", "matrices", "shift/next");
    for m in [4usize, 8, 16, 32, 64] {
        // Build an m-element all-star pattern of alternating predicates.
        let vars: Vec<String> = (0..m).map(|i| format!("V{i}")).collect();
        let conds: Vec<String> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if i % 2 == 0 {
                    format!("{v}.price < {v}.previous.price")
                } else {
                    format!("{v}.price > {v}.previous.price")
                }
            })
            .collect();
        let src = format!(
            "SELECT FIRST(V0).date FROM t SEQUENCE BY date AS (*{}) WHERE {}",
            vars.join(", *"),
            conds.join(" AND ")
        );
        let q = compile(&src, &quote_schema(), &CompileOptions::default()).unwrap();
        let pattern = Predicates::new(&q.elements);
        let t0 = Instant::now();
        let pre = PrecondMatrices::build(pattern);
        let t_matrices = t0.elapsed();
        let t0 = Instant::now();
        let _sn = star_shift_next(pattern, &pre);
        let t_sn = t0.elapsed();
        println!("{m:>4} {t_matrices:>14.2?} {t_sn:>14.2?}");
    }
    println!("\npaper (§5.1): computing all shift/next pairs is O(m³)");
}

/// E9 — §8 extension: disjunctive conditions.
fn disjunction() {
    let table = sweep_workload(20_000, 13);
    let query = "SELECT A.date FROM t SEQUENCE BY date AS (A, B, C) \
                 WHERE (A.price < 2 OR A.price > 9) \
                 AND (B.price < 2 OR B.price > 9) \
                 AND B.price < A.previous.price + 20 \
                 AND C.price >= 4 AND C.price <= 6";
    let naive = run_cost(query, &table, EngineKind::Naive);
    let ops = run_cost(query, &table, EngineKind::Ops);
    println!(
        "disjunctive band pattern: naive = {} tests, OPS = {} tests, speedup {:.2}x, \
         matches agree: {}",
        naive.tests,
        ops.tests,
        speedup(&naive, &ops),
        naive.matches == ops.matches
    );
    println!(
        "(the DNF-lifted solver prunes shifts across OR-conditions; §8 'disjunctive conditions')"
    );
}

/// E11 — cluster-parallel execution of the E5 sweep patterns over a
/// many-symbol workload.
fn parallel() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let table = clustered_sweep_workload(64, 2_000, 7);
    println!("workload: 64 clusters x 2000 tuples; {threads} worker threads vs sequential\n");
    println!(
        "{:<18} {:>12} {:>9} {:>11} {:>11} {:>9} {:>6}",
        "pattern", "tests", "matches", "seq wall", "par wall", "speedup", "equal"
    );
    for case in sweep_patterns() {
        if case.workload != Workload::Walk {
            continue; // sawtooth cases are single-cluster by construction
        }
        let query = clustered_query(&case.query);
        let t0 = Instant::now();
        let seq = run_cost_threads(&query, &table, EngineKind::Ops, 1);
        let t_seq = t0.elapsed();
        let t0 = Instant::now();
        let par = run_cost_threads(&query, &table, EngineKind::Ops, threads);
        let t_par = t0.elapsed();
        println!(
            "{:<18} {:>12} {:>9} {:>11.2?} {:>11.2?} {:>8.2}x {:>6}",
            case.id,
            par.tests,
            par.matches,
            t_seq,
            t_par,
            t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
            seq.tests == par.tests && seq.matches == par.matches
        );
        assert_eq!(
            seq.tests, par.tests,
            "{}: cost metric must not depend on threads",
            case.id
        );
        assert_eq!(
            seq.matches, par.matches,
            "{}: matches must not depend on threads",
            case.id
        );
    }
    println!(
        "\nclusters are independent streams (§2), so the search fans out per \
         cluster; stats and output are merged in cluster order and are \
         identical for every thread count"
    );
}

/// E12 — machine-readable profiles: write `BENCH_*.json` artifacts, one
/// per workload, each holding the full [`ExecutionProfile`] of every
/// engine (the same JSON `sqlts --profile --metrics-format json` emits).
/// CI schema-validates and archives them; EXPERIMENTS.md's §7 rows are
/// reproducible from these files alone.
fn bench_json() {
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| "target/bench-json".to_string());
    std::fs::create_dir_all(&dir).expect("create bench-json output dir");
    let workloads: Vec<(&str, sqlts_relation::Table, String)> = vec![
        ("fig5", price_table(&FIG5_PRICES), EXAMPLE4.to_string()),
        ("double_bottom", djia(DJIA_SEED), DOUBLE_BOTTOM.to_string()),
        (
            "equality_kmp",
            kmp_workload(20_000, 4, 42),
            "SELECT X.date FROM t SEQUENCE BY date AS (X, Y, Z) \
             WHERE X.price = 0 AND Y.price = 1 AND Z.price = 0"
                .to_string(),
        ),
    ];
    // E13's artifact has a set-level shape instead of per-engine profiles:
    // the shared pass's counters plus the solo reference sum CI checks the
    // strict-savings acceptance against.
    {
        let table = clustered_sweep_workload(8, 3_000, 7);
        let family = pattern_set_family(8);
        let cost = pattern_set_cost(&family, &table, EngineKind::Ops);
        let body = format!(
            "{{\"experiment\":\"pattern_set\",\"queries\":{},\
             \"solo_predicate_tests\":{},\"matches\":{},\"set\":{}}}",
            family.len(),
            cost.solo_tests,
            cost.matches,
            cost.stats.to_json()
        );
        let path = format!("{dir}/BENCH_pattern_set.json");
        std::fs::write(&path, body).expect("write BENCH json");
        println!("wrote {path}");
    }
    for (id, table, query) in workloads {
        let mut body = String::from("{");
        body.push_str(&format!("\"experiment\":\"{id}\",\"engines\":{{"));
        for (i, engine) in [
            EngineKind::Naive,
            EngineKind::NaiveBacktrack,
            EngineKind::Ops,
        ]
        .iter()
        .enumerate()
        {
            let profile = run_profile(&query, &table, *engine);
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("\"{}\":{}", engine.name(), profile.to_json()));
        }
        body.push_str("}}");
        let path = format!("{dir}/BENCH_{id}.json");
        std::fs::write(&path, body).expect("write BENCH json");
        println!("wrote {path}");
    }
}

/// E13 — shared pattern-set execution: one pass over a prefix-sharing
/// family of standing queries vs one solo pass per query.  The logical
/// test count must equal the solo sum exactly (the bit-identity
/// guarantee), while the evaluated count drops with family size.
fn pattern_set() {
    let table = clustered_sweep_workload(8, 3_000, 7);
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "queries", "solo tests", "evaluated", "saved", "cross-query", "speedup"
    );
    for n in [2, 4, 8, 16] {
        let family = pattern_set_family(n);
        let cost = pattern_set_cost(&family, &table, EngineKind::Ops);
        assert_eq!(
            cost.stats.tests_logical, cost.solo_tests,
            "shared pass must charge exactly the solo sum"
        );
        println!(
            "{n:>8} {:>12} {:>12} {:>12} {:>12} {:>8.2}x",
            cost.solo_tests,
            cost.stats.tests_evaluated,
            cost.stats.tests_saved,
            cost.stats.tests_shared,
            cost.solo_tests as f64 / cost.stats.tests_evaluated.max(1) as f64,
        );
    }
    println!("\nper-query outputs are byte-identical to the solo runs at every family size");
}

/// E10 — ablation: full OPS vs shift-only vs naive.
fn ablation() {
    // Tiled Figure-5 sequence: the Example 4 pattern's next(3) = 2
    // genuinely skips re-checks here.
    let fig5_tiled: Vec<f64> = FIG5_PRICES.iter().cycle().take(15_000).copied().collect();
    let workloads: Vec<(&str, sqlts_relation::Table, String)> = vec![
        ("double-bottom", djia(DJIA_SEED), DOUBLE_BOTTOM.to_string()),
        (
            "example4-tiled",
            price_table(&fig5_tiled),
            EXAMPLE4.to_string(),
        ),
        (
            "chain-8",
            sweep_workload(20_000, 7),
            sweep_patterns()
                .into_iter()
                .find(|c| c.id == "chain-8")
                .unwrap()
                .query,
        ),
        (
            "equality-5",
            kmp_workload(20_000, 4, 21),
            sweep_patterns()
                .into_iter()
                .find(|c| c.id == "equality-5")
                .unwrap()
                .query,
        ),
    ];
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "workload", "naive", "shift-only", "full OPS", "next gain"
    );
    for (id, table, query) in workloads {
        let naive = run_cost(&query, &table, EngineKind::Naive);
        let shift_only = run_cost(&query, &table, EngineKind::OpsShiftOnly);
        let full = run_cost(&query, &table, EngineKind::Ops);
        println!(
            "{:<16} {:>12} {:>12} {:>12} {:>11.2}x",
            id,
            naive.tests,
            shift_only.tests,
            full.tests,
            shift_only.tests as f64 / full.tests.max(1) as f64
        );
        assert_eq!(naive.matches, full.matches);
        assert_eq!(shift_only.matches, full.matches);
    }
    println!("\n'next gain' isolates the contribution of the next() array on top of shift()");
}
