//! A recursive-descent parser for SQL-TS.
//!
//! Grammar (informally):
//!
//! ```text
//! query      := SELECT select_list FROM ident
//!               [CLUSTER BY ident_list] [SEQUENCE BY ident_list]
//!               AS '(' pattern_vars ')' [WHERE expr] [';']
//! select_list:= select_item (',' select_item)*
//! select_item:= expr [AS ident]
//! pattern_vars := ['*'] ident (',' ['*'] ident)*
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | cmp_expr
//! cmp_expr   := add_expr [cmp_op add_expr | [NOT] BETWEEN add_expr AND add_expr]
//! add_expr   := mul_expr (('+'|'-') mul_expr)*
//! mul_expr   := unary (('*'|'/') unary)*
//! unary      := '-' unary | primary
//! primary    := number | string | DATE string | '(' expr ')' | field_path
//! field_path := [FIRST|LAST '(' ident ')'] nav* '.' ident
//!             | ident ('.'|'->') (PREVIOUS|NEXT|ident) ...
//! ```

use crate::ast::*;
use crate::error::{LangError, Span};
use crate::lexer::{lex, Tok, Token};

/// Maximum expression nesting the parser accepts.  Each parenthesis
/// level, `NOT`, and unary minus costs one level; deeper input gets a
/// [`LangError`] instead of a stack overflow (the recursive-descent
/// parser recurses once per level, so unbounded input would otherwise
/// crash the process on adversarial queries).
pub const MAX_EXPR_DEPTH: usize = 128;

/// Parse a SQL-TS query string into an AST.
pub fn parse(src: &str) -> Result<Query, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
        depth: 0,
    };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src_len: usize,
    /// Current expression recursion depth (see [`MAX_EXPR_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek_span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or(Span::new(self.src_len, self.src_len))
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// `true` and consume if the next token is the keyword `kw`.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(id)) = self.peek() {
            if id.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(id)) if id.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), LangError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(LangError::new(
                format!("expected keyword {kw}"),
                self.peek_span(),
            ))
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<Span, LangError> {
        let span = self.peek_span();
        if self.eat(tok) {
            Ok(span)
        } else {
            Err(LangError::new(format!("expected {what}"), span))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), LangError> {
        let span = self.peek_span();
        match self.peek() {
            Some(Tok::Ident(id)) if !is_reserved(id) => {
                let id = id.clone();
                self.pos += 1;
                Ok((id, span))
            }
            _ => Err(LangError::new(format!("expected {what}"), span)),
        }
    }

    fn expect_end(&mut self) -> Result<(), LangError> {
        self.eat(&Tok::Semi);
        if self.pos != self.tokens.len() {
            return Err(LangError::new(
                "unexpected trailing input",
                self.peek_span(),
            ));
        }
        Ok(())
    }

    fn query(&mut self) -> Result<Query, LangError> {
        self.expect_kw("SELECT")?;
        let mut select = vec![self.select_item()?];
        while self.eat(&Tok::Comma) {
            select.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let (from, _) = self.ident("table name")?;

        let mut cluster_by = Vec::new();
        if self.eat_kw("CLUSTER") {
            self.expect_kw("BY")?;
            cluster_by = self.ident_list("cluster column")?;
        }
        let mut sequence_by = Vec::new();
        if self.eat_kw("SEQUENCE") {
            self.expect_kw("BY")?;
            sequence_by = self.ident_list("sequence column")?;
        }

        self.expect_kw("AS")?;
        self.expect(&Tok::LParen, "'(' opening the pattern")?;
        let mut pattern = vec![self.pattern_var()?];
        while self.eat(&Tok::Comma) {
            pattern.push(self.pattern_var()?);
        }
        self.expect(&Tok::RParen, "')' closing the pattern")?;

        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        Ok(Query {
            select,
            from,
            cluster_by,
            sequence_by,
            pattern,
            where_clause,
        })
    }

    fn ident_list(&mut self, what: &str) -> Result<Vec<String>, LangError> {
        let mut out = vec![self.ident(what)?.0];
        while self.eat(&Tok::Comma) {
            out.push(self.ident(what)?.0);
        }
        Ok(out)
    }

    fn pattern_var(&mut self) -> Result<PatternVar, LangError> {
        let star_span = self.peek_span();
        let star = self.eat(&Tok::Star);
        let (name, span) = self.ident("pattern variable")?;
        Ok(PatternVar {
            name,
            star,
            span: if star { star_span.merge(span) } else { span },
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, LangError> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident("output column alias")?.0)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    /// Run `f` one expression-nesting level deeper, rejecting input past
    /// [`MAX_EXPR_DEPTH`] with an error rather than overflowing the stack.
    fn with_depth<T>(
        &mut self,
        f: fn(&mut Parser) -> Result<T, LangError>,
    ) -> Result<T, LangError> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(LangError::new(
                format!("expression nesting exceeds {MAX_EXPR_DEPTH} levels"),
                self.peek_span(),
            ));
        }
        self.depth += 1;
        let out = f(self);
        self.depth -= 1;
        out
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.with_depth(Parser::or_expr)
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.not_expr()?;
        while self.at_kw("AND") {
            self.eat_kw("AND");
            let rhs = self.not_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, LangError> {
        if self.at_kw("NOT") {
            let span = self.peek_span();
            self.eat_kw("NOT");
            let inner = self.with_depth(Parser::not_expr)?;
            let span = span.merge(inner.span());
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
                span,
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        // `[NOT] BETWEEN lo AND hi`
        let negated = if self.at_kw("NOT") {
            // Only treat NOT as part of BETWEEN; a bare trailing NOT is an error anyway.
            self.eat_kw("NOT");
            if !self.at_kw("BETWEEN") {
                return Err(LangError::new(
                    "expected BETWEEN after NOT",
                    self.peek_span(),
                ));
            }
            true
        } else {
            false
        };
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            let span = lhs.span().merge(hi.span());
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
                span,
            });
        }
        let op = match self.peek() {
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            Some(Tok::Eq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            let span = lhs.span().merge(rhs.span());
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            });
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.peek() == Some(&Tok::Minus) {
            let span = self.peek_span();
            self.bump();
            let inner = self.with_depth(Parser::unary)?;
            let span = span.merge(inner.span());
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let span = self.peek_span();
        match self.peek().cloned() {
            Some(Tok::Number(value)) => {
                self.bump();
                Ok(Expr::Number { value, span })
            }
            Some(Tok::Str(value)) => {
                self.bump();
                Ok(Expr::Str { value, span })
            }
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("DATE") => {
                self.bump();
                let s = self.peek_span();
                match self.bump().map(|t| t.tok) {
                    Some(Tok::Str(value)) => Ok(Expr::DateLit {
                        value,
                        span: span.merge(s),
                    }),
                    _ => Err(LangError::new("expected string after DATE", s)),
                }
            }
            Some(Tok::Ident(id))
                if id.eq_ignore_ascii_case("FIRST") || id.eq_ignore_ascii_case("LAST") =>
            {
                let which = if id.eq_ignore_ascii_case("FIRST") {
                    FirstLast::First
                } else {
                    FirstLast::Last
                };
                self.bump();
                self.expect(&Tok::LParen, "'(' after FIRST/LAST")?;
                let (var, _) = self.ident("pattern variable")?;
                self.expect(&Tok::RParen, "')'")?;
                self.field_path(var, Some(which), span)
            }
            Some(Tok::Ident(id)) if !is_reserved(&id) => {
                self.bump();
                self.field_path(id, None, span)
            }
            _ => Err(LangError::new("expected expression", span)),
        }
    }

    /// Parse the `.nav*.attr` tail of a field path.  At least one `.`
    /// segment is required: a bare identifier is not an expression in
    /// SQL-TS (all data access goes through a pattern variable).
    fn field_path(
        &mut self,
        var: String,
        first_last: Option<FirstLast>,
        start: Span,
    ) -> Result<Expr, LangError> {
        let mut navs = Vec::new();
        let mut attr: Option<String> = None;
        let mut end = start;
        while self.eat(&Tok::Dot) || self.eat(&Tok::Arrow) {
            let (seg, seg_span) = self.ident("field name")?;
            end = seg_span;
            if seg.eq_ignore_ascii_case("previous") || seg.eq_ignore_ascii_case("prev") {
                navs.push(Nav::Previous);
            } else if seg.eq_ignore_ascii_case("next") {
                navs.push(Nav::Next);
            } else {
                attr = Some(seg);
                break;
            }
        }
        let attr = attr.ok_or_else(|| {
            LangError::new(
                format!("field path {var} must end in an attribute name (e.g. {var}.price)"),
                start.merge(end),
            )
        })?;
        Ok(Expr::Field {
            var,
            first_last,
            navs,
            attr,
            span: start.merge(end),
        })
    }
}

fn is_reserved(id: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "FROM", "WHERE", "AS", "AND", "OR", "NOT", "CLUSTER", "SEQUENCE", "BY", "BETWEEN",
    ];
    RESERVED.iter().any(|k| k.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlts_rational::Rational;

    #[test]
    fn parses_example1() {
        let q = parse(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
             WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price",
        )
        .unwrap();
        assert_eq!(q.from, "quote");
        assert_eq!(q.cluster_by, vec!["name"]);
        assert_eq!(q.sequence_by, vec!["date"]);
        assert_eq!(q.pattern.len(), 3);
        assert!(q.pattern.iter().all(|p| !p.star));
        let w = q.where_clause.unwrap();
        assert_eq!(
            w.to_string(),
            "((Y.price > (23/20 * X.price)) AND (Z.price < (4/5 * Y.price)))"
        );
    }

    #[test]
    fn parses_example2_with_star_and_previous() {
        let q = parse(
            "SELECT X.name, X.date AS start_date, Z.previous.date AS end_date \
             FROM quote CLUSTER BY name SEQUENCE BY date AS (X, *Y, Z) \
             WHERE Y.price < Y.previous.price AND Z.previous.price < 0.5 * X.price",
        )
        .unwrap();
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.select[1].alias.as_deref(), Some("start_date"));
        assert!(q.pattern[1].star);
        assert_eq!(q.pattern[1].name, "Y");
    }

    #[test]
    fn parses_example8_first_last() {
        let q = parse(
            "SELECT X.name, FIRST(X).date AS sdate, LAST(Z).date AS edate \
             FROM quote CLUSTER BY name SEQUENCE BY date AS (*X, *Y, *Z) \
             WHERE X.price > X.previous.price AND Y.price < Y.previous.price \
             AND Z.price > Z.previous.price",
        )
        .unwrap();
        assert_eq!(q.select[1].expr.to_string(), "FIRST(X).date");
        assert!(q.pattern.iter().all(|p| p.star));
    }

    #[test]
    fn sql3_arrow_navigation() {
        let q =
            parse("SELECT Z.previous->date FROM quote SEQUENCE BY date AS (Z) WHERE Z.price > 0")
                .unwrap();
        assert_eq!(q.select[0].expr.to_string(), "Z.previous.date");
        assert!(q.cluster_by.is_empty());
    }

    #[test]
    fn operator_precedence() {
        let q =
            parse("SELECT X.a FROM t AS (X) WHERE X.a < 1 + 2 * 3 AND X.b = 0 OR X.c = 1").unwrap();
        assert_eq!(
            q.where_clause.unwrap().to_string(),
            "(((X.a < (1 + (2 * 3))) AND (X.b = 0)) OR (X.c = 1))"
        );
    }

    #[test]
    fn not_and_parens() {
        let q = parse("SELECT X.a FROM t AS (X) WHERE NOT (X.a = 1 OR X.a = 2)").unwrap();
        assert_eq!(
            q.where_clause.unwrap().to_string(),
            "(NOT ((X.a = 1) OR (X.a = 2)))"
        );
    }

    #[test]
    fn between_sugar() {
        let q = parse("SELECT X.a FROM t AS (X) WHERE X.price BETWEEN 40 AND 50").unwrap();
        match q.where_clause.unwrap() {
            Expr::Between { negated, .. } => assert!(!negated),
            other => panic!("expected BETWEEN, got {other}"),
        }
        let q = parse("SELECT X.a FROM t AS (X) WHERE X.price NOT BETWEEN 40 AND 50").unwrap();
        assert!(matches!(
            q.where_clause.unwrap(),
            Expr::Between { negated: true, .. }
        ));
    }

    #[test]
    fn unary_minus() {
        let q = parse("SELECT X.a FROM t AS (X) WHERE X.a > -5").unwrap();
        assert_eq!(q.where_clause.unwrap().to_string(), "(X.a > (-5))");
    }

    #[test]
    fn number_literals_exact() {
        let q = parse("SELECT X.a FROM t AS (X) WHERE X.a = 1.15").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary { rhs, .. } => match *rhs {
                Expr::Number { value, .. } => assert_eq!(value, Rational::new(23, 20)),
                other => panic!("{other}"),
            },
            other => panic!("{other}"),
        }
    }

    #[test]
    fn date_literal() {
        let q = parse("SELECT X.a FROM t AS (X) WHERE X.date > DATE '1999-01-25'").unwrap();
        assert!(q
            .where_clause
            .unwrap()
            .to_string()
            .contains("DATE '1999-01-25'"));
    }

    #[test]
    fn missing_pieces_are_errors() {
        assert!(parse("SELECT FROM t AS (X)").is_err());
        assert!(parse("SELECT X.a FROM t").is_err()); // no AS pattern
        assert!(parse("SELECT X.a FROM t AS ()").is_err());
        assert!(parse("SELECT X.a FROM t AS (X) WHERE").is_err());
        assert!(parse("SELECT X.a FROM t AS (X) trailing").is_err());
        assert!(parse("SELECT X FROM t AS (X)").is_err()); // bare var is not an expression
    }

    #[test]
    fn errors_have_useful_spans() {
        let src = "SELECT X.a FROM t AS (X) WHERE X.a <";
        let err = parse(src).unwrap_err();
        assert!(err.span.start >= src.len() - 1);
        assert!(err.message.contains("expected expression"));
    }

    #[test]
    fn semicolon_allowed() {
        assert!(parse("SELECT X.a FROM t AS (X);").is_ok());
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert!(parse("SELECT X.a FROM select AS (X)").is_err());
    }

    #[test]
    fn multiple_cluster_and_sequence_columns() {
        let q = parse("SELECT X.a FROM t CLUSTER BY name, exchange SEQUENCE BY date, seq AS (X)")
            .unwrap();
        assert_eq!(q.cluster_by, vec!["name", "exchange"]);
        assert_eq!(q.sequence_by, vec!["date", "seq"]);
    }
}
