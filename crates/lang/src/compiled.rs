//! The compiled query IR consumed by the OPS optimizer and the engines.

use sqlts_constraints::{CmpOp, Formula};
use sqlts_rational::Rational;
use sqlts_relation::{ColumnType, Date, Schema};
use std::fmt;

/// A fully bound and compiled SQL-TS query.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    /// Source table name (informational; execution binds a [`Schema`]).
    pub table: String,
    /// `CLUSTER BY` column names.
    pub cluster_by: Vec<String>,
    /// `SEQUENCE BY` column names.
    pub sequence_by: Vec<String>,
    /// The pattern elements, in order.
    pub elements: Vec<PatternElement>,
    /// The compiled projection.
    pub projection: Vec<ProjItem>,
    /// The source schema the query was bound against.
    pub schema: Schema,
}

impl CompiledQuery {
    /// Pattern length `m`.
    pub fn pattern_len(&self) -> usize {
        self.elements.len()
    }

    /// `true` iff any element is starred.
    pub fn has_star(&self) -> bool {
        self.elements.iter().any(|e| e.star)
    }

    /// `true` iff every element's predicate is purely local (no references
    /// to the bindings of earlier elements).
    pub fn purely_local(&self) -> bool {
        self.elements.iter().all(|e| e.purely_local())
    }
}

/// One element of the search pattern: a variable, its star flag, and its
/// predicate.
#[derive(Clone, Debug)]
pub struct PatternElement {
    /// Variable name (`X`, `Y`, …).
    pub name: String,
    /// `true` iff the element is a greedy one-or-more repetition.
    pub star: bool,
    /// The conjuncts assigned to this element, runtime-evaluable.
    pub conjuncts: Vec<Conjunct>,
    /// The solver's view of the **local** conjuncts, in DNF.  Non-local
    /// conjuncts are excluded (the optimizer treats them per the gating
    /// rules in DESIGN.md §3).
    pub formula: Formula,
}

impl PatternElement {
    /// `true` iff every conjunct is local, i.e. the element's predicate is
    /// a function of the current tuple and its physical neighbours only.
    pub fn purely_local(&self) -> bool {
        self.conjuncts.iter().all(|c| c.local)
    }
}

/// One conjunct of an element's predicate.
#[derive(Clone, Debug)]
pub struct Conjunct {
    /// Runtime-evaluable boolean expression.
    pub expr: BoolExpr,
    /// `true` iff the conjunct references only the current tuple (via
    /// fixed physical offsets) — i.e. only [`Anchor::Cur`] field refs.
    pub local: bool,
    /// The original source text (for EXPLAIN output).
    pub display: String,
}

/// A boolean expression over scalar comparisons.
#[derive(Clone, Debug)]
pub enum BoolExpr {
    /// A comparison.
    Cmp {
        /// Left operand.
        lhs: ScalarExpr,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        rhs: ScalarExpr,
    },
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Constant.
    Const(bool),
}

/// A scalar expression.
#[derive(Clone, Debug)]
pub enum ScalarExpr {
    /// Numeric constant; exact value for the solver, pre-converted float
    /// for the runtime.
    Num {
        /// Exact value, used by the solver.
        exact: Rational,
        /// Pre-converted float, used by the runtime.
        approx: f64,
    },
    /// String constant.
    Str(String),
    /// Date constant (compares as its day number).
    Date(Date),
    /// A field access.
    Field(FieldRef),
    /// Arithmetic.
    Arith {
        /// The operator.
        op: ArithOp,
        /// Left operand.
        lhs: Box<ScalarExpr>,
        /// Right operand.
        rhs: Box<ScalarExpr>,
    },
    /// Arithmetic negation.
    Neg(Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Numeric constant helper.
    pub fn num(exact: Rational) -> ScalarExpr {
        let approx = exact.to_f64();
        ScalarExpr::Num { exact, approx }
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A bound field access: an anchor position plus a physical offset plus a
/// column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldRef {
    /// Where the access is rooted.
    pub anchor: Anchor,
    /// Physical offset in the stream relative to the anchor: `-1` is
    /// `previous`, `+1` is `next`, offsets accumulate over navigation
    /// chains and over the binder's adjacent-variable rewriting.
    pub offset: i32,
    /// Column index in the source schema.
    pub col: usize,
    /// The column's declared type.
    pub ty: ColumnType,
}

/// The root of a field access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Anchor {
    /// The tuple currently being tested against the element's predicate
    /// (valid only inside `WHERE` conjuncts).
    Cur,
    /// A tuple of an already-bound pattern element (non-local `WHERE`
    /// references and all `SELECT` references).
    Element {
        /// Element index (0-based).
        index: usize,
        /// Which end of the element's span.
        end: SpanEnd,
    },
}

/// Which end of an element's matched span a reference addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanEnd {
    /// The first tuple of the span.
    First,
    /// The last tuple of the span.
    Last,
}

/// One output column of the projection.
#[derive(Clone, Debug)]
pub struct ProjItem {
    /// The expression (anchored at elements; `Anchor::Cur` never occurs).
    pub expr: ScalarExpr,
    /// Output column name.
    pub name: String,
    /// Output column type.
    pub ty: ColumnType,
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            BoolExpr::And(a, b) => write!(f, "({a} AND {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} OR {b})"),
            BoolExpr::Not(e) => write!(f, "NOT ({e})"),
            BoolExpr::Const(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Num { exact, .. } => write!(f, "{exact}"),
            ScalarExpr::Str(s) => write!(f, "'{s}'"),
            ScalarExpr::Date(d) => write!(f, "DATE '{d}'"),
            ScalarExpr::Field(fr) => write!(f, "{fr}"),
            ScalarExpr::Arith { op, lhs, rhs } => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                };
                write!(f, "({lhs} {sym} {rhs})")
            }
            ScalarExpr::Neg(e) => write!(f, "(-{e})"),
        }
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.anchor {
            Anchor::Cur => write!(f, "cur")?,
            Anchor::Element { index, end } => {
                write!(
                    f,
                    "{}(#{})",
                    match end {
                        SpanEnd::First => "first",
                        SpanEnd::Last => "last",
                    },
                    index
                )?;
            }
        }
        match self.offset.cmp(&0) {
            std::cmp::Ordering::Less => write!(f, "{}", self.offset)?,
            std::cmp::Ordering::Greater => write!(f, "+{}", self.offset)?,
            std::cmp::Ordering::Equal => {}
        }
        write!(f, ".col{}", self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let fr = FieldRef {
            anchor: Anchor::Cur,
            offset: -1,
            col: 2,
            ty: ColumnType::Float,
        };
        let e = BoolExpr::Cmp {
            lhs: ScalarExpr::Field(fr),
            op: CmpOp::Lt,
            rhs: ScalarExpr::num(Rational::new(1, 2)),
        };
        assert_eq!(e.to_string(), "cur-1.col2 < 1/2");
        let el = FieldRef {
            anchor: Anchor::Element {
                index: 3,
                end: SpanEnd::Last,
            },
            offset: 1,
            col: 0,
            ty: ColumnType::Str,
        };
        assert_eq!(el.to_string(), "last(#3)+1.col0");
    }

    #[test]
    fn scalar_num_precomputes_float() {
        match ScalarExpr::num(Rational::new(23, 20)) {
            ScalarExpr::Num { approx, .. } => assert!((approx - 1.15).abs() < 1e-12),
            _ => unreachable!(),
        }
    }
}
