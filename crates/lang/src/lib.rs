#![warn(missing_docs)]

//! SQL-TS: the Simple Query Language for Time Series (paper §2).
//!
//! SQL-TS extends SQL's `FROM` clause with three constructs:
//!
//! * `CLUSTER BY c1, c2, …` — partition the input into independent streams;
//! * `SEQUENCE BY s1, s2, …` — order each stream;
//! * `AS (X, *Y, Z)` — a *pattern*: a sequence of tuple variables, where a
//!   leading `*` marks a greedy one-or-more repetition.
//!
//! The `WHERE` clause constrains the pattern variables, with `previous` /
//! `next` navigation to physically adjacent tuples, and the `SELECT` clause
//! projects from a match, additionally supporting `FIRST(V)` / `LAST(V)` to
//! address the ends of a starred variable's span.
//!
//! ```
//! use sqlts_lang::{compile, CompileOptions};
//! use sqlts_relation::{ColumnType, Schema};
//!
//! let schema = Schema::new([
//!     ("name", ColumnType::Str),
//!     ("date", ColumnType::Date),
//!     ("price", ColumnType::Float),
//! ]).unwrap();
//!
//! // Example 1 of the paper.
//! let q = compile(
//!     "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
//!      WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price",
//!     &schema,
//!     &CompileOptions::default(),
//! ).unwrap();
//! assert_eq!(q.elements.len(), 3);
//! assert!(q.elements.iter().all(|e| !e.star));
//! ```
//!
//! The crate compiles a query in three stages:
//!
//! 1. lexing — tokens with byte spans;
//! 2. [`parse`] — the surface [`ast`];
//! 3. [`compile`] — semantic analysis against a [`sqlts_relation::Schema`],
//!    producing a [`CompiledQuery`]: per-element predicate conjuncts in a
//!    runtime-evaluable form *plus* a [`sqlts_constraints::Formula`] view of
//!    the local conjuncts for the OPS optimizer, and a compiled projection.

pub mod ast;
mod binder;
mod compiled;
mod error;
mod eval;
mod lexer;
mod parser;

pub use binder::{compile, compile_ast, CompileOptions};
pub use compiled::{
    Anchor, BoolExpr, CompiledQuery, Conjunct, FieldRef, PatternElement, ProjItem, ScalarExpr,
    SpanEnd,
};
pub use error::{LangError, Span};
pub use eval::{eval_conjunct, eval_projection, eval_scalar, Bindings, EvalCtx, FirstTuplePolicy};
pub use parser::{parse, MAX_EXPR_DEPTH};
