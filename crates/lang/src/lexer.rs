//! The SQL-TS lexer.

use crate::error::{LangError, Span};
use sqlts_rational::Rational;

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (original case preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// Numeric literal, kept exact.
    Number(Rational),
    /// String literal (single quotes, `''` escape).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `->` (SQL3 navigation, equivalent to `.`)
    Arrow,
    /// `;`
    Semi,
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenize a query string.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => push(&mut tokens, Tok::LParen, start, &mut i, 1),
            b')' => push(&mut tokens, Tok::RParen, start, &mut i, 1),
            b',' => push(&mut tokens, Tok::Comma, start, &mut i, 1),
            b'.' if !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                push(&mut tokens, Tok::Dot, start, &mut i, 1)
            }
            b'*' => push(&mut tokens, Tok::Star, start, &mut i, 1),
            b'+' => push(&mut tokens, Tok::Plus, start, &mut i, 1),
            b';' => push(&mut tokens, Tok::Semi, start, &mut i, 1),
            b'/' => push(&mut tokens, Tok::Slash, start, &mut i, 1),
            b'=' => push(&mut tokens, Tok::Eq, start, &mut i, 1),
            b'-' if bytes.get(i + 1) == Some(&b'>') => {
                push(&mut tokens, Tok::Arrow, start, &mut i, 2)
            }
            b'-' => push(&mut tokens, Tok::Minus, start, &mut i, 1),
            b'<' => match bytes.get(i + 1) {
                Some(&b'=') => push(&mut tokens, Tok::Le, start, &mut i, 2),
                Some(&b'>') => push(&mut tokens, Tok::Ne, start, &mut i, 2),
                _ => push(&mut tokens, Tok::Lt, start, &mut i, 1),
            },
            b'>' => match bytes.get(i + 1) {
                Some(&b'=') => push(&mut tokens, Tok::Ge, start, &mut i, 2),
                _ => push(&mut tokens, Tok::Gt, start, &mut i, 1),
            },
            b'!' if bytes.get(i + 1) == Some(&b'=') => push(&mut tokens, Tok::Ne, start, &mut i, 2),
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LangError::new(
                                "unterminated string literal",
                                Span::new(start, i),
                            ))
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            // Strings are UTF-8; copy bytes verbatim.
                            let ch_len = utf8_len(b);
                            s.push_str(&src[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Token {
                    tok: Tok::Str(s),
                    span: Span::new(start, i),
                });
            }
            b'0'..=b'9' | b'.' => {
                let mut seen_dot = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || (bytes[i] == b'.' && !seen_dot))
                {
                    if bytes[i] == b'.' {
                        // A dot not followed by a digit terminates the
                        // number (it is a navigation dot, e.g. `1.` never
                        // occurs but `X.price` after a number cannot).
                        if !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                            break;
                        }
                        seen_dot = true;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let value: Rational = text.parse().map_err(|_| {
                    LangError::new(
                        format!("invalid numeric literal {text:?}"),
                        Span::new(start, i),
                    )
                })?;
                tokens.push(Token {
                    tok: Tok::Number(value),
                    span: Span::new(start, i),
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            other => {
                return Err(LangError::new(
                    format!("unexpected character {:?}", other as char),
                    Span::new(start, start + 1),
                ))
            }
        }
    }
    Ok(tokens)
}

fn push(tokens: &mut Vec<Token>, tok: Tok, start: usize, i: &mut usize, len: usize) {
    *i += len;
    tokens.push(Token {
        tok,
        span: Span::new(start, start + len),
    });
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_query_tokens() {
        let toks = kinds("SELECT X.name FROM quote");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("X".into()),
                Tok::Dot,
                Tok::Ident("name".into()),
                Tok::Ident("FROM".into()),
                Tok::Ident("quote".into()),
            ]
        );
    }

    #[test]
    fn numbers_are_exact() {
        let toks = kinds("1.15 0.80 42 .5");
        assert_eq!(
            toks,
            vec![
                Tok::Number(Rational::new(23, 20)),
                Tok::Number(Rational::new(4, 5)),
                Tok::Number(Rational::from_int(42)),
                Tok::Number(Rational::new(1, 2)),
            ]
        );
    }

    #[test]
    fn number_then_navigation_dot() {
        // `1.15*X.price`: the second dot is navigation, not decimal.
        let toks = kinds("1.15*X.price");
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[1], Tok::Star);
        assert_eq!(toks[3], Tok::Dot);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = <> !="),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::Ne
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            kinds("a->b"),
            kinds("a.b")
                .iter()
                .map(|t| match t {
                    Tok::Dot => Tok::Arrow,
                    other => other.clone(),
                })
                .collect::<Vec<_>>()
        );
        assert_eq!(kinds("a - b")[1], Tok::Minus);
    }

    #[test]
    fn string_literals_with_escape() {
        assert_eq!(kinds("'IBM'"), vec![Tok::Str("IBM".into())]);
        assert_eq!(kinds("'O''Hare'"), vec![Tok::Str("O'Hare".into())]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn comments_skipped() {
        let toks = kinds("SELECT -- the projection\n X");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = lex("ab  <=").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(4, 6));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT #").is_err());
        assert!(lex("price ? 5").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'café'"), vec![Tok::Str("café".into())]);
    }
}
