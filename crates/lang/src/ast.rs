//! The surface abstract syntax tree of SQL-TS.

use crate::error::Span;
use sqlts_rational::Rational;
use std::fmt;

/// A full SQL-TS query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// `SELECT` items.
    pub select: Vec<SelectItem>,
    /// `FROM` table name.
    pub from: String,
    /// `CLUSTER BY` columns (may be empty).
    pub cluster_by: Vec<String>,
    /// `SEQUENCE BY` columns.
    pub sequence_by: Vec<String>,
    /// `AS (X, *Y, …)` pattern variables in order.
    pub pattern: Vec<PatternVar>,
    /// `WHERE` condition, if any.
    pub where_clause: Option<Expr>,
}

/// One pattern variable of the `AS (…)` clause.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternVar {
    /// Variable name, e.g. `X`.
    pub name: String,
    /// `true` iff prefixed with `*` (greedy one-or-more repetition).
    pub star: bool,
    /// Source span of the variable.
    pub span: Span,
}

/// One item of the `SELECT` list.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

/// `FIRST(V)` / `LAST(V)` accessors for starred variables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FirstLast {
    /// `FIRST(V)` — the first tuple of V's span.
    First,
    /// `LAST(V)` — the last tuple of V's span.
    Last,
}

/// A navigation step in a field path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Nav {
    /// `.previous` — one tuple earlier in the stream.
    Previous,
    /// `.next` — one tuple later in the stream.
    Next,
}

/// A binary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// `true` for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// `true` for `+ - * /`.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

/// A unary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical `NOT`.
    Not,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Numeric literal (kept exact).
    Number {
        /// The exact value.
        value: Rational,
        /// Source span.
        span: Span,
    },
    /// String literal.
    Str {
        /// The string contents.
        value: String,
        /// Source span.
        span: Span,
    },
    /// `DATE 'YYYY-MM-DD'` literal, kept as text until binding.
    DateLit {
        /// The date text (`YYYY-MM-DD`).
        value: String,
        /// Source span.
        span: Span,
    },
    /// A field path: `X.price`, `Z.previous.date`, `FIRST(X).date`,
    /// `X.NEXT->price`.
    Field {
        /// Pattern variable name.
        var: String,
        /// `FIRST`/`LAST` wrapper, if any.
        first_last: Option<FirstLast>,
        /// Navigation steps, in order.
        navs: Vec<Nav>,
        /// Attribute (column) name.
        attr: String,
        /// Source span.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `e BETWEEN lo AND hi` (inclusive; sugar for two comparisons).
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// `true` for `NOT BETWEEN`.
        negated: bool,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Number { span, .. }
            | Expr::Str { span, .. }
            | Expr::DateLit { span, .. }
            | Expr::Field { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Between { span, .. } => *span,
        }
    }

    /// Collect the pattern-variable names mentioned, in first-occurrence
    /// order.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Field { var, .. } if !out.iter().any(|v| v.eq_ignore_ascii_case(var)) => {
                out.push(var.clone());
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.vars(out);
                rhs.vars(out);
            }
            Expr::Unary { expr, .. } => expr.vars(out),
            Expr::Between { expr, lo, hi, .. } => {
                expr.vars(out);
                lo.vars(out);
                hi.vars(out);
            }
            _ => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number { value, .. } => write!(f, "{value}"),
            Expr::Str { value, .. } => write!(f, "'{value}'"),
            Expr::DateLit { value, .. } => write!(f, "DATE '{value}'"),
            Expr::Field {
                var,
                first_last,
                navs,
                attr,
                ..
            } => {
                match first_last {
                    Some(FirstLast::First) => write!(f, "FIRST({var})")?,
                    Some(FirstLast::Last) => write!(f, "LAST({var})")?,
                    None => write!(f, "{var}")?,
                }
                for nav in navs {
                    match nav {
                        Nav::Previous => write!(f, ".previous")?,
                        Nav::Next => write!(f, ".next")?,
                    }
                }
                write!(f, ".{attr}")
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::Eq => "=",
                    BinOp::Ne => "<>",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                };
                write!(f, "({lhs} {sym} {rhs})")
            }
            Expr::Unary { op, expr, .. } => match op {
                UnOp::Neg => write!(f, "(-{expr})"),
                UnOp::Not => write!(f, "(NOT {expr})"),
            },
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
                ..
            } => write!(
                f,
                "({expr} {}BETWEEN {lo} AND {hi})",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_dedup_case_insensitive() {
        let e = Expr::Binary {
            op: BinOp::Lt,
            lhs: Box::new(Expr::Field {
                var: "X".into(),
                first_last: None,
                navs: vec![],
                attr: "price".into(),
                span: Span::default(),
            }),
            rhs: Box::new(Expr::Field {
                var: "x".into(),
                first_last: None,
                navs: vec![Nav::Previous],
                attr: "price".into(),
                span: Span::default(),
            }),
            span: Span::default(),
        };
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec!["X".to_string()]);
    }

    #[test]
    fn display_round() {
        let e = Expr::Field {
            var: "Z".into(),
            first_last: Some(FirstLast::Last),
            navs: vec![Nav::Previous],
            attr: "date".into(),
            span: Span::default(),
        };
        assert_eq!(e.to_string(), "LAST(Z).previous.date");
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Lt.is_arithmetic());
        assert!(BinOp::Mul.is_arithmetic());
        assert!(!BinOp::And.is_comparison());
    }
}
