//! Runtime evaluation of compiled predicates and projections.
//!
//! Engines evaluate element predicates millions of times, so the `WHERE`
//! path works over borrowed scalars and never allocates; the `SELECT` path
//! (once per match) produces owned [`Value`]s.

use crate::compiled::{Anchor, ArithOp, BoolExpr, Conjunct, FieldRef, ProjItem, ScalarExpr};
use sqlts_constraints::CmpOp;
use sqlts_relation::{Cluster, Value};

/// How predicates referencing tuples before the start (or after the end)
/// of a cluster evaluate.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FirstTuplePolicy {
    /// Comparisons touching an out-of-range tuple are **vacuously true**
    /// (the paper's worked example in §5 counts the first tuple as
    /// matching a `previous`-referencing star predicate).
    #[default]
    VacuousTrue,
    /// Comparisons touching an out-of-range tuple are false, so a pattern
    /// whose first element references `previous` can only match from the
    /// second tuple on.
    Fail,
}

/// The spans (inclusive start/end positions within a cluster) the pattern
/// elements have matched so far.  `spans[k]` is valid once element `k` has
/// completed; during matching of element `j` only `spans[..j]` is read.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    /// Per-element `(first, last)` positions, 0-based, inclusive.
    pub spans: Vec<(usize, usize)>,
}

impl Bindings {
    /// Bindings with capacity for an `m`-element pattern.
    pub fn with_capacity(m: usize) -> Bindings {
        Bindings {
            spans: Vec::with_capacity(m),
        }
    }
}

/// Evaluation context: the stream plus policy knobs.
pub struct EvalCtx<'a> {
    /// The cluster (stream) being searched.
    pub cluster: &'a Cluster<'a>,
    /// Out-of-range semantics.
    pub policy: FirstTuplePolicy,
}

/// A borrowed scalar produced during `WHERE` evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Scalar<'a> {
    Num(f64),
    Str(&'a str),
    Null,
    /// The referenced tuple lies outside the cluster (e.g. `previous` of
    /// the first tuple); resolves per [`FirstTuplePolicy`].
    OutOfRange,
}

/// Resolve a field reference to a stream position, if representable.
fn resolve_pos(f: &FieldRef, cur: usize, bindings: &Bindings) -> Option<isize> {
    let base = match f.anchor {
        Anchor::Cur => cur as isize,
        Anchor::Element { index, end } => {
            let (first, last) = *bindings.spans.get(index)?;
            match end {
                crate::compiled::SpanEnd::First => first as isize,
                crate::compiled::SpanEnd::Last => last as isize,
            }
        }
    };
    Some(base + f.offset as isize)
}

fn field_scalar<'a>(
    f: &FieldRef,
    ctx: &EvalCtx<'a>,
    cur: usize,
    bindings: &Bindings,
) -> Scalar<'a> {
    let pos = match resolve_pos(f, cur, bindings) {
        Some(p) => p,
        None => return Scalar::OutOfRange,
    };
    if pos < 0 || pos as usize >= ctx.cluster.len() {
        return Scalar::OutOfRange;
    }
    match &ctx.cluster.get(pos as usize)[f.col] {
        Value::Null => Scalar::Null,
        Value::Int(i) => Scalar::Num(*i as f64),
        Value::Float(x) => Scalar::Num(*x),
        Value::Str(s) => Scalar::Str(s),
        Value::Date(d) => Scalar::Num(f64::from(d.days())),
    }
}

/// Evaluate a scalar expression in `WHERE` mode.
fn eval_where_scalar<'a>(
    e: &'a ScalarExpr,
    ctx: &EvalCtx<'a>,
    cur: usize,
    bindings: &Bindings,
) -> Scalar<'a> {
    match e {
        ScalarExpr::Num { approx, .. } => Scalar::Num(*approx),
        ScalarExpr::Str(s) => Scalar::Str(s),
        ScalarExpr::Date(d) => Scalar::Num(f64::from(d.days())),
        ScalarExpr::Field(f) => field_scalar(f, ctx, cur, bindings),
        ScalarExpr::Neg(inner) => match eval_where_scalar(inner, ctx, cur, bindings) {
            Scalar::Num(x) => Scalar::Num(-x),
            other => other,
        },
        ScalarExpr::Arith { op, lhs, rhs } => {
            let l = eval_where_scalar(lhs, ctx, cur, bindings);
            let r = eval_where_scalar(rhs, ctx, cur, bindings);
            match (l, r) {
                (Scalar::OutOfRange, _) | (_, Scalar::OutOfRange) => Scalar::OutOfRange,
                (Scalar::Num(a), Scalar::Num(b)) => Scalar::Num(match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                }),
                _ => Scalar::Null,
            }
        }
    }
}

/// Evaluate one boolean expression in `WHERE` mode.
pub(crate) fn eval_bool(e: &BoolExpr, ctx: &EvalCtx<'_>, cur: usize, bindings: &Bindings) -> bool {
    match e {
        BoolExpr::Const(b) => *b,
        BoolExpr::And(a, b) => eval_bool(a, ctx, cur, bindings) && eval_bool(b, ctx, cur, bindings),
        BoolExpr::Or(a, b) => eval_bool(a, ctx, cur, bindings) || eval_bool(b, ctx, cur, bindings),
        BoolExpr::Not(inner) => !eval_bool(inner, ctx, cur, bindings),
        BoolExpr::Cmp { lhs, op, rhs } => {
            let l = eval_where_scalar(lhs, ctx, cur, bindings);
            let r = eval_where_scalar(rhs, ctx, cur, bindings);
            match (l, r) {
                (Scalar::OutOfRange, _) | (_, Scalar::OutOfRange) => {
                    ctx.policy == FirstTuplePolicy::VacuousTrue
                }
                (Scalar::Null, _) | (_, Scalar::Null) => false,
                (Scalar::Num(a), Scalar::Num(b)) => op.eval_f64(a, b),
                (Scalar::Str(a), Scalar::Str(b)) => match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                },
                // Cross-type comparisons are prevented at bind time.
                _ => false,
            }
        }
    }
}

/// Evaluate one conjunct of an element's predicate against the current
/// tuple.
pub fn eval_conjunct(c: &Conjunct, ctx: &EvalCtx<'_>, cur: usize, bindings: &Bindings) -> bool {
    eval_bool(&c.expr, ctx, cur, bindings)
}

/// Evaluate a scalar expression in `SELECT` mode, producing an owned value.
/// Out-of-range references project as NULL.
pub fn eval_scalar(e: &ScalarExpr, ctx: &EvalCtx<'_>, bindings: &Bindings) -> Value {
    match e {
        ScalarExpr::Num { exact, approx } => {
            if exact.is_integer() {
                Value::Int(exact.numer() as i64)
            } else {
                Value::Float(*approx)
            }
        }
        ScalarExpr::Str(s) => Value::Str(s.clone()),
        ScalarExpr::Date(d) => Value::Date(*d),
        ScalarExpr::Field(f) => {
            let pos = match resolve_pos(f, 0, bindings) {
                Some(p) => p,
                None => return Value::Null,
            };
            if pos < 0 || pos as usize >= ctx.cluster.len() {
                return Value::Null;
            }
            ctx.cluster.get(pos as usize)[f.col].clone()
        }
        ScalarExpr::Neg(inner) => match eval_scalar(inner, ctx, bindings) {
            Value::Int(i) => Value::Int(-i),
            Value::Float(x) => Value::Float(-x),
            _ => Value::Null,
        },
        ScalarExpr::Arith { op, lhs, rhs } => {
            let l = eval_scalar(lhs, ctx, bindings);
            let r = eval_scalar(rhs, ctx, bindings);
            match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => Value::Float(match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                }),
                _ => Value::Null,
            }
        }
    }
}

/// Evaluate the whole projection for a completed match.
pub fn eval_projection(items: &[ProjItem], ctx: &EvalCtx<'_>, bindings: &Bindings) -> Vec<Value> {
    items
        .iter()
        .map(|item| eval_scalar(&item.expr, ctx, bindings))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::{compile, CompileOptions};
    use sqlts_relation::{ColumnType, Date, Schema, Table};

    fn prices_table(prices: &[f64]) -> Table {
        let schema = Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for (i, &p) in prices.iter().enumerate() {
            t.push_row(vec![
                Value::from("IBM"),
                Value::Date(Date::from_days(i as i32)),
                Value::from(p),
            ])
            .unwrap();
        }
        t
    }

    fn compile_q(src: &str) -> crate::compiled::CompiledQuery {
        let schema = Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap();
        compile(src, &schema, &CompileOptions::default()).unwrap()
    }

    #[test]
    fn local_predicate_evaluation() {
        let t = prices_table(&[10.0, 9.0, 11.0]);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let ctx = EvalCtx {
            cluster: &clusters[0],
            policy: FirstTuplePolicy::Fail,
        };
        let q = compile_q(
            "SELECT X.date FROM t SEQUENCE BY date AS (X) \
             WHERE X.price < X.previous.price",
        );
        let c = &q.elements[0].conjuncts[0];
        let b = Bindings::default();
        assert!(!eval_conjunct(c, &ctx, 0, &b)); // no previous, Fail policy
        assert!(eval_conjunct(c, &ctx, 1, &b)); // 9 < 10
        assert!(!eval_conjunct(c, &ctx, 2, &b)); // 11 > 9
    }

    #[test]
    fn vacuous_policy_on_first_tuple() {
        let t = prices_table(&[10.0, 9.0]);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let ctx = EvalCtx {
            cluster: &clusters[0],
            policy: FirstTuplePolicy::VacuousTrue,
        };
        let q = compile_q(
            "SELECT X.date FROM t SEQUENCE BY date AS (X) \
             WHERE X.price < X.previous.price",
        );
        assert!(eval_conjunct(
            &q.elements[0].conjuncts[0],
            &ctx,
            0,
            &Bindings::default()
        ));
    }

    #[test]
    fn string_and_arith_comparisons() {
        let t = prices_table(&[10.0, 20.0]);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let ctx = EvalCtx {
            cluster: &clusters[0],
            policy: FirstTuplePolicy::Fail,
        };
        let q = compile_q(
            "SELECT X.date FROM t SEQUENCE BY date AS (X) \
             WHERE X.name = 'IBM' AND X.price * 2 + 1 > 40",
        );
        let b = Bindings::default();
        // Both conjuncts land on X.
        assert!(eval_conjunct(&q.elements[0].conjuncts[0], &ctx, 1, &b));
        assert!(eval_conjunct(&q.elements[0].conjuncts[1], &ctx, 1, &b)); // 41 > 40
        assert!(!eval_conjunct(&q.elements[0].conjuncts[1], &ctx, 0, &b)); // 21 < 40
    }

    #[test]
    fn nonlocal_conjunct_uses_bindings() {
        let t = prices_table(&[10.0, 8.0, 6.0, 9.0]);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let ctx = EvalCtx {
            cluster: &clusters[0],
            policy: FirstTuplePolicy::Fail,
        };
        // (X, *Y, Z): Z.price > X.price, non-local.
        let q = compile_q(
            "SELECT Z.date FROM t SEQUENCE BY date AS (X, *Y, Z) \
             WHERE Y.price < Y.previous.price AND Z.price > X.price",
        );
        let c = &q.elements[2].conjuncts[0];
        assert!(!c.local);
        // X bound to pos 0 (price 10), Y to 1..=2; test Z at pos 3 (price 9).
        let b = Bindings {
            spans: vec![(0, 0), (1, 2)],
        };
        assert!(!eval_conjunct(c, &ctx, 3, &b)); // 9 > 10 is false
        let t2 = prices_table(&[5.0, 4.0, 3.0, 9.0]);
        let clusters2 = t2.cluster_by(&[], &["date"]).unwrap();
        let ctx2 = EvalCtx {
            cluster: &clusters2[0],
            policy: FirstTuplePolicy::Fail,
        };
        assert!(eval_conjunct(c, &ctx2, 3, &b)); // 9 > 5
    }

    #[test]
    fn projection_with_first_last_and_navigation() {
        let t = prices_table(&[10.0, 8.0, 6.0, 9.0]);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let ctx = EvalCtx {
            cluster: &clusters[0],
            policy: FirstTuplePolicy::Fail,
        };
        let q = compile_q(
            "SELECT FIRST(Y).price AS a, LAST(Y).price AS b, X.NEXT.price AS c, \
             X.price + 1 AS d \
             FROM t SEQUENCE BY date AS (X, *Y) \
             WHERE Y.price < Y.previous.price",
        );
        let b = Bindings {
            spans: vec![(0, 0), (1, 2)],
        };
        let row = eval_projection(&q.projection, &ctx, &b);
        assert_eq!(row[0], Value::Float(8.0));
        assert_eq!(row[1], Value::Float(6.0));
        assert_eq!(row[2], Value::Float(8.0)); // X.next = pos 1
        assert_eq!(row[3], Value::Float(11.0));
    }

    #[test]
    fn projection_out_of_range_is_null() {
        let t = prices_table(&[10.0]);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let ctx = EvalCtx {
            cluster: &clusters[0],
            policy: FirstTuplePolicy::Fail,
        };
        let q = compile_q(
            "SELECT X.previous.price AS p FROM t SEQUENCE BY date AS (X) WHERE X.price > 0",
        );
        let b = Bindings {
            spans: vec![(0, 0)],
        };
        assert_eq!(eval_projection(&q.projection, &ctx, &b), vec![Value::Null]);
    }

    #[test]
    fn integer_literals_project_as_ints() {
        let t = prices_table(&[10.0]);
        let clusters = t.cluster_by(&[], &["date"]).unwrap();
        let ctx = EvalCtx {
            cluster: &clusters[0],
            policy: FirstTuplePolicy::Fail,
        };
        let q = compile_q("SELECT 42 AS k FROM t SEQUENCE BY date AS (X) WHERE X.price > 0");
        let b = Bindings {
            spans: vec![(0, 0)],
        };
        assert_eq!(
            eval_projection(&q.projection, &ctx, &b),
            vec![Value::Int(42)]
        );
    }
}
