//! Semantic analysis: binds a parsed [`ast::Query`] against a schema and
//! produces the [`CompiledQuery`] IR.
//!
//! Responsibilities:
//!
//! * validate pattern variables, cluster/sequence columns and field refs;
//! * split the `WHERE` clause into conjuncts and assign each to the
//!   **rightmost** pattern element it mentions (the element whose matching
//!   triggers its evaluation);
//! * rewrite references to adjacent non-star variables into physical
//!   `previous`-offsets (`Y.price > 1.15*X.price` over `AS (X, Y)` becomes
//!   a *local* predicate `cur.price > 1.15 · cur[-1].price`), which is what
//!   makes the paper's Examples 1 and 4 optimizable;
//! * classify conjuncts as local / non-local and build the per-element
//!   [`Formula`] the OPS optimizer reasons over;
//! * compile the `SELECT` list into element-anchored projections.

use crate::ast::{self, BinOp, Expr, FirstLast, Nav, UnOp};
use crate::compiled::*;
use crate::error::{LangError, Span};
use crate::parser::parse;
use sqlts_constraints::{Atom, CmpOp, Formula, System, Var};
use sqlts_rational::Rational;
use sqlts_relation::{ColumnType, Schema};
use std::collections::BTreeMap;

/// Options controlling compilation.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Assume every numeric column ranges over strictly positive values
    /// (true for prices), enabling the §6 ratio transform for
    /// `X op C·Y` predicates.  Default `true`, as in the paper.
    pub assume_positive_domains: bool,
    /// Bound on DNF expansion when normalizing disjunctive predicates for
    /// the optimizer.  Elements whose predicates exceed the bound are
    /// treated opaquely (sound, unoptimized).  Default 64.
    pub max_dnf: usize,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            assume_positive_domains: true,
            max_dnf: 64,
        }
    }
}

/// Parse and compile a SQL-TS query against `schema`.
pub fn compile(
    src: &str,
    schema: &Schema,
    options: &CompileOptions,
) -> Result<CompiledQuery, LangError> {
    compile_ast(&parse(src)?, schema, options)
}

/// Compile an already-parsed query.
pub fn compile_ast(
    query: &ast::Query,
    schema: &Schema,
    options: &CompileOptions,
) -> Result<CompiledQuery, LangError> {
    let binder = Binder {
        schema,
        options,
        vars: bind_pattern_vars(&query.pattern)?,
        pattern: &query.pattern,
    };

    for col in query.cluster_by.iter().chain(&query.sequence_by) {
        if schema.index_of(col).is_none() {
            return Err(LangError::new(
                format!("no such column: {col}"),
                Span::default(),
            ));
        }
    }

    // --- WHERE clause: split, assign, lower. ---
    let mut element_conjuncts: Vec<Vec<Conjunct>> = vec![Vec::new(); query.pattern.len()];
    if let Some(where_clause) = &query.where_clause {
        let mut conjuncts = Vec::new();
        split_conjuncts(where_clause, &mut conjuncts);
        for conjunct in conjuncts {
            let mut mentioned = Vec::new();
            conjunct.vars(&mut mentioned);
            let indices: Vec<usize> = mentioned
                .iter()
                .map(|v| binder.var_index(v, conjunct.span()))
                .collect::<Result<_, _>>()?;
            let target = indices.iter().copied().max().unwrap_or(0);
            let (expr, local) = binder.lower_bool(conjunct, Some(target))?;
            element_conjuncts[target].push(Conjunct {
                local,
                display: conjunct.to_string(),
                expr,
            });
        }
    }

    // --- Per-element optimizer formulas. ---
    let mut elements = Vec::with_capacity(query.pattern.len());
    for (i, pv) in query.pattern.iter().enumerate() {
        let conjuncts = std::mem::take(&mut element_conjuncts[i]);
        let formula = binder.build_formula(&pv.name, &conjuncts);
        elements.push(PatternElement {
            name: pv.name.clone(),
            star: pv.star,
            conjuncts,
            formula,
        });
    }

    // --- Projection. ---
    let mut projection = Vec::with_capacity(query.select.len());
    for (i, item) in query.select.iter().enumerate() {
        let (expr, ty) = binder.lower_projection(&item.expr)?;
        let name = item.alias.clone().unwrap_or_else(|| match &item.expr {
            Expr::Field { attr, .. } => attr.clone(),
            _ => format!("col{}", i + 1),
        });
        projection.push(ProjItem { expr, name, ty });
    }

    Ok(CompiledQuery {
        table: query.from.clone(),
        cluster_by: query.cluster_by.clone(),
        sequence_by: query.sequence_by.clone(),
        elements,
        projection,
        schema: schema.clone(),
    })
}

fn bind_pattern_vars(pattern: &[ast::PatternVar]) -> Result<BTreeMap<String, usize>, LangError> {
    let mut map = BTreeMap::new();
    for (i, pv) in pattern.iter().enumerate() {
        let key = pv.name.to_ascii_uppercase();
        if map.insert(key, i).is_some() {
            return Err(LangError::new(
                format!("duplicate pattern variable {}", pv.name),
                pv.span,
            ));
        }
    }
    Ok(map)
}

/// Split a boolean expression on top-level ANDs.
fn split_conjuncts<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
            ..
        } => {
            split_conjuncts(lhs, out);
            split_conjuncts(rhs, out);
        }
        other => out.push(other),
    }
}

/// Scalar type classes used by bind-time type checking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TyClass {
    Num,
    Str,
}

fn ty_class(ty: ColumnType) -> TyClass {
    match ty {
        ColumnType::Str => TyClass::Str,
        // Dates compare as day numbers.
        ColumnType::Int | ColumnType::Float | ColumnType::Date => TyClass::Num,
    }
}

struct Binder<'a> {
    schema: &'a Schema,
    options: &'a CompileOptions,
    vars: BTreeMap<String, usize>,
    pattern: &'a [ast::PatternVar],
}

impl Binder<'_> {
    fn var_index(&self, name: &str, span: Span) -> Result<usize, LangError> {
        self.vars
            .get(&name.to_ascii_uppercase())
            .copied()
            .ok_or_else(|| LangError::new(format!("unknown pattern variable {name}"), span))
    }

    /// Lower a boolean `WHERE` conjunct for element `target`
    /// (`target = None` lowers in projection mode).  Returns the runtime
    /// expression and whether it is local.
    fn lower_bool(
        &self,
        expr: &Expr,
        target: Option<usize>,
    ) -> Result<(BoolExpr, bool), LangError> {
        match expr {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
                ..
            } => {
                let (l, ll) = self.lower_bool(lhs, target)?;
                let (r, rl) = self.lower_bool(rhs, target)?;
                Ok((BoolExpr::And(Box::new(l), Box::new(r)), ll && rl))
            }
            Expr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
                ..
            } => {
                let (l, ll) = self.lower_bool(lhs, target)?;
                let (r, rl) = self.lower_bool(rhs, target)?;
                Ok((BoolExpr::Or(Box::new(l), Box::new(r)), ll && rl))
            }
            Expr::Unary {
                op: UnOp::Not,
                expr,
                ..
            } => {
                let (e, local) = self.lower_bool(expr, target)?;
                Ok((BoolExpr::Not(Box::new(e)), local))
            }
            Expr::Binary { op, lhs, rhs, span } if op.is_comparison() => {
                let (l, lt, ll) = self.lower_scalar(lhs, target)?;
                let (r, rt, rl) = self.lower_scalar(rhs, target)?;
                if lt != rt {
                    return Err(LangError::new(
                        format!("type mismatch in comparison: {lt:?} vs {rt:?}"),
                        *span,
                    ));
                }
                let op = match op {
                    BinOp::Lt => CmpOp::Lt,
                    BinOp::Le => CmpOp::Le,
                    BinOp::Gt => CmpOp::Gt,
                    BinOp::Ge => CmpOp::Ge,
                    BinOp::Eq => CmpOp::Eq,
                    BinOp::Ne => CmpOp::Ne,
                    _ => unreachable!("guarded by is_comparison"),
                };
                Ok((BoolExpr::Cmp { lhs: l, op, rhs: r }, ll && rl))
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
                span,
            } => {
                // e BETWEEN lo AND hi  ≡  e >= lo AND e <= hi.
                let (e, et, el) = self.lower_scalar(expr, target)?;
                let (l, lt, ll) = self.lower_scalar(lo, target)?;
                let (h, ht, hl) = self.lower_scalar(hi, target)?;
                if et != lt || et != ht {
                    return Err(LangError::new("type mismatch in BETWEEN", *span));
                }
                let both = BoolExpr::And(
                    Box::new(BoolExpr::Cmp {
                        lhs: e.clone(),
                        op: CmpOp::Ge,
                        rhs: l,
                    }),
                    Box::new(BoolExpr::Cmp {
                        lhs: e,
                        op: CmpOp::Le,
                        rhs: h,
                    }),
                );
                let out = if *negated {
                    BoolExpr::Not(Box::new(both))
                } else {
                    both
                };
                Ok((out, el && ll && hl))
            }
            other => Err(LangError::new("expected a boolean condition", other.span())),
        }
    }

    /// Lower a scalar expression.  `target = Some(j)` is WHERE-mode for
    /// element `j`; `None` is SELECT-mode.  Returns the compiled
    /// expression, its type class, and locality.
    fn lower_scalar(
        &self,
        expr: &Expr,
        target: Option<usize>,
    ) -> Result<(ScalarExpr, TyClass, bool), LangError> {
        match expr {
            Expr::Number { value, .. } => Ok((ScalarExpr::num(*value), TyClass::Num, true)),
            Expr::Str { value, .. } => Ok((ScalarExpr::Str(value.clone()), TyClass::Str, true)),
            Expr::DateLit { value, span } => {
                let date = value
                    .parse()
                    .map_err(|e| LangError::new(format!("{e}"), *span))?;
                Ok((ScalarExpr::Date(date), TyClass::Num, true))
            }
            Expr::Field {
                var,
                first_last,
                navs,
                attr,
                span,
            } => self.lower_field(var, *first_last, navs, attr, *span, target),
            Expr::Unary {
                op: UnOp::Neg,
                expr,
                span,
            } => {
                let (e, ty, local) = self.lower_scalar(expr, target)?;
                if ty != TyClass::Num {
                    return Err(LangError::new("cannot negate a string", *span));
                }
                Ok((ScalarExpr::Neg(Box::new(e)), TyClass::Num, local))
            }
            Expr::Binary { op, lhs, rhs, span } if op.is_arithmetic() => {
                let (l, lt, ll) = self.lower_scalar(lhs, target)?;
                let (r, rt, rl) = self.lower_scalar(rhs, target)?;
                if lt != TyClass::Num || rt != TyClass::Num {
                    return Err(LangError::new(
                        "arithmetic requires numeric operands",
                        *span,
                    ));
                }
                let op = match op {
                    BinOp::Add => ArithOp::Add,
                    BinOp::Sub => ArithOp::Sub,
                    BinOp::Mul => ArithOp::Mul,
                    BinOp::Div => ArithOp::Div,
                    _ => unreachable!("guarded by is_arithmetic"),
                };
                Ok((
                    ScalarExpr::Arith {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    TyClass::Num,
                    ll && rl,
                ))
            }
            other => Err(LangError::new("expected a scalar expression", other.span())),
        }
    }

    fn lower_field(
        &self,
        var: &str,
        first_last: Option<FirstLast>,
        navs: &[Nav],
        attr: &str,
        span: Span,
        target: Option<usize>,
    ) -> Result<(ScalarExpr, TyClass, bool), LangError> {
        let k = self.var_index(var, span)?;
        let col = self
            .schema
            .index_of(attr)
            .ok_or_else(|| LangError::new(format!("no such column: {attr}"), span))?;
        let ty = self.schema.columns()[col].ty;
        let nav_offset: i32 = navs
            .iter()
            .map(|n| match n {
                Nav::Previous => -1,
                Nav::Next => 1,
            })
            .sum();

        let field = |anchor: Anchor, offset: i32| {
            (
                ScalarExpr::Field(FieldRef {
                    anchor,
                    offset,
                    col,
                    ty,
                }),
                ty_class(ty),
            )
        };

        match target {
            // --- SELECT mode: everything anchors at elements. ---
            None => {
                let star = self.pattern[k].star;
                // A bare starred variable defaults to FIRST: the paper's
                // Example 8 writes `SELECT X.name` over `AS (*X, …)`.
                // Leading navigation picks the natural end (`V.previous`
                // steps back from the span start, `V.next` forward from
                // its end).
                let end = match (first_last, star, navs.first()) {
                    (Some(FirstLast::First), _, _) => SpanEnd::First,
                    (Some(FirstLast::Last), _, _) => SpanEnd::Last,
                    (None, false, _) => SpanEnd::First,
                    (None, true, Some(Nav::Next)) => SpanEnd::Last,
                    (None, true, _) => SpanEnd::First,
                };
                let (e, t) = field(Anchor::Element { index: k, end }, nav_offset);
                Ok((e, t, false))
            }
            // --- WHERE mode for element `j`. ---
            Some(j) => {
                if navs.contains(&Nav::Next) {
                    return Err(LangError::new(
                        "`next` navigation is not allowed in WHERE \
                         (the next tuple has not been read yet); use it in SELECT",
                        span,
                    ));
                }
                if k == j {
                    if first_last.is_some() {
                        return Err(LangError::new(
                            format!("FIRST/LAST of {var} cannot be used in {var}'s own condition"),
                            span,
                        ));
                    }
                    let (e, t) = field(Anchor::Cur, nav_offset);
                    return Ok((e, t, true));
                }
                debug_assert!(k < j, "conjunct assigned to rightmost variable");
                // Fixed-offset rewriting: valid when the current element
                // and everything between `k` and `j` is non-star, so the
                // distance from the current tuple to element k's tuple is
                // exactly j - k.
                let rewritable =
                    !self.pattern[j].star && self.pattern[k..j].iter().all(|p| !p.star);
                if rewritable {
                    let (e, t) = field(Anchor::Cur, nav_offset - (j - k) as i32);
                    return Ok((e, t, true));
                }
                // Non-local reference against element k's bound span.
                let end = match first_last {
                    Some(FirstLast::First) => SpanEnd::First,
                    Some(FirstLast::Last) => SpanEnd::Last,
                    None if !self.pattern[k].star => SpanEnd::First,
                    None => {
                        return Err(LangError::new(
                            format!(
                                "ambiguous reference to starred variable {var}; \
                                 use FIRST({var}) or LAST({var})"
                            ),
                            span,
                        ))
                    }
                };
                let (e, t) = field(Anchor::Element { index: k, end }, nav_offset);
                Ok((e, t, false))
            }
        }
    }

    fn lower_projection(&self, expr: &Expr) -> Result<(ScalarExpr, ColumnType), LangError> {
        let (e, _tyclass, _) = self.lower_scalar(expr, None)?;
        Ok((e.clone(), infer_column_type(&e)))
    }

    /// Build the optimizer's DNF view of an element's local conjuncts.
    fn build_formula(&self, element_name: &str, conjuncts: &[Conjunct]) -> Formula {
        let mut formula = Formula::conj(System::new());
        for c in conjuncts.iter().filter(|c| c.local) {
            let cf = match self.bool_to_formula(&c.expr, false) {
                Some(f) => f,
                None => Formula::conj(System::from_atoms([Atom::Opaque {
                    token: format!("{element_name}:{}", c.display),
                    negated: false,
                }])),
            };
            formula = match conjoin_formulas(&formula, &cf, self.options.max_dnf) {
                Some(f) => f,
                None => {
                    // DNF blow-up: fall back to a single opaque atom for
                    // the whole element (sound in both implication
                    // directions because the token is never shared).
                    return Formula::conj(System::from_atoms([Atom::Opaque {
                        token: format!("{element_name}:<dnf-overflow>"),
                        negated: false,
                    }]));
                }
            };
        }
        if self.options.assume_positive_domains {
            let positivized = formula
                .disjuncts()
                .iter()
                .map(|d| {
                    let mut d = d.clone();
                    for atom in d.atoms().to_vec() {
                        for v in atom.vars() {
                            if self.var_is_positive_domain(v) {
                                d.assume_positive(v);
                            }
                        }
                    }
                    d
                })
                .collect::<Vec<_>>();
            formula = Formula::disjunction(positivized);
        }
        formula
    }

    /// The positive-domain assumption applies to `Int`/`Float` columns
    /// (prices, volumes) but never to dates: day numbers are epoch-relative
    /// and can be negative, so assuming positivity would be unsound.
    fn var_is_positive_domain(&self, v: Var) -> bool {
        let col = (v.0 & ((1 << 20) - 1)) as usize;
        matches!(
            self.schema.columns().get(col).map(|c| c.ty),
            Some(ColumnType::Int | ColumnType::Float)
        )
    }

    /// Convert a boolean expression to DNF (as a [`Formula`]).  `negated`
    /// tracks NNF polarity.  Returns `None` when the expression is too
    /// large to normalize.
    fn bool_to_formula(&self, expr: &BoolExpr, negated: bool) -> Option<Formula> {
        match (expr, negated) {
            (BoolExpr::Const(b), neg) => {
                if *b != neg {
                    Some(Formula::conj(System::new()))
                } else {
                    Some(Formula::none())
                }
            }
            (BoolExpr::Not(e), neg) => self.bool_to_formula(e, !neg),
            (BoolExpr::And(a, b), false) | (BoolExpr::Or(a, b), true) => {
                let fa = self.bool_to_formula(a, negated)?;
                let fb = self.bool_to_formula(b, negated)?;
                conjoin_formulas(&fa, &fb, self.options.max_dnf)
            }
            (BoolExpr::Or(a, b), false) | (BoolExpr::And(a, b), true) => {
                let fa = self.bool_to_formula(a, negated)?;
                let fb = self.bool_to_formula(b, negated)?;
                let mut disjuncts = fa.disjuncts().to_vec();
                disjuncts.extend_from_slice(fb.disjuncts());
                if disjuncts.len() > self.options.max_dnf {
                    return None;
                }
                Some(Formula::disjunction(disjuncts))
            }
            (BoolExpr::Cmp { lhs, op, rhs }, neg) => {
                let op = if neg { op.negate() } else { *op };
                Some(Formula::conj(System::from_atoms([cmp_to_atom(
                    lhs, op, rhs,
                )])))
            }
        }
    }
}

/// Conjoin two DNF formulas by distribution, bounded by `max`.
fn conjoin_formulas(a: &Formula, b: &Formula, max: usize) -> Option<Formula> {
    if a.disjuncts().len() * b.disjuncts().len() > max {
        return None;
    }
    let mut out = Vec::with_capacity(a.disjuncts().len() * b.disjuncts().len());
    for da in a.disjuncts() {
        for db in b.disjuncts() {
            out.push(da.conjoin(db));
        }
    }
    Some(Formula::disjunction(out))
}

/// Encode a Cur-anchored field as a solver variable.
///
/// Layout: bits 0..20 = column index, bits 20.. = `previous` depth, so the
/// same (depth, column) pair always maps to the same id — which is exactly
/// the positional alignment the θ/φ implication checks require.
fn field_var(offset: i32, col: usize) -> Option<Var> {
    if offset > 0 {
        return None; // `next` never reaches the solver (rejected in WHERE)
    }
    let depth = (-offset) as u32;
    if depth > 2048 || col >= (1 << 20) {
        return None;
    }
    Some(Var((depth << 20) | col as u32))
}

/// An affine view of a scalar expression: `Σ coeffᵢ·fieldᵢ + konst`.
#[derive(Default)]
struct Affine {
    terms: BTreeMap<(i32, usize), Rational>, // (offset, col) -> coefficient
    konst: Rational,
}

impl Affine {
    fn constant(c: Rational) -> Affine {
        Affine {
            terms: BTreeMap::new(),
            konst: c,
        }
    }

    /// `None` when a coefficient overflows: the caller abandons the affine
    /// view and the comparison stays an opaque predicate.
    fn scale(mut self, s: Rational) -> Option<Affine> {
        for v in self.terms.values_mut() {
            *v = v.checked_mul(s).ok()?;
        }
        self.konst = self.konst.checked_mul(s).ok()?;
        Some(self)
    }

    /// `None` on coefficient overflow (see [`Affine::scale`]).
    fn add(mut self, other: Affine) -> Option<Affine> {
        for (k, v) in other.terms {
            let entry = self.terms.entry(k).or_insert(Rational::ZERO);
            *entry = entry.checked_add(v).ok()?;
        }
        self.terms.retain(|_, v| !v.is_zero());
        self.konst = self.konst.checked_add(other.konst).ok()?;
        Some(self)
    }

    fn neg(self) -> Option<Affine> {
        self.scale(-Rational::ONE)
    }
}

/// Try to view a Cur-anchored numeric scalar expression as affine.
fn affine(expr: &ScalarExpr) -> Option<Affine> {
    match expr {
        ScalarExpr::Num { exact, .. } => Some(Affine::constant(*exact)),
        ScalarExpr::Date(d) => Some(Affine::constant(Rational::from_int(d.days() as i128))),
        ScalarExpr::Str(_) => None,
        ScalarExpr::Field(f) => match f.anchor {
            Anchor::Cur if ty_class(f.ty) == TyClass::Num => {
                let mut terms = BTreeMap::new();
                terms.insert((f.offset, f.col), Rational::ONE);
                Some(Affine {
                    terms,
                    konst: Rational::ZERO,
                })
            }
            _ => None,
        },
        ScalarExpr::Neg(e) => affine(e)?.neg(),
        ScalarExpr::Arith { op, lhs, rhs } => {
            let l = affine(lhs)?;
            let r = affine(rhs)?;
            match op {
                ArithOp::Add => l.add(r),
                ArithOp::Sub => l.add(r.neg()?),
                ArithOp::Mul => {
                    if l.terms.is_empty() {
                        r.scale(l.konst)
                    } else if r.terms.is_empty() {
                        l.scale(r.konst)
                    } else {
                        None
                    }
                }
                ArithOp::Div => {
                    if r.terms.is_empty() && !r.konst.is_zero() {
                        l.scale(r.konst.checked_recip().ok()?)
                    } else {
                        None
                    }
                }
            }
        }
    }
}

/// Convert a comparison over compiled scalars to a solver [`Atom`].
fn cmp_to_atom(lhs: &ScalarExpr, op: CmpOp, rhs: &ScalarExpr) -> Atom {
    // Categorical: field vs string constant.
    if let (ScalarExpr::Field(f), ScalarExpr::Str(s)) = (lhs, rhs) {
        if let Some(atom) = cat_atom(f, op, s) {
            return atom;
        }
    }
    if let (ScalarExpr::Str(s), ScalarExpr::Field(f)) = (lhs, rhs) {
        if let Some(atom) = cat_atom(f, op.flip(), s) {
            return atom;
        }
    }

    // Numeric: move everything to one side, `diff op 0`.
    if let Some(atom) = numeric_atom(lhs, op, rhs) {
        return atom;
    }

    // Outside the fragment (or overflow): canonical opaque token.
    let (canon_op, negated) = match op {
        CmpOp::Eq | CmpOp::Lt | CmpOp::Le => (op, false),
        CmpOp::Ne => (CmpOp::Eq, true),
        CmpOp::Ge => (CmpOp::Lt, true),
        CmpOp::Gt => (CmpOp::Le, true),
    };
    Atom::Opaque {
        token: format!("{lhs} {canon_op} {rhs}"),
        negated,
    }
}

/// The affine fragment of [`cmp_to_atom`]: `None` when either side is not
/// affine in Cur-anchored fields, when the solver cannot index a variable,
/// or when any rational op overflows — in every case the comparison simply
/// stays opaque, which is always sound.
fn numeric_atom(lhs: &ScalarExpr, op: CmpOp, rhs: &ScalarExpr) -> Option<Atom> {
    let l = affine(lhs)?;
    let r = affine(rhs)?;
    let diff = l.add(r.neg()?)?;
    let fields: Vec<((i32, usize), Rational)> = diff.terms.iter().map(|(k, v)| (*k, *v)).collect();
    match fields.len() {
        0 => {
            // Constant comparison.
            Some(if op.eval(diff.konst, Rational::ZERO) {
                Atom::True
            } else {
                Atom::False
            })
        }
        1 => {
            let ((off, col), coeff) = fields[0];
            let var = field_var(off, col)?;
            // coeff·x + konst op 0  ≡  x op' (-konst/coeff)
            let op = if coeff.is_negative() { op.flip() } else { op };
            let c = diff.konst.checked_neg().ok()?.checked_div(coeff).ok()?;
            Some(Atom::VarConst { x: var, op, c })
        }
        2 => {
            let ((off1, col1), a) = fields[0];
            let ((off2, col2), b) = fields[1];
            let x = field_var(off1, col1)?;
            let y = field_var(off2, col2)?;
            // a·x + b·y + k op 0  ≡  x op' (-b/a)·y + (-k/a)
            let op = if a.is_negative() { op.flip() } else { op };
            let scale = b.checked_neg().ok()?.checked_div(a).ok()?;
            let add = diff.konst.checked_neg().ok()?.checked_div(a).ok()?;
            Some(Atom::VarVar {
                x,
                op,
                y,
                scale,
                add,
            })
        }
        _ => None,
    }
}

fn cat_atom(f: &FieldRef, op: CmpOp, s: &str) -> Option<Atom> {
    if f.anchor != Anchor::Cur || ty_class(f.ty) != TyClass::Str {
        return None;
    }
    let var = field_var(f.offset, f.col)?;
    match op {
        CmpOp::Eq => Some(Atom::Cat {
            x: var,
            value: s.to_string(),
            negated: false,
        }),
        CmpOp::Ne => Some(Atom::Cat {
            x: var,
            value: s.to_string(),
            negated: true,
        }),
        _ => None, // lexicographic string inequalities stay opaque
    }
}

fn infer_column_type(expr: &ScalarExpr) -> ColumnType {
    match expr {
        ScalarExpr::Num { exact, .. } => {
            if exact.is_integer() {
                ColumnType::Int
            } else {
                ColumnType::Float
            }
        }
        ScalarExpr::Str(_) => ColumnType::Str,
        ScalarExpr::Date(_) => ColumnType::Date,
        ScalarExpr::Field(f) => f.ty,
        ScalarExpr::Arith { .. } | ScalarExpr::Neg(_) => ColumnType::Float,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlts_tvl::Truth;

    fn quote_schema() -> Schema {
        Schema::new([
            ("name", ColumnType::Str),
            ("date", ColumnType::Date),
            ("price", ColumnType::Float),
        ])
        .unwrap()
    }

    fn opts() -> CompileOptions {
        CompileOptions::default()
    }

    #[test]
    fn example1_rewrites_adjacent_vars_to_local_predicates() {
        let q = compile(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
             WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert_eq!(q.elements.len(), 3);
        assert!(q.purely_local(), "adjacent non-star refs must become local");
        // X has no condition; Y and Z each have one local conjunct.
        assert!(q.elements[0].conjuncts.is_empty());
        assert_eq!(q.elements[1].conjuncts.len(), 1);
        assert_eq!(q.elements[2].conjuncts.len(), 1);
        assert!(q.elements[1].conjuncts[0].local);
    }

    #[test]
    fn example4_formulas_feed_the_solver() {
        let q = compile(
            "SELECT X.date AS start_date, X.price FROM quote CLUSTER BY name SEQUENCE BY date \
             AS (X, Y, Z, T, U) \
             WHERE X.name='IBM' AND Y.price < X.price AND Z.price < Y.price \
             AND 40 < Z.price AND Z.price < 50 AND T.price > Z.price AND T.price < 52 \
             AND U.price > T.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        // θ-style checks directly on the element formulas (1-based: p2..p5
        // in the paper's numbering start at element Y here).
        let p = |i: usize| &q.elements[i].formula;
        // p3 (Z) = price < prev ∧ 40 < price < 50; implies p2 (Y) = price < prev.
        assert!(p(2).implies(p(1)), "θ32-analogue");
        // p4 (T) rises, contradicts p2 (Y) falls.
        assert!(p(3).contradicts(p(1)));
        assert_eq!(p(2).satisfiability(), Truth::True);
    }

    #[test]
    fn example2_nonlocal_reference_detected() {
        let q = compile(
            "SELECT X.name, X.date AS start_date, Z.previous.date AS end_date \
             FROM quote CLUSTER BY name SEQUENCE BY date AS (X, *Y, Z) \
             WHERE Y.price < Y.previous.price AND Z.previous.price < 0.5 * X.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert!(q.elements[1].purely_local(), "star self-reference is local");
        assert!(
            !q.elements[2].purely_local(),
            "Z's condition references X across a star"
        );
        assert!(q.has_star());
    }

    #[test]
    fn star_self_reference_is_cur_prev() {
        let q = compile(
            "SELECT FIRST(X).date FROM quote SEQUENCE BY date AS (*X) \
             WHERE X.price > X.previous.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        let c = &q.elements[0].conjuncts[0];
        assert!(c.local);
        assert_eq!(c.expr.to_string(), "cur.col2 > cur-1.col2");
    }

    #[test]
    fn select_anchors() {
        let q = compile(
            "SELECT X.NEXT.date, X.NEXT.price, S.previous.date, S.previous.price \
             FROM quote SEQUENCE BY date AS (X, *Y, S) WHERE Y.price < 0.98 * Y.previous.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert_eq!(q.projection.len(), 4);
        match &q.projection[0].expr {
            ScalarExpr::Field(f) => {
                assert_eq!(
                    f.anchor,
                    Anchor::Element {
                        index: 0,
                        end: SpanEnd::First
                    }
                );
                assert_eq!(f.offset, 1);
            }
            other => panic!("{other}"),
        }
        assert_eq!(q.projection[0].name, "date");
        assert_eq!(q.projection[0].ty, ColumnType::Date);
        match &q.projection[2].expr {
            ScalarExpr::Field(f) => assert_eq!(f.offset, -1),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn first_last_projection_on_star() {
        let q = compile(
            "SELECT FIRST(X).date AS sdate, LAST(X).date AS edate \
             FROM quote SEQUENCE BY date AS (*X) WHERE X.price > 0",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert_eq!(q.projection[0].name, "sdate");
        match (&q.projection[0].expr, &q.projection[1].expr) {
            (ScalarExpr::Field(a), ScalarExpr::Field(b)) => {
                assert_eq!(
                    a.anchor,
                    Anchor::Element {
                        index: 0,
                        end: SpanEnd::First
                    }
                );
                assert_eq!(
                    b.anchor,
                    Anchor::Element {
                        index: 0,
                        end: SpanEnd::Last
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_star_var_in_select_defaults_to_first() {
        // Example 8 writes `SELECT X.name` over `AS (*X, …)`; the binder
        // anchors such references at the span start.
        let q = compile(
            "SELECT X.date FROM quote SEQUENCE BY date AS (*X) WHERE X.price > 0",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        match &q.projection[0].expr {
            ScalarExpr::Field(f) => assert_eq!(
                f.anchor,
                Anchor::Element {
                    index: 0,
                    end: SpanEnd::First
                }
            ),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn next_in_where_rejected() {
        let err = compile(
            "SELECT X.name FROM quote SEQUENCE BY date AS (X) WHERE X.next.price > 0",
            &quote_schema(),
            &opts(),
        )
        .unwrap_err();
        assert!(err.message.contains("next"), "{}", err.message);
    }

    #[test]
    fn unknown_var_and_column_errors() {
        let schema = quote_schema();
        assert!(compile(
            "SELECT W.name FROM quote SEQUENCE BY date AS (X) WHERE X.price > 0",
            &schema,
            &opts()
        )
        .unwrap_err()
        .message
        .contains("unknown pattern variable"));
        assert!(compile(
            "SELECT X.nope FROM quote SEQUENCE BY date AS (X) WHERE X.price > 0",
            &schema,
            &opts()
        )
        .unwrap_err()
        .message
        .contains("no such column"));
        assert!(compile(
            "SELECT X.name FROM quote CLUSTER BY ticker AS (X)",
            &schema,
            &opts()
        )
        .unwrap_err()
        .message
        .contains("no such column: ticker"));
    }

    #[test]
    fn duplicate_pattern_variable_rejected() {
        let err = compile(
            "SELECT X.name FROM quote SEQUENCE BY date AS (X, x)",
            &quote_schema(),
            &opts(),
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn type_mismatch_rejected() {
        let err = compile(
            "SELECT X.name FROM quote SEQUENCE BY date AS (X) WHERE X.name > 5",
            &quote_schema(),
            &opts(),
        )
        .unwrap_err();
        assert!(err.message.contains("type mismatch"));
        let err = compile(
            "SELECT X.name FROM quote SEQUENCE BY date AS (X) WHERE X.name + 1 = 2",
            &quote_schema(),
            &opts(),
        )
        .unwrap_err();
        assert!(err.message.contains("numeric"));
    }

    #[test]
    fn categorical_predicate_becomes_cat_atom() {
        let q = compile(
            "SELECT X.date FROM quote SEQUENCE BY date AS (X, Y) \
             WHERE X.name = 'IBM' AND Y.name <> 'IBM'",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert!(q.elements[0].formula.contradicts(&q.elements[1].formula));
    }

    #[test]
    fn disjunctive_condition_becomes_dnf() {
        let q = compile(
            "SELECT X.date FROM quote SEQUENCE BY date AS (X) \
             WHERE X.price < 10 OR X.price > 90",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert_eq!(q.elements[0].formula.disjuncts().len(), 2);
        // The band query contradicts the middle.
        let mid = compile(
            "SELECT X.date FROM quote SEQUENCE BY date AS (X) \
             WHERE X.price BETWEEN 20 AND 80",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert!(q.elements[0].formula.contradicts(&mid.elements[0].formula));
    }

    #[test]
    fn between_is_inclusive() {
        let q = compile(
            "SELECT X.date FROM quote SEQUENCE BY date AS (X) \
             WHERE X.price BETWEEN 40 AND 50",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        let f = &q.elements[0].formula;
        let exactly40 = compile(
            "SELECT X.date FROM quote SEQUENCE BY date AS (X) WHERE X.price = 40",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert!(!f.contradicts(&exactly40.elements[0].formula));
    }

    #[test]
    fn ratio_predicates_work_end_to_end() {
        // Example 10 flavour: a >2% drop implies a plain drop.
        let drop = compile(
            "SELECT X.date FROM djia SEQUENCE BY date AS (X) \
             WHERE X.price < 0.98 * X.previous.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        let falling = compile(
            "SELECT X.date FROM djia SEQUENCE BY date AS (X) \
             WHERE X.price < X.previous.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert!(drop.elements[0]
            .formula
            .implies(&falling.elements[0].formula));
        // Without the positive-domain assumption the proof must vanish.
        let no_pos = CompileOptions {
            assume_positive_domains: false,
            ..opts()
        };
        let drop2 = compile(
            "SELECT X.date FROM djia SEQUENCE BY date AS (X) \
             WHERE X.price < 0.98 * X.previous.price",
            &quote_schema(),
            &no_pos,
        )
        .unwrap();
        let falling2 = compile(
            "SELECT X.date FROM djia SEQUENCE BY date AS (X) \
             WHERE X.price < X.previous.price",
            &quote_schema(),
            &no_pos,
        )
        .unwrap();
        assert!(!drop2.elements[0]
            .formula
            .implies(&falling2.elements[0].formula));
    }

    #[test]
    fn constant_conjuncts_fold() {
        let q = compile(
            "SELECT X.date FROM quote SEQUENCE BY date AS (X) WHERE 1 < 2 AND X.price > 0",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        // The constant conjunct lands on element 0 and folds to TRUE in the
        // formula (satisfiable, no effect).
        assert_eq!(q.elements[0].formula.satisfiability(), Truth::True);
        assert_eq!(q.elements[0].conjuncts.len(), 2);
    }

    #[test]
    fn division_by_constant_normalizes() {
        // price / 2 < 25  ≡  price < 50.
        let a = compile(
            "SELECT X.date FROM quote SEQUENCE BY date AS (X) WHERE X.price / 2 < 25",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        let b = compile(
            "SELECT X.date FROM quote SEQUENCE BY date AS (X) WHERE X.price < 50",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert!(a.elements[0].formula.implies(&b.elements[0].formula));
        assert!(b.elements[0].formula.implies(&a.elements[0].formula));
    }

    #[test]
    fn first_last_in_own_where_rejected() {
        let err = compile(
            "SELECT FIRST(X).date FROM quote SEQUENCE BY date AS (*X) \
             WHERE FIRST(X).price > 0",
            &quote_schema(),
            &opts(),
        )
        .unwrap_err();
        assert!(err.message.contains("own condition"), "{}", err.message);
    }

    #[test]
    fn nonlocal_star_reference_requires_first_last() {
        let err = compile(
            "SELECT S.date FROM quote SEQUENCE BY date AS (*X, S) \
             WHERE X.price > X.previous.price AND S.price > X.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap_err();
        assert!(err.message.contains("FIRST"), "{}", err.message);
        // With FIRST() it binds.
        let q = compile(
            "SELECT S.date FROM quote SEQUENCE BY date AS (*X, S) \
             WHERE X.price > X.previous.price AND S.price > FIRST(X).price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert!(!q.elements[1].purely_local());
    }

    #[test]
    fn deep_previous_chains_stay_local() {
        let q = compile(
            "SELECT X.date FROM quote SEQUENCE BY date AS (X) \
             WHERE X.price > X.previous.previous.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        let c = &q.elements[0].conjuncts[0];
        assert!(c.local);
        assert_eq!(c.expr.to_string(), "cur.col2 > cur-2.col2");
    }

    #[test]
    fn rewriting_blocked_by_intervening_star() {
        // (X, *Y, Z): Z references X — cannot become a fixed offset.
        let q = compile(
            "SELECT Z.date FROM quote SEQUENCE BY date AS (X, *Y, Z) \
             WHERE Y.price < Y.previous.price AND Z.price > X.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert!(!q.elements[2].purely_local());
        // (X, Y, Z) all plain: it can.
        let q = compile(
            "SELECT Z.date FROM quote SEQUENCE BY date AS (X, Y, Z) \
             WHERE Z.price > X.price",
            &quote_schema(),
            &opts(),
        )
        .unwrap();
        assert!(q.elements[2].purely_local());
        assert_eq!(
            q.elements[2].conjuncts[0].expr.to_string(),
            "cur.col2 > cur-2.col2"
        );
    }
}
