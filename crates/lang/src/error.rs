//! Compilation errors with source spans.

use std::fmt;

/// A byte range in the query text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Span {
    /// A new span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// An error produced while lexing, parsing or binding a SQL-TS query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LangError {
    /// Human-readable description.
    pub message: String,
    /// Where in the query text the problem is.
    pub span: Span,
}

impl LangError {
    /// Construct an error at a span.
    pub fn new(message: impl Into<String>, span: Span) -> LangError {
        LangError {
            message: message.into(),
            span,
        }
    }

    /// Render the error with a caret line pointing into `source`.
    pub fn render(&self, source: &str) -> String {
        let mut out = format!("error: {}\n", self.message);
        // Find the line containing the span start.
        let start = self.span.start.min(source.len());
        let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = source[start..]
            .find('\n')
            .map_or(source.len(), |i| start + i);
        let line = &source[line_start..line_end];
        let lineno = source[..start].matches('\n').count() + 1;
        out.push_str(&format!("  line {lineno}: {line}\n"));
        let col = source[line_start..start].chars().count();
        let width = source[start..self.span.end.min(line_end)]
            .chars()
            .count()
            .max(1);
        out.push_str(&format!(
            "  {}{}{}\n",
            " ".repeat("line 1: ".len() + lineno.to_string().len() - 1),
            " ".repeat(col),
            "^".repeat(width)
        ));
        out
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (at bytes {}..{})",
            self.message, self.span.start, self.span.end
        )
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn render_points_at_problem() {
        let src = "SELECT X.nope FROM quote";
        let err = LangError::new("no such column: nope", Span::new(9, 13));
        let rendered = err.render(src);
        assert!(rendered.contains("no such column"));
        assert!(rendered.contains("line 1: SELECT X.nope FROM quote"));
        assert!(rendered.contains("^^^^"));
    }

    #[test]
    fn render_multiline() {
        let src = "SELECT X.a\nFROM quote\nWHERE ???";
        let err = LangError::new("unexpected token", Span::new(28, 31));
        let rendered = err.render(src);
        assert!(rendered.contains("line 3: WHERE ???"));
    }

    #[test]
    fn display_includes_offsets() {
        let err = LangError::new("boom", Span::new(1, 3));
        assert_eq!(err.to_string(), "boom (at bytes 1..3)");
    }
}
