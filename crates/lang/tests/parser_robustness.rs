//! Fuzz-style robustness: the compiler front end must *reject* garbage
//! with an error, never panic, on arbitrary input.

use proptest::prelude::*;
use sqlts_lang::{compile, parse, CompileOptions, MAX_EXPR_DEPTH};
use sqlts_relation::{ColumnType, Schema};

/// A query whose WHERE clause nests `depth` levels via the given
/// open/close delimiters around a trivially valid comparison.
fn nested_query(open: &str, close: &str, depth: usize) -> String {
    format!(
        "SELECT X.price FROM t AS (X) WHERE {}X.price > 1{}",
        open.repeat(depth),
        close.repeat(depth)
    )
}

#[test]
fn deep_parens_error_instead_of_overflowing() {
    // Comfortably parseable below the limit…
    assert!(parse(&nested_query("(", ")", 64)).is_ok());
    // …and a structured error, not a stack overflow, far above it.
    let err = parse(&nested_query("(", ")", 10_000)).unwrap_err();
    assert!(err.message.contains("nesting"), "{}", err.message);
}

#[test]
fn deep_not_chains_error_instead_of_overflowing() {
    assert!(parse(&nested_query("NOT ", "", 64)).is_ok());
    let err = parse(&nested_query("NOT ", "", 10_000)).unwrap_err();
    assert!(err.message.contains("nesting"), "{}", err.message);
}

#[test]
fn deep_unary_minus_chains_error_instead_of_overflowing() {
    // Space-separated so adjacent minuses don't lex as a `--` comment.
    let deep_minus = format!(
        "SELECT X.price FROM t AS (X) WHERE X.price > {}1",
        "- ".repeat(10_000)
    );
    let err = parse(&deep_minus).unwrap_err();
    assert!(err.message.contains("nesting"), "{}", err.message);
}

#[test]
fn depth_limit_boundary_is_exact_for_parens() {
    // One paren level costs one depth unit on top of the enclosing
    // expression, so MAX_EXPR_DEPTH - 1 parens parse and one more errors.
    assert!(parse(&nested_query("(", ")", MAX_EXPR_DEPTH - 1)).is_ok());
    assert!(parse(&nested_query("(", ")", MAX_EXPR_DEPTH)).is_err());
}

fn schema() -> Schema {
    Schema::new([
        ("name", ColumnType::Str),
        ("date", ColumnType::Date),
        ("price", ColumnType::Float),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]
    /// Arbitrary unicode soup: parse returns Ok or Err, never panics.
    #[test]
    fn parse_never_panics_on_arbitrary_input(input in ".{0,120}") {
        let _ = parse(&input);
    }

    /// Token soup drawn from the SQL-TS vocabulary: much likelier to get
    /// deep into the parser and binder.
    #[test]
    fn compile_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("AS"),
                Just("CLUSTER"), Just("SEQUENCE"), Just("BY"), Just("AND"),
                Just("OR"), Just("NOT"), Just("BETWEEN"), Just("FIRST"),
                Just("LAST"), Just("X"), Just("Y"), Just("price"),
                Just("name"), Just("date"), Just("previous"), Just("next"),
                Just("("), Just(")"), Just(","), Just("."), Just("*"),
                Just("+"), Just("-"), Just("/"), Just("<"), Just(">"),
                Just("="), Just("<="), Just(">="), Just("<>"), Just("1.5"),
                Just("42"), Just("'IBM'"), Just("->"),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = compile(&src, &schema(), &CompileOptions::default());
    }

    /// Every successfully parsed query renders back to text that parses
    /// again (Display round-trip at the expression level is exercised via
    /// the WHERE clause).
    #[test]
    fn where_display_reparses(
        a in 0i64..100, b in 0i64..100, c in 0i64..100,
    ) {
        let src = format!(
            "SELECT X.date FROM t SEQUENCE BY date AS (X, Y) \
             WHERE X.price > {a} AND (Y.price < {b} OR Y.price = {c}) \
             AND Y.price <> X.price"
        );
        let q = parse(&src).unwrap();
        let rendered = format!(
            "SELECT X.date FROM t SEQUENCE BY date AS (X, Y) WHERE {}",
            q.where_clause.as_ref().unwrap()
        );
        let q2 = parse(&rendered).unwrap();
        prop_assert_eq!(
            q.where_clause.as_ref().unwrap().to_string(),
            q2.where_clause.as_ref().unwrap().to_string()
        );
    }
}
