//! The binder produces two views of each element predicate: a
//! runtime-evaluable `BoolExpr` and a solver-facing `Formula`.  The OPS
//! optimizer's soundness rests on the two agreeing — an implication proven
//! over the formulas must hold for the predicates the engines actually
//! evaluate.  This test cross-checks them on randomized tuples.
//!
//! Constants are chosen binary-exact (halves/quarters) so the runtime's
//! f64 arithmetic matches the solver's exact rationals bit-for-bit.

use proptest::prelude::*;
use sqlts_constraints::Var;
use sqlts_lang::{compile, Bindings, CompileOptions, EvalCtx, FirstTuplePolicy};
use sqlts_rational::Rational;
use sqlts_relation::{ColumnType, Date, Schema, Table, Value};
use sqlts_tvl::Truth;

fn schema() -> Schema {
    Schema::new([
        ("name", ColumnType::Str),
        ("date", ColumnType::Date),
        ("price", ColumnType::Float),
    ])
    .unwrap()
}

/// Queries with a single pattern element whose predicate is purely local
/// and purely numeric (so the formula is exactly evaluable).
const QUERIES: &[&str] = &[
    "SELECT X.date FROM t SEQUENCE BY date AS (X) WHERE X.price < X.previous.price",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) WHERE X.price > 4 AND X.price < 9",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) WHERE X.price BETWEEN 3 AND 7",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) WHERE X.price NOT BETWEEN 3 AND 7",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) WHERE X.price < 0.5 * X.previous.price",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) WHERE X.price >= 0.25 * X.previous.price + 2",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) \
     WHERE X.price / 2 < X.previous.price - 1",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) \
     WHERE X.price < 5 OR X.price > 10",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) \
     WHERE NOT (X.price = 6 OR X.price > 11)",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) \
     WHERE X.price <> X.previous.price AND X.price <= 12",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) \
     WHERE X.price - X.previous.price > 1 AND X.price * 2 < 30",
    "SELECT X.date FROM t SEQUENCE BY date AS (X) \
     WHERE -X.price < -3",
];

/// Evaluate a formula under the tuple assignment: var id encodes
/// (previous-depth << 20 | column); column 2 is `price`.
fn formula_holds(formula: &sqlts_constraints::Formula, cur: i64, prev: i64) -> bool {
    let assign = |v: Var| {
        let depth = v.0 >> 20;
        let col = v.0 & ((1 << 20) - 1);
        assert_eq!(col, 2, "only the price column appears in these queries");
        Rational::from(if depth == 0 { cur } else { prev })
    };
    formula
        .disjuncts()
        .iter()
        .any(|d| d.eval_assignment(assign).expect("numeric-only formulas"))
}

fn two_row_table(prev: i64, cur: i64) -> Table {
    let mut t = Table::new(schema());
    for (i, p) in [(0, prev), (1, cur)] {
        t.push_row(vec![
            Value::from("T"),
            Value::Date(Date::from_days(i)),
            Value::from(p as f64),
        ])
        .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]
    #[test]
    fn formula_and_runtime_agree(
        qi in 0usize..QUERIES.len(),
        cur in 0i64..16,
        prev in 0i64..16,
    ) {
        let q = compile(QUERIES[qi], &schema(), &CompileOptions::default()).unwrap();
        let element = &q.elements[0];
        prop_assert!(element.purely_local());

        let table = two_row_table(prev, cur);
        let clusters = table.cluster_by(&[], &["date"]).unwrap();
        let ctx = EvalCtx {
            cluster: &clusters[0],
            policy: FirstTuplePolicy::Fail,
        };
        let bindings = Bindings::default();
        // Evaluate at position 1 so `previous` resolves.
        let runtime: bool = element
            .conjuncts
            .iter()
            .all(|c| sqlts_lang::eval_conjunct(c, &ctx, 1, &bindings));
        let formula = formula_holds(&element.formula, cur, prev);
        prop_assert_eq!(
            runtime, formula,
            "query {} on cur={}, prev={}: runtime={}, formula={}",
            QUERIES[qi], cur, prev, runtime, formula
        );
    }
}

#[test]
fn tautologies_and_contradictions_fold() {
    // `1 < 2` folds to a satisfiable TRUE formula, `2 < 1` to FALSE.
    let t = compile(
        "SELECT X.date FROM t SEQUENCE BY date AS (X) WHERE 1 < 2",
        &schema(),
        &CompileOptions::default(),
    )
    .unwrap();
    assert_eq!(t.elements[0].formula.satisfiability(), Truth::True);
    let f = compile(
        "SELECT X.date FROM t SEQUENCE BY date AS (X) WHERE 2 < 1",
        &schema(),
        &CompileOptions::default(),
    )
    .unwrap();
    assert_eq!(f.elements[0].formula.satisfiability(), Truth::False);
}
