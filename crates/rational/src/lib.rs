#![warn(missing_docs)]

//! Exact rational arithmetic for the SQL-TS constraint solver.
//!
//! The optimizer's implication and satisfiability tests (the GSW procedure
//! of §6 of the paper) must be *sound*: a wrong answer makes the optimized
//! search skip over real matches.  Query constants such as `1.15` or `0.98`
//! are not representable exactly in binary floating point, so the solver
//! works over exact rationals instead.
//!
//! [`Rational`] is a normalized fraction of two `i128`s.  The numerators and
//! denominators that arise in practice come from query literals and a few
//! additions/comparisons between them, so `i128` headroom is ample; all
//! arithmetic is checked and panics on overflow rather than silently wrapping
//! (a panic during query *compilation* is recoverable, a wrong θ entry is not).

mod rational;

pub use rational::{ParseRationalError, Rational};
