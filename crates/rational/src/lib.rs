#![warn(missing_docs)]

//! Exact rational arithmetic for the SQL-TS constraint solver.
//!
//! The optimizer's implication and satisfiability tests (the GSW procedure
//! of §6 of the paper) must be *sound*: a wrong answer makes the optimized
//! search skip over real matches.  Query constants such as `1.15` or `0.98`
//! are not representable exactly in binary floating point, so the solver
//! works over exact rationals instead.
//!
//! [`Rational`] is a normalized fraction of two `i128`s.  The numerators and
//! denominators that arise in practice come from query literals and a few
//! additions/comparisons between them, so `i128` headroom is ample.  All
//! arithmetic is exact: comparisons never overflow (they fall back to a
//! continued-fraction walk when cross products exceed `i128`), and every
//! operation has a `checked_*` form returning [`RationalOverflow`] so
//! callers can degrade gracefully — the solver drops an optimization rather
//! than computing a wrong θ entry.  The plain operators panic on overflow
//! rather than silently wrapping.

mod rational;

pub use rational::{ParseRationalError, Rational, RationalOverflow};
