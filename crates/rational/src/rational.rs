//! The [`Rational`] number type.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den`, always normalized so that
/// `den > 0` and `gcd(|num|, den) == 1`.
///
/// ```
/// use sqlts_rational::Rational;
/// let a: Rational = "1.15".parse().unwrap();
/// assert_eq!(a, Rational::new(23, 20));
/// assert_eq!(a * Rational::from(100), Rational::from(115));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128, // invariant: den > 0, gcd(|num|, den) == 1
}

/// Error returned when parsing a [`Rational`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    input: String,
}

/// Typed error for [`Rational`] arithmetic whose exact `i128` result would
/// overflow.
///
/// The checked constructors (`checked_add`, `checked_mul`, …) return this
/// instead of panicking, so query pipelines can degrade gracefully (skip
/// an optimization, fall back to an opaque predicate) rather than abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RationalOverflow;

impl fmt::Display for RationalOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rational arithmetic overflow (constants too large)")
    }
}

impl std::error::Error for RationalOverflow {}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {:?}", self.input)
    }
}

impl std::error::Error for ParseRationalError {}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "Rational denominator must be nonzero");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// Construct from an integer.
    pub const fn from_int(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// The numerator of the normalized fraction.
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The (positive) denominator of the normalized fraction.
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// `true` iff this value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` iff this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// `true` iff this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// `true` iff the denominator is 1.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "division by zero Rational");
        Rational::new(self.den, self.num)
    }

    /// Lossy conversion to `f64` (for display and workload generation only;
    /// never used inside the solver).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact conversion from an `f64` that carries a short decimal value
    /// (e.g. CSV data).  The value is rounded to 9 decimal digits, which is
    /// exact for every literal a query or generated price series produces.
    pub fn from_f64_lossy(x: f64) -> Rational {
        assert!(x.is_finite(), "cannot convert non-finite float to Rational");
        const SCALE: i128 = 1_000_000_000;
        let scaled = (x * SCALE as f64).round();
        assert!(
            scaled.abs() < (i64::MAX as f64),
            "float magnitude too large for exact conversion: {x}"
        );
        Rational::new(scaled as i128, SCALE)
    }

    /// `self + rhs`, or [`RationalOverflow`] if the exact result cannot be
    /// represented.
    pub fn checked_add(self, rhs: Rational) -> Result<Rational, RationalOverflow> {
        // Use the reduced common denominator to keep intermediates small:
        // a/b + c/d = (a·(d/g) + c·(b/g)) / (b·(d/g))  with g = gcd(b, d).
        let g = gcd(self.den, rhs.den);
        let rd = rhs.den / g;
        let ld = self.den / g;
        let n = self
            .num
            .checked_mul(rd)
            .and_then(|l| rhs.num.checked_mul(ld).and_then(|r| l.checked_add(r)))
            .ok_or(RationalOverflow)?;
        let d = self.den.checked_mul(rd).ok_or(RationalOverflow)?;
        Ok(Rational::new(n, d))
    }

    /// `self - rhs`, or [`RationalOverflow`] on overflow.
    pub fn checked_sub(self, rhs: Rational) -> Result<Rational, RationalOverflow> {
        self.checked_add(rhs.checked_neg()?)
    }

    /// `self * rhs`, or [`RationalOverflow`] on overflow.
    pub fn checked_mul(self, rhs: Rational) -> Result<Rational, RationalOverflow> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let an = self.num / g1;
        let bd = rhs.den / g1;
        let bn = rhs.num / g2;
        let ad = self.den / g2;
        let n = an.checked_mul(bn).ok_or(RationalOverflow)?;
        let d = ad.checked_mul(bd).ok_or(RationalOverflow)?;
        Ok(Rational::new(n, d))
    }

    /// `self / rhs`, or [`RationalOverflow`] on overflow.
    ///
    /// # Panics
    /// Panics if `rhs` is zero (division by zero is a logic error, not an
    /// overflow).
    pub fn checked_div(self, rhs: Rational) -> Result<Rational, RationalOverflow> {
        self.checked_mul(rhs.checked_recip()?)
    }

    /// `-self`, or [`RationalOverflow`] for the single unrepresentable
    /// numerator `i128::MIN`.
    pub fn checked_neg(self) -> Result<Rational, RationalOverflow> {
        Ok(Rational {
            num: self.num.checked_neg().ok_or(RationalOverflow)?,
            den: self.den,
        })
    }

    /// `1 / self`, or [`RationalOverflow`] if the numerator cannot change
    /// sign without overflow.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn checked_recip(self) -> Result<Rational, RationalOverflow> {
        assert!(self.num != 0, "division by zero Rational");
        if self.num == i128::MIN {
            return Err(RationalOverflow);
        }
        Ok(Rational::new(self.den, self.num))
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Rational {
        Rational::from_int(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Rational {
        Rational::from_int(n as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(rhs)
            .expect("Rational addition overflow (use checked_add to recover)")
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_sub(rhs)
            .expect("Rational subtraction overflow (use checked_sub to recover)")
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs)
            .expect("Rational multiplication overflow (use checked_mul to recover)")
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self.checked_div(rhs)
            .expect("Rational division overflow (use checked_div to recover)")
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.checked_neg()
            .expect("Rational negation overflow (use checked_neg to recover)")
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Fast path: a/b ? c/d  <=>  a*d ? c*b   (b, d > 0).
        if let (Some(lhs), Some(rhs)) = (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            return lhs.cmp(&rhs);
        }
        // Cross products overflow i128: compare signs, then fall back to an
        // overflow-free continued-fraction comparison of the magnitudes.
        match (self.num.signum(), other.num.signum()) {
            (ls, rs) if ls != rs => ls.cmp(&rs),
            (-1, -1) => cmp_pos_fracs(
                other.num.unsigned_abs(),
                other.den.unsigned_abs(),
                self.num.unsigned_abs(),
                self.den.unsigned_abs(),
            ),
            _ => cmp_pos_fracs(
                self.num.unsigned_abs(),
                self.den.unsigned_abs(),
                other.num.unsigned_abs(),
                other.den.unsigned_abs(),
            ),
        }
    }
}

/// Compare `an/ad` with `bn/bd` (all strictly positive) without overflow by
/// comparing continued-fraction expansions: equal integer parts descend to
/// the reciprocals of the fractional parts, which flips the ordering.
fn cmp_pos_fracs(mut an: u128, mut ad: u128, mut bn: u128, mut bd: u128) -> Ordering {
    loop {
        let qa = an / ad;
        let qb = bn / bd;
        if qa != qb {
            return qa.cmp(&qb);
        }
        let ra = an % ad;
        let rb = bn % bd;
        match (ra == 0, rb == 0) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {
                // ra/ad ? rb/bd  <=>  bd/rb ? ad/ra  (reciprocals flip).
                (an, ad, bn, bd) = (bd, rb, ad, ra);
            }
        }
    }
}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parse decimal literals (`"42"`, `"-3.25"`, `"1.15"`) and fraction
    /// literals (`"23/20"`).
    fn from_str(s: &str) -> Result<Rational, ParseRationalError> {
        let err = || ParseRationalError {
            input: s.to_string(),
        };
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let n: i128 = n.trim().parse().map_err(|_| err())?;
            let d: i128 = d.trim().parse().map_err(|_| err())?;
            if d == 0 {
                return Err(err());
            }
            return Ok(Rational::new(n, d));
        }
        let (sign, body) = match s.strip_prefix('-') {
            Some(rest) => (-1i128, rest),
            None => (1i128, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit() || b == b'.') {
            return Err(err());
        }
        match body.split_once('.') {
            None => {
                let n: i128 = body.parse().map_err(|_| err())?;
                Ok(Rational::from_int(sign * n))
            }
            Some((int_part, frac_part)) => {
                if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(err());
                }
                if frac_part.len() > 30 {
                    return Err(err());
                }
                let int_part: i128 = if int_part.is_empty() {
                    0
                } else {
                    int_part.parse().map_err(|_| err())?
                };
                let frac: i128 = frac_part.parse().map_err(|_| err())?;
                let scale = 10i128.checked_pow(frac_part.len() as u32).ok_or_else(err)?;
                let num = int_part
                    .checked_mul(scale)
                    .and_then(|v| v.checked_add(frac))
                    .ok_or_else(err)?;
                Ok(Rational::new(sign * num, scale))
            }
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert_eq!(Rational::new(6, 3).denom(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
        assert_eq!(a.recip(), Rational::from(2));
    }

    #[test]
    fn ordering() {
        let vals = [
            Rational::new(-3, 2),
            Rational::new(-1, 3),
            Rational::ZERO,
            Rational::new(1, 3),
            Rational::new(23, 20),
            Rational::from(2),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn parse_decimals() {
        assert_eq!("1.15".parse::<Rational>().unwrap(), Rational::new(23, 20));
        assert_eq!("0.98".parse::<Rational>().unwrap(), Rational::new(49, 50));
        assert_eq!("-3.25".parse::<Rational>().unwrap(), Rational::new(-13, 4));
        assert_eq!("42".parse::<Rational>().unwrap(), Rational::from(42));
        assert_eq!("+7".parse::<Rational>().unwrap(), Rational::from(7));
        assert_eq!(".5".parse::<Rational>().unwrap(), Rational::new(1, 2));
        assert_eq!("23/20".parse::<Rational>().unwrap(), Rational::new(23, 20));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "abc", "1.2.3", "1.", "1/0", "--2", "1e5"] {
            assert!(bad.parse::<Rational>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn float_round_trips() {
        assert_eq!(Rational::from_f64_lossy(1.15).to_f64(), 1.15);
        assert_eq!(Rational::from_f64_lossy(-0.5), Rational::new(-1, 2));
        assert_eq!(Rational::from_f64_lossy(0.0), Rational::ZERO);
    }

    #[test]
    fn predicates() {
        assert!(Rational::ZERO.is_zero());
        assert!(Rational::ONE.is_positive());
        assert!((-Rational::ONE).is_negative());
        assert!(Rational::from(5).is_integer());
        assert!(!Rational::new(1, 2).is_integer());
        assert_eq!(Rational::new(-3, 4).abs(), Rational::new(3, 4));
    }

    #[test]
    fn assign_ops() {
        let mut x = Rational::ONE;
        x += Rational::new(1, 2);
        assert_eq!(x, Rational::new(3, 2));
        x -= Rational::ONE;
        assert_eq!(x, Rational::new(1, 2));
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(23, 20).to_string(), "23/20");
        assert_eq!(Rational::from(7).to_string(), "7");
    }

    #[test]
    fn checked_ops_report_overflow() {
        let huge = Rational::from_int(i128::MAX);
        assert_eq!(huge.checked_add(Rational::ONE), Err(RationalOverflow));
        assert_eq!(huge.checked_mul(Rational::from(2)), Err(RationalOverflow));
        assert_eq!(
            huge.checked_sub(Rational::from_int(i128::MIN)),
            Err(RationalOverflow)
        );
        assert_eq!(
            Rational::from_int(i128::MIN).checked_neg(),
            Err(RationalOverflow)
        );
        assert_eq!(
            Rational::from_int(i128::MIN).checked_recip(),
            Err(RationalOverflow)
        );
        // In-range results still come through exactly.
        assert_eq!(
            huge.checked_mul(Rational::ONE),
            Ok(Rational::from_int(i128::MAX))
        );
        assert_eq!(
            Rational::new(1, 2).checked_add(Rational::new(1, 3)),
            Ok(Rational::new(5, 6))
        );
    }

    #[test]
    fn checked_ops_cross_reduce() {
        // Naive cross-multiplication of these would overflow i128; the
        // reduced forms stay exact.
        let a = Rational::new(i128::MAX, 3);
        assert_eq!(
            a.checked_mul(Rational::new(3, i128::MAX)),
            Ok(Rational::ONE)
        );
        let b = Rational::new(1, i128::MAX);
        assert_eq!(b.checked_add(b), Ok(Rational::new(2, i128::MAX)));
    }

    #[test]
    fn comparison_never_overflows() {
        // Cross products here exceed i128, so the continued-fraction
        // fallback must kick in.
        let a = Rational::new(i128::MAX, i128::MAX - 1);
        let b = Rational::new(i128::MAX - 1, i128::MAX - 2);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), core::cmp::Ordering::Equal);

        let c = Rational::new(-(i128::MAX), i128::MAX - 1);
        let d = Rational::new(-(i128::MAX - 1), i128::MAX - 2);
        assert!(d < c);
        assert!(c < b);

        assert!(Rational::new(i128::MAX, 2) > Rational::new(i128::MAX / 2, 3));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn rational() -> impl Strategy<Value = Rational> {
            (-10_000i128..10_000, 1i128..1_000).prop_map(|(n, d)| Rational::new(n, d))
        }

        proptest! {
            #[test]
            fn add_commutative(a in rational(), b in rational()) {
                prop_assert_eq!(a + b, b + a);
            }

            #[test]
            fn add_associative(a in rational(), b in rational(), c in rational()) {
                prop_assert_eq!((a + b) + c, a + (b + c));
            }

            #[test]
            fn mul_distributes(a in rational(), b in rational(), c in rational()) {
                prop_assert_eq!(a * (b + c), a * b + a * c);
            }

            #[test]
            fn sub_inverse(a in rational(), b in rational()) {
                prop_assert_eq!((a + b) - b, a);
            }

            #[test]
            fn ordering_consistent_with_f64(a in rational(), b in rational()) {
                // f64 has 53 bits; our test range keeps values exactly comparable.
                let (fa, fb) = (a.to_f64(), b.to_f64());
                if fa < fb { prop_assert!(a < b); }
                if fa > fb { prop_assert!(a > b); }
            }

            #[test]
            fn normalized_invariant(a in rational(), b in rational()) {
                let c = a * b;
                prop_assert!(c.denom() > 0);
                let g = super::super::gcd(c.numer(), c.denom());
                prop_assert!(g == 1 || c.numer() == 0);
            }

            #[test]
            fn division_inverts_multiplication(a in rational(), b in rational()) {
                if !b.is_zero() {
                    prop_assert_eq!((a * b) / b, a);
                    prop_assert_eq!((a / b) * b, a);
                }
            }

            #[test]
            fn recip_is_involution(a in rational()) {
                if !a.is_zero() {
                    prop_assert_eq!(a.recip().recip(), a);
                    prop_assert_eq!(a * a.recip(), Rational::ONE);
                }
            }

            #[test]
            fn abs_and_neg(a in rational()) {
                prop_assert_eq!((-a).abs(), a.abs());
                prop_assert_eq!(a + (-a), Rational::ZERO);
                prop_assert!(a.abs() >= a);
            }

            #[test]
            fn parse_display_round_trip(a in rational()) {
                let s = a.to_string();
                prop_assert_eq!(s.parse::<Rational>().unwrap(), a);
            }
        }
    }
}
