//! End-to-end tests for `sqlts trace-agg`: the aggregator must fold
//! both observability dialects — the batch `--trace` event stream and
//! the server span log — into a non-empty cost tree and well-formed
//! collapsed stacks, directly from files the other modes wrote.

use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_sqlts");

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlts-traceagg-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every collapsed line must be `frame;frame;frame count` with no
/// spaces inside frames and a parseable count.
fn assert_collapsed_well_formed(text: &str) {
    assert!(!text.trim().is_empty(), "collapsed output is empty");
    for line in text.lines() {
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no count in {line:?}"));
        assert!(stack.contains(';'), "single-frame stack in {line:?}");
        assert!(!stack.contains(' '), "space inside stack in {line:?}");
        assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
    }
}

#[test]
fn aggregates_a_real_batch_trace() {
    let dir = temp_dir("batch");
    let trace = dir.join("trace.jsonl");
    let out = Command::new(BIN)
        .args([
            "--demo-djia",
            "--trace",
            trace.to_str().unwrap(),
            "SELECT FIRST(Y).date AS from_d, Z.date AS to_d FROM djia SEQUENCE BY date \
             AS (*Y, Z) WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let folded = dir.join("trace.folded");
    let agg = Command::new(BIN)
        .args([
            "trace-agg",
            trace.to_str().unwrap(),
            "--collapsed",
            folded.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(agg.status.success(), "{agg:?}");
    let tree = String::from_utf8(agg.stdout).unwrap();
    assert!(tree.starts_with("batch trace:"), "{tree}");
    assert!(tree.contains("query  count="), "{tree}");
    assert!(tree.contains("cluster:0  count="), "{tree}");
    // The demo query certainly advances at least once.
    assert!(tree.contains("advance  count="), "{tree}");
    assert_collapsed_well_formed(&std::fs::read_to_string(&folded).unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aggregates_a_synthetic_span_log() {
    let dir = temp_dir("span");
    let log = dir.join("server.log.jsonl");
    // A hand-rolled but format-exact span log: one dispatch with a
    // nested fanout, one accept event, one torn span.
    std::fs::write(
        &log,
        "{\"ts\":1000,\"k\":\"ev\",\"lvl\":\"info\",\"name\":\"accept\",\"conn\":\"1\"}\n\
         {\"ts\":2000,\"k\":\"b\",\"lvl\":\"debug\",\"name\":\"dispatch\",\"id\":1,\"parent\":0,\"verb\":\"FEED\"}\n\
         {\"ts\":2500,\"k\":\"b\",\"lvl\":\"debug\",\"name\":\"fanout\",\"id\":2,\"parent\":1}\n\
         {\"ts\":4500,\"k\":\"e\",\"lvl\":\"debug\",\"name\":\"fanout\",\"id\":2}\n\
         {\"ts\":5000,\"k\":\"e\",\"lvl\":\"debug\",\"name\":\"dispatch\",\"id\":1,\"ok\":\"1\"}\n\
         {\"ts\":6000,\"k\":\"b\",\"lvl\":\"warn\",\"name\":\"drain\",\"id\":3,\"parent\":0}\n",
    )
    .unwrap();
    let folded = dir.join("span.folded");
    let agg = Command::new(BIN)
        .args([
            "trace-agg",
            log.to_str().unwrap(),
            "--collapsed",
            folded.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(agg.status.success(), "{agg:?}");
    let tree = String::from_utf8(agg.stdout).unwrap();
    assert!(tree.starts_with("span log:"), "{tree}");
    assert!(
        tree.contains("1 span(s) had no end record"),
        "torn drain span surfaces: {tree}"
    );
    // dispatch: incl 3000, fanout child 2000 → self 1000.
    assert!(
        tree.contains("dispatch  count=1 incl_ns=3000 self_ns=1000"),
        "{tree}"
    );
    assert!(
        tree.contains("fanout  count=1 incl_ns=2000 self_ns=2000"),
        "{tree}"
    );
    assert!(tree.contains("accept  count=1"), "{tree}");
    let collapsed = std::fs::read_to_string(&folded).unwrap();
    assert_collapsed_well_formed(&collapsed);
    assert!(collapsed.contains("serve;dispatch 1000\n"), "{collapsed}");
    assert!(
        collapsed.contains("serve;dispatch;fanout 2000\n"),
        "{collapsed}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_and_missing_file_exit_codes() {
    let no_args = Command::new(BIN).arg("trace-agg").output().unwrap();
    assert_eq!(no_args.status.code(), Some(2), "{no_args:?}");
    let missing = Command::new(BIN)
        .args(["trace-agg", "/nonexistent/nope.jsonl"])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(3), "{missing:?}");
}
