//! End-to-end tests for `--follow`: the streaming driver must agree with
//! the batch path bit-for-bit, survive a kill/resume cycle through its
//! checkpoint file, and map the bad-tuple policies to the documented exit
//! codes.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_sqlts");
const SCHEMA: &str = "name:str,day:int,price:float";
const QUERY: &str = "SELECT X.name, Z.day AS day FROM quote \
                     CLUSTER BY name SEQUENCE BY day AS (X, *Y, Z) \
                     WHERE Y.price > Y.previous.price AND Z.price < Z.previous.price";

/// Deterministic zig-zag series over two clusters: plenty of matches, no
/// randomness, no filesystem fixtures.
fn csv() -> String {
    let mut out = String::from("name,day,price\n");
    for day in 0..120i64 {
        for (name, phase) in [("AAA", 0), ("BBB", 1)] {
            let price = 100 + ((day + phase) % 7) * 3 - ((day + phase) % 3) * 5;
            out.push_str(&format!("{name},{day},{price}\n"));
        }
    }
    out
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlts-follow-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the binary with `args`, piping `stdin` in, and capture everything.
fn sqlts(args: &[&str], stdin: &str) -> Output {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    child.wait_with_output().unwrap()
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

#[test]
fn follow_matches_batch_exactly() {
    let dir = scratch("batch");
    let data = csv();
    let csv_path = dir.join("data.csv");
    std::fs::write(&csv_path, &data).unwrap();

    let batch = sqlts(
        &[
            "--csv",
            csv_path.to_str().unwrap(),
            "--schema",
            SCHEMA,
            QUERY,
        ],
        "",
    );
    assert!(batch.status.success(), "{batch:?}");
    let follow = sqlts(&["--follow", "--schema", SCHEMA, QUERY], &data);
    assert!(follow.status.success(), "{follow:?}");
    assert_eq!(stdout(&batch), stdout(&follow));
}

#[test]
fn feed_limit_checkpoint_then_resume_matches_batch() {
    let dir = scratch("resume");
    let data = csv();
    let csv_path = dir.join("data.csv");
    std::fs::write(&csv_path, &data).unwrap();
    let cp = dir.join("cp.txt");
    let cp_str = cp.to_str().unwrap();

    let batch = sqlts(
        &[
            "--csv",
            csv_path.to_str().unwrap(),
            "--schema",
            SCHEMA,
            QUERY,
        ],
        "",
    );
    assert!(batch.status.success());

    // Run 1: stop after 100 records.  No result is printed — the stream is
    // deliberately left unfinished, with its state in the checkpoint file.
    let first = sqlts(
        &[
            "--follow",
            "--schema",
            SCHEMA,
            "--checkpoint",
            cp_str,
            "--feed-limit",
            "100",
            QUERY,
        ],
        &data,
    );
    assert!(first.status.success(), "{first:?}");
    assert!(
        stdout(&first).is_empty(),
        "unfinished stream printed output"
    );
    assert!(cp.exists());

    // Run 2: resume from the checkpoint with the remaining tuples (header
    // line + data lines 102..; 100 records = data lines 2..=101).
    let mut rest = String::new();
    for (i, line) in data.lines().enumerate() {
        if i == 0 || i > 100 {
            rest.push_str(line);
            rest.push('\n');
        }
    }
    let second = sqlts(
        &[
            "--follow",
            "--schema",
            SCHEMA,
            "--checkpoint",
            cp_str,
            QUERY,
        ],
        &rest,
    );
    assert!(second.status.success(), "{second:?}");
    assert_eq!(stdout(&batch), stdout(&second));
    let err = String::from_utf8(second.stderr.clone()).unwrap();
    assert!(err.contains("resuming from"), "{err}");
    assert!(err.contains("100 records"), "{err}");
}

#[test]
fn quarantine_cap_exceeded_exits_5() {
    let bad = "name,day,price\nAAA,1,100\nGARBAGE\nAAA,nope,3\nAAA,2,101\n";
    let out = sqlts(
        &[
            "--follow",
            "--schema",
            SCHEMA,
            "--on-bad-tuple",
            "quarantine:1",
            QUERY,
        ],
        bad,
    );
    assert_eq!(out.status.code(), Some(5), "{out:?}");
    let err = String::from_utf8(out.stderr.clone()).unwrap();
    assert!(err.contains("quarantine full"), "{err}");
}

#[test]
fn skip_policy_drops_bad_and_out_of_order_tuples() {
    // One unparsable line and one out-of-order record (day 1 after day 4).
    let bad = "name,day,price\nAAA,1,100\nAAA,nope,3\nAAA,2,150\nAAA,4,90\nAAA,1,50\nAAA,5,160\nAAA,6,80\n";
    let out = sqlts(
        &[
            "--follow",
            "--schema",
            SCHEMA,
            "--on-bad-tuple",
            "skip",
            QUERY,
        ],
        bad,
    );
    assert!(out.status.success(), "{out:?}");
    let err = String::from_utf8(out.stderr.clone()).unwrap();
    assert!(err.contains("2 bad tuple(s) skipped"), "{err}");
    // The surviving stream (100, 150, 90, 160, 80) yields one match:
    // rise to 150, fall to 90 at day 4.  The second rise starts on the
    // first match's closing tuple, and matches do not overlap.
    assert_eq!(stdout(&out), "name,day\nAAA,4\n");
}

#[test]
fn default_fail_policy_exits_3_on_bad_input() {
    let bad = "name,day,price\nAAA,1,100\nAAA,nope,3\n";
    let out = sqlts(&["--follow", "--schema", SCHEMA, QUERY], bad);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}
