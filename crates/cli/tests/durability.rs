//! End-to-end crash-safety tests for `sqlts serve --data-dir`: a real
//! server process with a real durable directory, killed for real.
//!
//! The load-bearing invariants:
//!
//! * SIGKILL mid-feed, then a restart on the same `--data-dir`, yields a
//!   final result byte-identical to an uninterrupted batch run — the WAL
//!   and checkpoint snapshots lose nothing that was acknowledged;
//! * SIGTERM drains gracefully: in-flight connections get a parting
//!   `ERR`, final snapshots land, the process prints `drained` and exits
//!   0, and a restart recovers every subscription;
//! * a second server pointed at a live server's `--data-dir` refuses to
//!   start (exit 2) instead of corrupting it.

#![cfg(unix)]

use sqlts_server::frame::{read_frame, write_frame, FrameEvent};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_sqlts");
const SCHEMA: &str = "name:str,day:int,price:float";
const QUERY: &str = "SELECT X.name, Z.day AS day FROM quote \
                     CLUSTER BY name SEQUENCE BY day AS (X, *Y, Z) \
                     WHERE Y.price > Y.previous.price AND Z.price < Z.previous.price";

/// A running `sqlts serve` process, killed on drop.
struct ServerGuard {
    child: Child,
    addr: String,
    /// Stdout after the `listening on` announcement, still attached.
    stdout: BufReader<std::process::ChildStdout>,
    /// Lines printed *before* the announcement (the recovery summary).
    preamble: Vec<String>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `sqlts serve --listen 127.0.0.1:0 --data-dir <dir> <extra>` and
/// wait for its `listening on <addr>` announcement, collecting any
/// recovery summary printed before it.
fn spawn_server(data_dir: &Path, extra: &[&str]) -> ServerGuard {
    let mut child = Command::new(BIN)
        .args(["serve", "--listen", "127.0.0.1:0", "--data-dir"])
        .arg(data_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut preamble = Vec::new();
    let addr = loop {
        let mut line = String::new();
        if stdout.read_line(&mut line).unwrap() == 0 {
            panic!("server exited before announcing; preamble: {preamble:?}");
        }
        match line.trim().strip_prefix("listening on ") {
            Some(addr) => break addr.to_string(),
            None => preamble.push(line.trim().to_string()),
        }
    };
    ServerGuard {
        child,
        addr,
        stdout,
        preamble,
    }
}

/// One protocol connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, payload: &str) -> String {
        write_frame(&mut self.writer, payload).unwrap();
        self.recv()
    }

    fn recv(&mut self) -> String {
        match read_frame(&mut self.reader, 1 << 24).unwrap() {
            FrameEvent::Payload(p) => p,
            other => panic!("expected a payload frame, got {other:?}"),
        }
    }
}

/// The follow-suite's deterministic zig-zag workload over two clusters.
fn rows() -> Vec<String> {
    let mut out = Vec::new();
    for day in 0..120i64 {
        for (name, phase) in [("AAA", 0), ("BBB", 1)] {
            let price = 100 + ((day + phase) % 7) * 3 - ((day + phase) % 3) * 5;
            out.push(format!("{name},{day},{price}"));
        }
    }
    out
}

/// The batch-mode reference output for the same tuples.
fn batch_csv(rows: &[String]) -> String {
    let dir = std::env::temp_dir().join(format!("sqlts-durability-batch-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("data.csv");
    std::fs::write(&path, format!("name,day,price\n{}\n", rows.join("\n"))).unwrap();
    let out = Command::new(BIN)
        .args(["--csv", path.to_str().unwrap(), "--schema", SCHEMA, QUERY])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    String::from_utf8(out.stdout).unwrap()
}

fn result_body(reply: &str, id: &str, code: u8) -> String {
    let (head, body) = reply.split_once('\n').unwrap();
    assert!(
        head.starts_with(&format!("RESULT {id} {code} ")),
        "unexpected result head: {head}"
    );
    body.to_string()
}

/// Parse `OK opened quote rows=N`.
fn opened_rows(reply: &str) -> usize {
    reply
        .strip_prefix("OK opened quote rows=")
        .unwrap_or_else(|| panic!("unexpected OPEN reply: {reply}"))
        .parse()
        .unwrap()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlts-durability-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkill_midfeed_then_restart_is_byte_identical_to_batch() {
    let rows = rows();
    let expected = batch_csv(&rows);
    let dir = fresh_dir("sigkill");

    // Phase 1: open, subscribe, feed part of the stream, then die hard —
    // the last FEED is sent without waiting for its acknowledgement, so
    // the kill can land anywhere inside the append/fan-out path.
    let acknowledged;
    {
        let mut server = spawn_server(&dir, &["--checkpoint-every-frames", "2"]);
        // A fresh data dir still announces its (empty) recovery pass.
        assert_eq!(
            server.preamble,
            ["recovered 0 channel(s), 0 subscription(s), 0 row(s) replayed"]
        );
        let mut client = Client::connect(&server.addr);
        assert_eq!(
            client.send(&format!("OPEN quote {SCHEMA}")),
            "OK opened quote rows=0"
        );
        assert_eq!(
            client.send(&format!("SUBSCRIBE s1 quote\n{QUERY}")),
            "OK subscribed s1 quote"
        );
        let mut chunks = rows.chunks(30);
        let mut fed = 0;
        for chunk in chunks.by_ref().take(3) {
            client.send(&format!("FEED quote\n{}", chunk.join("\n")));
            fed += chunk.len();
        }
        acknowledged = fed;
        // Fire one more FEED and kill without reading the reply.
        let in_flight = chunks.next().unwrap();
        write_frame(
            &mut client.writer,
            &format!("FEED quote\n{}", in_flight.join("\n")),
        )
        .unwrap();
        server.child.kill().unwrap();
        server.child.wait().unwrap();
    }
    // The kill leaves the LOCK file behind; restart must treat it as
    // stale (the pid is dead) rather than refusing to start.
    assert!(dir.join("LOCK").exists(), "SIGKILL should leave the lock");

    // Phase 2: restart on the same directory, learn how many rows
    // survived from OPEN's durable count, and feed exactly the rest.
    let server = spawn_server(&dir, &["--checkpoint-every-frames", "2"]);
    let summary = server
        .preamble
        .iter()
        .find(|l| l.starts_with("recovered "))
        .unwrap_or_else(|| panic!("no recovery summary in {:?}", server.preamble));
    assert!(
        summary.starts_with("recovered 1 channel(s), 1 subscription(s),"),
        "{summary}"
    );
    let mut client = Client::connect(&server.addr);
    let durable = opened_rows(&client.send(&format!("OPEN quote {SCHEMA}")));
    assert!(
        durable >= acknowledged,
        "durable count {durable} lost acknowledged rows ({acknowledged})"
    );
    assert!(durable <= rows.len());
    if durable < rows.len() {
        let reply = client.send(&format!("FEED quote\n{}", rows[durable..].join("\n")));
        assert!(reply.starts_with("OK fed "), "{reply}");
    }
    let reply = client.send("UNSUBSCRIBE s1");
    assert_eq!(
        result_body(&reply, "s1", 0),
        expected,
        "recovered subscription must be byte-identical to batch"
    );
}

#[test]
fn sigterm_drains_gracefully_and_a_restart_recovers() {
    let rows = rows();
    let expected = batch_csv(&rows);
    let dir = fresh_dir("sigterm");
    let mid = rows.len() / 2;

    let mut server = spawn_server(&dir, &[]);
    let mut client = Client::connect(&server.addr);
    client.send(&format!("OPEN quote {SCHEMA}"));
    assert_eq!(
        client.send(&format!("SUBSCRIBE s1 quote\n{QUERY}")),
        "OK subscribed s1 quote"
    );
    client.send(&format!("FEED quote\n{}", rows[..mid].join("\n")));

    // Graceful drain: exit code 0, a parting ERR to the in-flight
    // connection, `drained` on stdout, and no LOCK left behind.
    let pid = server.child.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap()
        .success());
    let status = server.child.wait().unwrap();
    assert!(status.success(), "drain must exit 0, got {status:?}");
    let parting = client.recv();
    assert!(parting.starts_with("ERR 4 server draining"), "{parting}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut server.stdout, &mut rest).unwrap();
    assert!(
        rest.contains("drained"),
        "missing drain announcement: {rest:?}"
    );
    assert!(!dir.join("LOCK").exists(), "drain must release the lock");
    drop(server);

    // The drain snapshotted every subscription: a restart recovers it
    // and the remaining rows complete the stream byte-identically.
    let server = spawn_server(&dir, &[]);
    assert!(
        server
            .preamble
            .iter()
            .any(|l| l.starts_with("recovered 1 channel(s), 1 subscription(s),")),
        "{:?}",
        server.preamble
    );
    let mut client = Client::connect(&server.addr);
    let durable = opened_rows(&client.send(&format!("OPEN quote {SCHEMA}")));
    assert_eq!(durable, mid, "drain must persist every acknowledged row");
    client.send(&format!("FEED quote\n{}", rows[mid..].join("\n")));
    let reply = client.send("UNSUBSCRIBE s1");
    assert_eq!(result_body(&reply, "s1", 0), expected);
}

#[test]
fn second_server_on_a_live_data_dir_is_refused_with_exit_2() {
    let dir = fresh_dir("locked");
    let server = spawn_server(&dir, &[]);

    let out = Command::new(BIN)
        .args(["serve", "--listen", "127.0.0.1:0", "--data-dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("locked by running pid"),
        "unexpected refusal message: {stderr}"
    );
    drop(server);
}
