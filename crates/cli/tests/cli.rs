//! End-to-end tests of the `sqlts` binary.

use std::io::Write;
use std::process::Command;

fn sqlts() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sqlts"))
}

fn write_temp_csv(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("sqlts-test-{name}-{}.csv", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const QUOTES: &str = "name,date,price\n\
    INTC,1999-01-25,60\n\
    INTC,1999-01-26,63.5\n\
    INTC,1999-01-27,62\n\
    ACME,1999-01-25,10\n\
    ACME,1999-01-26,12\n\
    ACME,1999-01-27,9\n";

#[test]
fn runs_a_query_over_csv() {
    let csv = write_temp_csv("basic", QUOTES);
    let out = sqlts()
        .args(["--csv", csv.to_str().unwrap()])
        .args(["--schema", "name:str,date:date,price:float"])
        .arg(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y, Z) \
             WHERE Y.price > 1.15 * X.price AND Z.price < 0.80 * Y.price",
        )
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout, "name\nACME\n");
    std::fs::remove_file(csv).ok();
}

#[test]
fn stats_and_explain_go_to_stderr() {
    let csv = write_temp_csv("stats", QUOTES);
    let out = sqlts()
        .args(["--csv", csv.to_str().unwrap()])
        .args(["--schema", "name:str,date:date,price:float"])
        .args(["--stats", "--explain", "--engine", "ops"])
        .arg(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE Y.price > X.price",
        )
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("theta"), "{stderr}");
    assert!(stderr.contains("predicate tests"), "{stderr}");
    // stdout carries only the CSV result.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("name\n"));
    std::fs::remove_file(csv).ok();
}

#[test]
fn engines_are_selectable_and_agree() {
    let csv = write_temp_csv("engines", QUOTES);
    let mut outputs = Vec::new();
    for engine in ["naive", "backtrack", "ops", "shift-only"] {
        let out = sqlts()
            .args(["--csv", csv.to_str().unwrap()])
            .args(["--schema", "name:str,date:date,price:float"])
            .args(["--engine", engine])
            .arg(
                "SELECT X.name, Y.price FROM quote CLUSTER BY name SEQUENCE BY date \
                 AS (X, Y) WHERE Y.price < X.price",
            )
            .output()
            .unwrap();
        assert!(out.status.success(), "engine {engine}");
        outputs.push(String::from_utf8(out.stdout).unwrap());
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
    std::fs::remove_file(csv).ok();
}

#[test]
fn compile_errors_render_with_caret() {
    let csv = write_temp_csv("err", QUOTES);
    let out = sqlts()
        .args(["--csv", csv.to_str().unwrap()])
        .args(["--schema", "name:str,date:date,price:float"])
        .arg("SELECT X.volume FROM quote SEQUENCE BY date AS (X)")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "compile errors exit 3");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("no such column: volume"), "{stderr}");
    assert!(stderr.contains('^'), "caret rendering missing: {stderr}");
    std::fs::remove_file(csv).ok();
}

#[test]
fn malformed_csv_exits_3_with_line_diagnostic() {
    let csv = write_temp_csv(
        "badrow",
        "name,date,price\nINTC,1999-01-25,60\nINTC,1999-01-26\n",
    );
    let out = sqlts()
        .args(["--csv", csv.to_str().unwrap()])
        .args(["--schema", "name:str,date:date,price:float"])
        .arg("SELECT X.name FROM quote SEQUENCE BY date AS (X)")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "CSV ingest errors exit 3");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 3"), "{stderr}");
    std::fs::remove_file(csv).ok();
}

#[test]
fn step_budget_trips_with_exit_4_and_diagnostic() {
    let csv = write_temp_csv("budget", QUOTES);
    let out = sqlts()
        .args(["--csv", csv.to_str().unwrap()])
        .args(["--schema", "name:str,date:date,price:float"])
        .args(["--max-steps", "1"])
        .arg(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE Y.price > X.price",
        )
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "governed termination exits 4");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("resource governor"), "{stderr}");
    assert!(stderr.contains("step budget"), "{stderr}");
    // The (empty or prefix) partial result is still printed as CSV.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("name\n"), "{stdout}");
    std::fs::remove_file(csv).ok();
}

#[test]
fn match_budget_truncates_output_and_exits_4() {
    let csv = write_temp_csv("matches", QUOTES);
    let out = sqlts()
        .args(["--csv", csv.to_str().unwrap()])
        .args(["--schema", "name:str,date:date,price:float"])
        .args(["--max-matches", "1"])
        .arg(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE Y.price <> X.price",
        )
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout.lines().count(),
        2,
        "header plus exactly the budgeted match: {stdout}"
    );
    std::fs::remove_file(csv).ok();
}

#[test]
fn generous_governor_flags_leave_output_unchanged() {
    let csv = write_temp_csv("generous", QUOTES);
    let query = "SELECT X.name, Y.price FROM quote CLUSTER BY name SEQUENCE BY date \
                 AS (X, Y) WHERE Y.price < X.price";
    let base_args = |cmd: &mut Command| {
        cmd.args(["--csv", csv.to_str().unwrap()])
            .args(["--schema", "name:str,date:date,price:float"])
            .arg(query);
    };
    let mut plain = sqlts();
    base_args(&mut plain);
    let plain = plain.output().unwrap();
    assert!(plain.status.success());
    let mut governed = sqlts();
    base_args(&mut governed);
    let governed = governed
        .args(["--timeout-ms", "60000"])
        .args(["--max-steps", "1000000"])
        .args(["--max-matches", "1000000"])
        .output()
        .unwrap();
    assert!(governed.status.success(), "generous limits must not trip");
    assert_eq!(plain.stdout, governed.stdout);
    std::fs::remove_file(csv).ok();
}

#[test]
fn demo_djia_is_deterministic() {
    let run = || {
        let out = sqlts()
            .args(["--demo-djia", "--seed", "7"])
            .arg(
                "SELECT FIRST(Y).date AS d FROM djia SEQUENCE BY date AS (*Y, Z) \
                 WHERE Y.price < 0.98*Y.previous.price AND Z.price > 1.02*Z.previous.price",
            )
            .output()
            .unwrap();
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn direction_flag_preserves_results() {
    let csv = write_temp_csv("dir", QUOTES);
    let run = |dir: &str| {
        let out = sqlts()
            .args(["--csv", csv.to_str().unwrap()])
            .args(["--schema", "name:str,date:date,price:float"])
            .args(["--direction", dir])
            .arg(
                "SELECT X.name, Y.price FROM quote CLUSTER BY name SEQUENCE BY date \
                 AS (X, Y) WHERE Y.price < X.price",
            )
            .output()
            .unwrap();
        assert!(out.status.success(), "direction {dir}");
        String::from_utf8(out.stdout).unwrap()
    };
    let fwd = run("forward");
    assert_eq!(fwd, run("reverse"));
    assert_eq!(fwd, run("auto"));
    std::fs::remove_file(csv).ok();
}

#[test]
fn bad_usage_exits_2() {
    let out = sqlts().arg("--nonsense").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = sqlts().output().unwrap();
    assert_eq!(out.status.code(), Some(2), "missing query must show usage");
}

#[test]
fn help_exits_0_and_lists_every_flag() {
    let out = sqlts().arg("--help").output().unwrap();
    assert_eq!(out.status.code(), Some(0), "--help is not an error");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for flag in [
        "--csv",
        "--schema",
        "--demo-djia",
        "--engine",
        "--threads",
        "--stats",
        "--profile",
        "--metrics-format",
        "--trace",
        "--trace-capacity",
        "--help",
    ] {
        assert!(stdout.contains(flag), "help missing {flag}:\n{stdout}");
    }
}

#[test]
fn profile_json_goes_to_stderr_and_matches_stats() {
    let csv = write_temp_csv("profjson", QUOTES);
    let query = "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
                 WHERE Y.price > X.price";
    let args = |cmd: &mut Command| {
        cmd.args(["--csv", csv.to_str().unwrap()])
            .args(["--schema", "name:str,date:date,price:float"])
            .arg(query);
    };
    let mut prof = sqlts();
    args(&mut prof);
    let prof = prof
        .args(["--profile", "--metrics-format", "json"])
        .output()
        .unwrap();
    assert!(prof.status.success());
    let stderr = String::from_utf8(prof.stderr).unwrap();
    let json_line = stderr
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("JSON profile on stderr");
    assert!(json_line.contains("\"predicate_tests\":"), "{json_line}");
    assert!(json_line.contains("\"clusters\":"), "{json_line}");
    assert!(json_line.contains("\"optimizer\":"), "{json_line}");

    // Its predicate-test total equals the legacy --stats line bit-for-bit.
    let mut stats = sqlts();
    args(&mut stats);
    let stats = stats.arg("--stats").output().unwrap();
    assert!(stats.status.success());
    let stats_err = String::from_utf8(stats.stderr).unwrap();
    // Legacy line shape: "{m} matches, {t} predicate tests over …".
    let legacy_tests: u64 = stats_err
        .lines()
        .find(|l| l.contains("predicate tests"))
        .and_then(|l| {
            let words: Vec<&str> = l.split_whitespace().collect();
            let idx = words.iter().position(|w| *w == "predicate")?;
            words[idx - 1].parse().ok()
        })
        .expect("legacy stats line");
    let profiled_tests: u64 = json_line
        .split("\"predicate_tests\":")
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|n| n.parse().ok())
        })
        .unwrap();
    assert_eq!(profiled_tests, legacy_tests);
    // stdout still carries only the CSV result.
    let stdout = String::from_utf8(prof.stdout).unwrap();
    assert!(stdout.starts_with("name\n"), "{stdout}");
    std::fs::remove_file(csv).ok();
}

#[test]
fn stats_includes_per_cluster_breakdown() {
    let csv = write_temp_csv("percluster", QUOTES);
    let out = sqlts()
        .args(["--csv", csv.to_str().unwrap()])
        .args(["--schema", "name:str,date:date,price:float"])
        .arg("--stats")
        .arg(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE Y.price > X.price",
        )
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cluster 0 ("), "{stderr}");
    assert!(stderr.contains("cluster 1 ("), "{stderr}");
    std::fs::remove_file(csv).ok();
}

#[test]
fn trace_flag_writes_jsonl_file() {
    let csv = write_temp_csv("tracefile", QUOTES);
    let trace = std::env::temp_dir().join(format!("sqlts-test-trace-{}.jsonl", std::process::id()));
    let out = sqlts()
        .args(["--csv", csv.to_str().unwrap()])
        .args(["--schema", "name:str,date:date,price:float"])
        .args(["--trace", trace.to_str().unwrap()])
        .arg(
            "SELECT X.name FROM quote CLUSTER BY name SEQUENCE BY date AS (X, Y) \
             WHERE Y.price > X.price",
        )
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let contents = std::fs::read_to_string(&trace).unwrap();
    assert!(!contents.is_empty());
    let lines: Vec<&str> = contents.lines().collect();
    let (events, trailer) = lines.split_at(lines.len() - 1);
    assert!(!events.is_empty(), "trace carried no events: {contents}");
    for line in events {
        assert!(line.starts_with("{\"cluster\":"), "{line}");
        assert!(line.contains("\"ev\":"), "{line}");
    }
    assert!(
        trailer[0].starts_with("{\"dropped\":"),
        "missing drop trailer: {}",
        trailer[0]
    );
    std::fs::remove_file(csv).ok();
    std::fs::remove_file(trace).ok();
}

#[test]
fn prometheus_format_emits_exposition_text() {
    let out = sqlts()
        .args(["--demo-djia", "--seed", "7"])
        .args(["--profile", "--metrics-format", "prom"])
        .arg(
            "SELECT FIRST(Y).date AS d FROM djia SEQUENCE BY date AS (*Y, Z) \
             WHERE Y.price < 0.98*Y.previous.price AND Z.price > 1.02*Z.previous.price",
        )
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("# TYPE sqlts_predicate_tests"), "{stderr}");
    assert!(stderr.contains("sqlts_matches_total"), "{stderr}");
}
