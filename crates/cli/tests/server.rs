//! End-to-end tests for `sqlts serve`: a real server process, real TCP
//! connections speaking the framed protocol.
//!
//! The load-bearing invariants:
//!
//! * N concurrent subscriptions over one shared feed each produce output
//!   byte-identical to batch `execute` over the same tuples — including a
//!   subscription that checkpointed, lost its connection, and resumed on
//!   a new one;
//! * malformed protocol frames (oversized, bad UTF-8, unknown verbs) are
//!   answered with `ERR`, never by a panic or a dropped connection;
//! * `GET /metrics` on the same port serves a sane Prometheus exposition;
//! * a subscription that stops feeding still trips its wall-clock
//!   deadline (the stalled-tenant fix) and reports a partial, exit-coded
//!   result.

use sqlts_server::frame::{read_frame, write_frame, FrameEvent};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_sqlts");
const SCHEMA: &str = "name:str,day:int,price:float";
const QUERY: &str = "SELECT X.name, Z.day AS day FROM quote \
                     CLUSTER BY name SEQUENCE BY day AS (X, *Y, Z) \
                     WHERE Y.price > Y.previous.price AND Z.price < Z.previous.price";

/// A running `sqlts serve` process, killed on drop.
struct ServerGuard {
    child: Child,
    addr: String,
    /// Keeps the child's stdout pipe open: a drained server prints a
    /// final "drained" line, and a closed pipe would turn that print
    /// into an EPIPE panic.
    #[allow(dead_code)]
    stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `sqlts serve --listen 127.0.0.1:0 <extra>` and wait for its
/// "listening on <addr>" announcement.
fn spawn_server(extra: &[&str]) -> ServerGuard {
    let mut child = Command::new(BIN)
        .args(["serve", "--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();
    ServerGuard {
        child,
        addr,
        stdout,
    }
}

/// One protocol connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Send one frame and read one reply frame.
    fn send(&mut self, payload: &str) -> String {
        write_frame(&mut self.writer, payload).unwrap();
        self.recv()
    }

    fn recv(&mut self) -> String {
        match read_frame(&mut self.reader, 1 << 24).unwrap() {
            FrameEvent::Payload(p) => p,
            other => panic!("expected a payload frame, got {other:?}"),
        }
    }
}

/// The follow-suite's deterministic zig-zag workload over two clusters.
fn rows() -> Vec<String> {
    let mut out = Vec::new();
    for day in 0..120i64 {
        for (name, phase) in [("AAA", 0), ("BBB", 1)] {
            let price = 100 + ((day + phase) % 7) * 3 - ((day + phase) % 3) * 5;
            out.push(format!("{name},{day},{price}"));
        }
    }
    out
}

/// The batch-mode reference output for the same tuples.
fn batch_csv(rows: &[String]) -> String {
    let dir = std::env::temp_dir().join(format!("sqlts-server-batch-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("data.csv");
    std::fs::write(&path, format!("name,day,price\n{}\n", rows.join("\n"))).unwrap();
    let out = Command::new(BIN)
        .args(["--csv", path.to_str().unwrap(), "--schema", SCHEMA, QUERY])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    String::from_utf8(out.stdout).unwrap()
}

/// Strip a `RESULT <id> <code> ...` head and assert the expected code.
fn result_body(reply: &str, id: &str, code: u8) -> String {
    let (head, body) = reply.split_once('\n').unwrap();
    assert!(
        head.starts_with(&format!("RESULT {id} {code} ")),
        "unexpected result head: {head}"
    );
    body.to_string()
}

#[test]
fn concurrent_subscriptions_match_batch() {
    let rows = rows();
    let expected = batch_csv(&rows);
    let server = spawn_server(&[]);

    // Three subscriptions across two connections, one shared feed.
    let mut conn_a = Client::connect(&server.addr);
    let mut conn_b = Client::connect(&server.addr);
    assert_eq!(conn_a.send("PING"), "OK pong");
    assert_eq!(
        conn_a.send(&format!("OPEN quote {SCHEMA}")),
        "OK opened quote"
    );
    for (on_a, id) in [(true, "s1"), (true, "s2"), (false, "s3")] {
        let conn = if on_a { &mut conn_a } else { &mut conn_b };
        let reply = conn.send(&format!("SUBSCRIBE {id} quote\n{QUERY}"));
        assert_eq!(reply, format!("OK subscribed {id} quote"));
    }
    // Feed in chunks from connection B; every subscription sees all rows.
    for chunk in rows.chunks(50) {
        let reply = conn_b.send(&format!("FEED quote\n{}", chunk.join("\n")));
        assert!(
            reply.starts_with(&format!("OK fed {} subs=3", chunk.len())),
            "{reply}"
        );
    }
    for (on_a, id) in [(true, "s1"), (true, "s2"), (false, "s3")] {
        let conn = if on_a { &mut conn_a } else { &mut conn_b };
        let reply = conn.send(&format!("UNSUBSCRIBE {id}"));
        assert_eq!(
            result_body(&reply, id, 0),
            expected,
            "subscription {id} must be byte-identical to batch"
        );
    }
}

#[test]
fn checkpoint_disconnect_resume_matches_batch() {
    let rows = rows();
    let expected = batch_csv(&rows);
    let server = spawn_server(&[]);
    let mid = rows.len() / 2;

    let mut first = Client::connect(&server.addr);
    first.send(&format!("OPEN quote {SCHEMA}"));
    assert_eq!(
        first.send(&format!("SUBSCRIBE s1 quote\n{QUERY}")),
        "OK subscribed s1 quote"
    );
    first.send(&format!("FEED quote\n{}", rows[..mid].join("\n")));
    let reply = first.send("CHECKPOINT s1");
    let checkpoint = reply
        .strip_prefix("CHECKPOINT s1\n")
        .unwrap_or_else(|| panic!("unexpected checkpoint reply: {reply}"));
    assert!(checkpoint.starts_with("sqlts-checkpoint v1\n"));
    // Hard disconnect: the server reaps s1; the checkpoint is the
    // client's to keep.
    drop(first);

    let mut second = Client::connect(&server.addr);
    let reply = second.send(&format!("RESUME s2 quote\n{QUERY}\n{checkpoint}"));
    assert_eq!(reply, "OK resumed s2 quote");
    second.send(&format!("FEED quote\n{}", rows[mid..].join("\n")));
    let reply = second.send("UNSUBSCRIBE s2");
    assert_eq!(
        result_body(&reply, "s2", 0),
        expected,
        "resumed subscription must be byte-identical to batch"
    );
}

#[test]
fn malformed_frames_get_errors_not_disconnects() {
    let server = spawn_server(&["--max-frame-bytes", "64"]);
    let mut client = Client::connect(&server.addr);

    // Oversized frame: drained, ERR 2, connection lives.
    let reply = client.send(&"x".repeat(100));
    assert!(reply.starts_with("ERR 2 frame of 100 bytes"), "{reply}");
    assert_eq!(client.send("PING"), "OK pong");

    // Bad UTF-8 payload: ERR 2, connection lives.
    client.writer.write_all(b"3 \xff\xfe\xfd\n").unwrap();
    let reply = client.recv();
    assert!(
        reply.starts_with("ERR 2 frame payload is not UTF-8"),
        "{reply}"
    );
    assert_eq!(client.send("PING"), "OK pong");

    // Unknown verbs and malformed arities: ERR 2, connection lives.
    for bad in ["NONSENSE", "SUBSCRIBE onlyone", "FEED", "OPEN q notaschema"] {
        let reply = client.send(bad);
        assert!(reply.starts_with("ERR 2 "), "{bad:?} -> {reply}");
    }
    assert_eq!(client.send("PING"), "OK pong");

    // A corrupt length header is fatal by design — but answered with a
    // parting ERR and a clean close, not a panic.
    client.writer.write_all(b"bogus frame\n").unwrap();
    let reply = client.recv();
    assert!(reply.starts_with("ERR 2 frame desync"), "{reply}");
    let mut rest = Vec::new();
    client.reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection should close after desync");

    // The server itself is unharmed.
    let mut fresh = Client::connect(&server.addr);
    assert_eq!(fresh.send("PING"), "OK pong");
}

#[test]
fn metrics_scrape_is_valid_prometheus() {
    let server = spawn_server(&[]);
    let mut client = Client::connect(&server.addr);
    client.send(&format!("OPEN quote {SCHEMA}"));
    client.send(&format!("SUBSCRIBE live quote\n{QUERY}"));
    client.send("FEED quote\nAAA,1,100.0\nAAA,2,98.5");

    let scrape = || {
        let mut http = TcpStream::connect(&server.addr).unwrap();
        http.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        write!(
            http,
            "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        http.read_to_string(&mut response).unwrap();
        response
    };
    let response = scrape();
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("text/plain; version=0.0.4"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    for needle in [
        "# TYPE sqlts_server_connections_total counter",
        "# TYPE sqlts_server_frames_total counter",
        "sqlts_sub_records{tenant=\"live\"} 2",
        "sqlts_sub_tripped{tenant=\"live\"} 0",
    ] {
        assert!(body.contains(needle), "missing {needle} in {body}");
    }
    // Every non-comment line is `name{labels} value` with a numeric value.
    for line in body
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value in {line:?}"
        );
    }

    // After the subscription finishes, its profile appears tenant-labeled.
    client.send("UNSUBSCRIBE live");
    let response = scrape();
    assert!(
        response.contains("sqlts_tuples_total{tenant=\"live\"} 2"),
        "{response}"
    );

    // Other paths 404 without harming the protocol port.
    let mut http = TcpStream::connect(&server.addr).unwrap();
    write!(http, "GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");
}

/// Parse a raw HTTP/1.1 response: (status line, headers, body bytes).
/// Reads the body by `Content-Length`, byte-exactly — the strictness a
/// real scraper applies.
fn parse_http(raw: &[u8]) -> (String, Vec<(String, String)>, Vec<u8>) {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body separator");
    let head = std::str::from_utf8(&raw[..split]).expect("headers are ASCII");
    let mut lines = head.split("\r\n");
    let status = lines.next().unwrap().to_string();
    let headers: Vec<(String, String)> = lines
        .map(|l| {
            let (k, v) = l
                .split_once(':')
                .unwrap_or_else(|| panic!("bad header {l:?}"));
            (k.to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    let body = raw[split + 4..].to_vec();
    (status, headers, body)
}

/// Satellite regression: the `/metrics` endpoint must be well-formed
/// HTTP even for a client that dribbles its request one byte at a time
/// (the old peek-probe re-read bytes at the wrong offsets and could
/// misclassify such a connection).  `Content-Length` must equal the
/// body's byte count exactly, with no trailing bytes after it.
#[test]
fn http_scrape_survives_split_writes_and_frames_content_length_exactly() {
    let server = spawn_server(&[]);
    let mut client = Client::connect(&server.addr);
    client.send(&format!("OPEN quote {SCHEMA}"));
    client.send(&format!("SUBSCRIBE live quote\n{QUERY}"));
    client.send("FEED quote\nAAA,1,100.0\nAAA,2,98.5");

    for path in ["/metrics", "/status"] {
        let mut http = TcpStream::connect(&server.addr).unwrap();
        http.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        // One byte at a time, with pauses inside the "GET " probe window.
        let request = format!("{path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        for byte in b"GET " {
            http.write_all(&[*byte]).unwrap();
            http.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        http.write_all(request.as_bytes()).unwrap();
        let mut raw = Vec::new();
        http.read_to_end(&mut raw).unwrap();
        let (status, headers, body) = parse_http(&raw);
        assert_eq!(status, "HTTP/1.1 200 OK", "{path}");
        let length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse().unwrap())
            .expect("Content-Length present");
        assert_eq!(
            body.len(),
            length,
            "{path}: Content-Length must frame the body byte-exactly"
        );
        assert!(body.ends_with(b"\n"), "{path}: body ends with a newline");
    }
}

/// `GET /status` returns one JSON document with the server counters,
/// latency histograms, and every live subscription's state.
#[test]
fn status_endpoint_reports_live_subscriptions_as_json() {
    let server = spawn_server(&[]);
    let mut client = Client::connect(&server.addr);
    client.send(&format!("OPEN quote {SCHEMA}"));
    client.send(&format!("SUBSCRIBE live quote\n{QUERY}"));
    client.send("FEED quote\nAAA,1,100.0\nAAA,2,98.5");

    let mut http = TcpStream::connect(&server.addr).unwrap();
    http.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        http,
        "GET /status HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    http.read_to_end(&mut raw).unwrap();
    let (status, headers, body) = parse_http(&raw);
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        headers
            .iter()
            .any(|(k, v)| k == "content-type" && v.starts_with("application/json")),
        "{headers:?}"
    );
    let text = String::from_utf8(body).unwrap();
    for needle in [
        "\"draining\":false",
        "\"id\":\"live\"",
        "\"records\":2",
        "\"queue_depth\":",
        "\"phase\":\"",
        "\"latency\":{",
        "\"frame_decode_micros\":{\"count\":",
    ] {
        assert!(text.contains(needle), "missing {needle} in {text}");
    }
    // Braces and brackets balance — the document is at least
    // structurally JSON even without a parser on this side.
    let balance = |open: char, close: char| {
        text.chars().filter(|c| *c == open).count() == text.chars().filter(|c| *c == close).count()
    };
    assert!(balance('{', '}') && balance('[', ']'), "{text}");
}

/// The tentpole end to end: a fully armed server (span log at debug,
/// sampling profiler, slow-frame watchdog) must produce byte-identical
/// query output to batch mode, a balanced span log, and a well-formed
/// collapsed-stack profile after a graceful drain.
#[test]
fn armed_observability_run_is_byte_identical_and_artifacts_are_well_formed() {
    let rows = rows();
    let expected = batch_csv(&rows);
    let dir = std::env::temp_dir().join(format!("sqlts-armed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("server.log.jsonl");
    let folded = dir.join("profile.folded");
    let mut server = spawn_server(&[
        "--log",
        log.to_str().unwrap(),
        "--log-level",
        "debug",
        "--sample-profile",
        folded.to_str().unwrap(),
        "--sample-hz",
        "250",
        "--slow-frame-ms",
        "10000",
    ]);
    let mut client = Client::connect(&server.addr);
    client.send(&format!("OPEN quote {SCHEMA}"));
    client.send(&format!("SUBSCRIBE s1 quote\n{QUERY}"));
    for chunk in rows.chunks(40) {
        client.send(&format!("FEED quote\n{}", chunk.join("\n")));
    }
    let reply = client.send("UNSUBSCRIBE s1");
    assert_eq!(
        result_body(&reply, "s1", 0),
        expected,
        "armed run must be byte-identical to batch"
    );
    drop(client);

    // Graceful drain (SIGTERM) so the profiler takes its final flush;
    // waiting for exit makes both artifact files final.
    let pid = server.child.id().to_string();
    let status = Command::new("kill").args(["-TERM", &pid]).status().unwrap();
    assert!(status.success());
    let exit = server.child.wait().unwrap();
    assert!(exit.success(), "drained server exits 0: {exit:?}");

    // Span log: every line valid JSON-ish, begins balanced with ends.
    let text = std::fs::read_to_string(&log).unwrap();
    assert!(!text.is_empty(), "span log must not be empty");
    let (mut begins, mut ends) = (0u64, 0u64);
    for line in text.lines() {
        assert!(
            line.starts_with("{\"ts\":") && line.ends_with('}'),
            "bad span log line: {line}"
        );
        if line.contains("\"k\":\"b\"") {
            begins += 1;
        } else if line.contains("\"k\":\"e\"") {
            ends += 1;
        }
    }
    assert!(begins > 0, "expected spans in:\n{text}");
    assert_eq!(begins, ends, "unbalanced spans in:\n{text}");
    for name in [
        "\"name\":\"dispatch\"",
        "\"name\":\"wal_append\"",
        "\"name\":\"fanout\"",
        "\"name\":\"accept\"",
        "\"name\":\"drain\"",
    ] {
        // wal_append only appears with --data-dir; skip it here.
        if name.contains("wal_append") {
            continue;
        }
        assert!(text.contains(name), "missing {name} in span log:\n{text}");
    }

    // Collapsed stacks: `frame;frame count` lines, at least one.
    let profile = std::fs::read_to_string(&folded).unwrap();
    assert!(!profile.trim().is_empty(), "collapsed profile is empty");
    for line in profile.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("stack SP count");
        assert!(stack.starts_with("serve;"), "{line}");
        assert!(!stack.contains(' '), "{line}");
        assert!(count.parse::<u64>().is_ok(), "{line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_subscription_trips_wall_clock_deadline() {
    // The acceptance criterion, end to end: a subscription that stops
    // feeding must trip its deadline with no further FEED frame.
    let server = spawn_server(&["--timeout-ms", "150", "--poll-interval-ms", "10"]);
    let mut client = Client::connect(&server.addr);
    client.send(&format!("OPEN quote {SCHEMA}"));
    client.send(&format!("SUBSCRIBE stall quote\n{QUERY}"));
    client.send("FEED quote\nAAA,1,100.0");

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = client.send("STATUS stall");
        if status.contains("trip=deadline") {
            break;
        }
        assert!(
            status.starts_with("OK status "),
            "unexpected status reply: {status}"
        );
        assert!(
            Instant::now() < deadline,
            "stalled subscription never tripped: {status}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The governed result is partial and carries the exit-style code 4.
    let reply = client.send("UNSUBSCRIBE stall");
    let head = reply.lines().next().unwrap();
    assert!(head.starts_with("RESULT stall 4 "), "{head}");
    assert!(head.contains("trip=deadline"), "{head}");
}
