//! `sqlts` — run SQL-TS sequence queries over CSV files.
//!
//! ```text
//! sqlts --csv quotes.csv --schema 'name:str,date:date,price:float' \
//!       [--engine naive|backtrack|ops|shift-only] [--explain] [--stats] \
//!       [--profile] [--trace FILE.jsonl] [--metrics-format json|prom|text] \
//!       [--threads N] [--strict-previous] \
//!       [--timeout-ms N] [--max-steps N] [--max-matches N] \
//!       "SELECT … FROM … AS (X, *Y, Z) WHERE …"
//!
//! sqlts --demo-djia [--seed N] …     # use the built-in simulated DJIA
//!
//! sqlts serve [--listen ADDR] …      # multi-tenant query server mode
//!
//! sqlts trace-agg IN.jsonl [--collapsed FILE]   # fold --trace / --log
//!                                               # JSONL into a cost tree
//! ```
//!
//! Prints the result as CSV on stdout; `--stats` adds the cost metric on
//! stderr, `--explain` prints the optimizer's θ/φ/shift/next report,
//! `--profile` emits the machine-readable execution profile (see the
//! README's Observability section).
//!
//! Streaming mode: `--follow` reads CSV tuples from stdin and feeds them
//! through a resilient push-based session one at a time; `--checkpoint
//! FILE` saves (and, when the file exists, resumes from) a session
//! checkpoint, `--on-bad-tuple` picks the malformed-input policy, and
//! `--feed-limit N` stops after N tuples without finishing (a
//! deterministic mid-stream kill for recovery drills).
//!
//! Server mode: `sqlts serve` binds a TCP listener speaking the framed
//! SQL-TS subscription protocol (see the README's "Server mode" section)
//! and answers HTTP `GET /metrics` on the same port; `sqlts serve --help`
//! lists its flags.
//!
//! Exit codes: `0` success, `2` usage, `3` input (query compile or CSV
//! ingest), `4` runtime (governed termination or isolated cluster
//! failures — the partial result is still printed), `5` quarantine
//! capacity exceeded.

mod trace_agg;

use sqlts_core::stream::{
    BadTuplePolicy, SessionCheckpoint, StreamError, StreamOptions, StreamSession,
};
use sqlts_core::{
    compile, execute, explain, CompileOptions, DirectionChoice, EngineKind, ExecError, ExecOptions,
    FirstTuplePolicy, Governor, Instrument, QueryResult,
};
use sqlts_relation::{ColumnType, CsvRecords, Schema, Table};
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// One accepted command-line flag: the single source of truth for both
/// the parser (membership and arity) and the generated `--help` text, so
/// the two can never drift apart.
struct FlagSpec {
    /// The flag itself (`--engine`).
    name: &'static str,
    /// Metavariable for the flag's value; `None` for boolean flags.
    metavar: Option<&'static str>,
    /// One-line description for `--help`.
    help: &'static str,
}

/// Every flag `sqlts` accepts.  `parse_args` rejects anything not listed
/// here, and `help_text` renders exactly this table.
const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--csv",
        metavar: Some("FILE"),
        help: "read input tuples from a CSV file (requires --schema)",
    },
    FlagSpec {
        name: "--schema",
        metavar: Some("'col:type,…'"),
        help: "column names and types for --csv (types: int, float, str, date)",
    },
    FlagSpec {
        name: "--demo-djia",
        metavar: None,
        help: "use the built-in simulated DJIA table instead of --csv",
    },
    FlagSpec {
        name: "--seed",
        metavar: Some("N"),
        help: "random seed for --demo-djia (default 2001)",
    },
    FlagSpec {
        name: "--engine",
        metavar: Some("naive|backtrack|ops|shift-only"),
        help: "pattern-search engine (default ops)",
    },
    FlagSpec {
        name: "--direction",
        metavar: Some("forward|reverse|auto"),
        help: "scan direction; auto uses the mean-shift/next heuristic (default forward)",
    },
    FlagSpec {
        name: "--threads",
        metavar: Some("N"),
        help: "worker threads for cluster-parallel execution (default: all \
               cores; 1 = sequential; output is identical for every N)",
    },
    FlagSpec {
        name: "--timeout-ms",
        metavar: Some("N"),
        help: "abort the query after N milliseconds of wall clock (exit 4, partial result printed)",
    },
    FlagSpec {
        name: "--max-steps",
        metavar: Some("N"),
        help: "abort after N predicate tests, the paper's cost metric (exit 4)",
    },
    FlagSpec {
        name: "--max-matches",
        metavar: Some("N"),
        help: "abort after N retained matches / output rows (exit 4)",
    },
    FlagSpec {
        name: "--explain",
        metavar: None,
        help: "print the optimizer report (theta/phi/S, shift/next) to stderr",
    },
    FlagSpec {
        name: "--stats",
        metavar: None,
        help: "print the cost metric to stderr: the legacy one-line summary \
               plus a per-cluster breakdown",
    },
    FlagSpec {
        name: "--profile",
        metavar: None,
        help: "collect an execution profile and print it to stderr in the \
               --metrics-format encoding",
    },
    FlagSpec {
        name: "--metrics-format",
        metavar: Some("json|prom|text"),
        help: "encoding for the --profile report (default text)",
    },
    FlagSpec {
        name: "--trace",
        metavar: Some("FILE"),
        help: "write the per-cluster search-event stream (Figure 5, \
               machine-readable) to FILE as JSON-lines",
    },
    FlagSpec {
        name: "--trace-capacity",
        metavar: Some("N"),
        help: "retained events per cluster for --trace (default 4096; older \
               events are dropped deterministically)",
    },
    FlagSpec {
        name: "--strict-previous",
        metavar: None,
        help: "make out-of-range `previous` references an error instead of vacuously true",
    },
    FlagSpec {
        name: "--queries",
        metavar: Some("FILE"),
        help: "batch pattern-set mode: run every query in FILE (one per \
               line; '#' comments and blank lines skipped) over one shared \
               pass, printing each result as CSV under a '-- query N' \
               header; --stats adds the set-level sharing summary",
    },
    FlagSpec {
        name: "--follow",
        metavar: None,
        help: "stream CSV tuples from stdin through a push-based session \
               (requires --schema; result printed at end of input)",
    },
    FlagSpec {
        name: "--checkpoint",
        metavar: Some("FILE"),
        help: "with --follow: resume from FILE if it exists, and save the \
               session checkpoint there periodically and on exit",
    },
    FlagSpec {
        name: "--checkpoint-every",
        metavar: Some("N"),
        help: "with --checkpoint: save every N fed tuples (default 1000)",
    },
    FlagSpec {
        name: "--feed-limit",
        metavar: Some("N"),
        help: "with --follow: stop after the session holds N tuples, saving \
               the checkpoint but NOT finishing (simulates a mid-stream kill)",
    },
    FlagSpec {
        name: "--on-bad-tuple",
        metavar: Some("skip|fail|quarantine:N"),
        help: "with --follow: policy for malformed, unbindable, or \
               out-of-order tuples (default fail; exit 5 when a quarantine \
               of capacity N overflows)",
    },
    FlagSpec {
        name: "--help",
        metavar: None,
        help: "print this help and exit",
    },
];

/// Every flag `sqlts serve` accepts, same single-source-of-truth scheme
/// as [`FLAGS`].
const SERVE_FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--listen",
        metavar: Some("ADDR"),
        help: "listen address (default 127.0.0.1:7878; port 0 picks a free port, \
               printed as 'listening on <addr>')",
    },
    FlagSpec {
        name: "--max-subscriptions",
        metavar: Some("N"),
        help: "admission cap on concurrently live subscriptions (default 64)",
    },
    FlagSpec {
        name: "--queue-depth",
        metavar: Some("N"),
        help: "per-subscription command-queue depth; feeders block when a \
               subscription falls this far behind (default 16)",
    },
    FlagSpec {
        name: "--poll-interval-ms",
        metavar: Some("N"),
        help: "idle-poll interval for stalled-deadline reclamation (default 50)",
    },
    FlagSpec {
        name: "--max-frame-bytes",
        metavar: Some("N"),
        help: "largest accepted protocol frame; bigger frames get ERR 2 and \
               are skipped (default 1048576)",
    },
    FlagSpec {
        name: "--timeout-ms",
        metavar: Some("N"),
        help: "default wall-clock budget per subscription (trips even while \
               the subscription is idle)",
    },
    FlagSpec {
        name: "--max-steps",
        metavar: Some("N"),
        help: "default predicate-test budget per subscription",
    },
    FlagSpec {
        name: "--max-matches",
        metavar: Some("N"),
        help: "default retained-match budget per subscription",
    },
    FlagSpec {
        name: "--engine",
        metavar: Some("naive|backtrack|ops|shift-only"),
        help: "engine for fresh subscriptions; RESUME adopts the checkpoint's \
               engine (default ops)",
    },
    FlagSpec {
        name: "--retain-profiles",
        metavar: Some("N"),
        help: "finished subscription profiles kept for /metrics (default 32)",
    },
    FlagSpec {
        name: "--data-dir",
        metavar: Some("DIR"),
        help: "durable state directory: feeds append to per-channel WALs \
               before fan-out, checkpoints snapshot atomically, and a restart \
               with the same DIR recovers byte-identically (default: none, \
               fully in-memory)",
    },
    FlagSpec {
        name: "--fsync",
        metavar: Some("every|batch|group[:us]|off"),
        help: "with --data-dir: WAL fsync policy — every append (default, \
               survives power loss), batched (bounded loss window), group \
               commit (concurrent FEEDs inside a window of 'us' microseconds \
               share one fsync, still power-loss safe), or left to the OS \
               (still survives a killed process)",
    },
    FlagSpec {
        name: "--wal-segment-bytes",
        metavar: Some("N"),
        help: "with --data-dir: roll the per-channel WAL to a new segment \
               file past N bytes; truncation unlinks whole closed segments \
               and never rewrites bytes (default 1048576)",
    },
    FlagSpec {
        name: "--replicate-to",
        metavar: Some("HOST:PORT"),
        help: "with --data-dir: stream every committed WAL frame (plus \
               subscription metas and checkpoints) to the standby listening \
               there; /metrics gains sqlts_repl_* series",
    },
    FlagSpec {
        name: "--repl-ack",
        metavar: Some("sync|async"),
        help: "with --replicate-to: sync blocks each FEED ack until the \
               standby acknowledges the frame (degrades to async, counted, \
               if the standby is away); async acks after the local append \
               (default async)",
    },
    FlagSpec {
        name: "--standby",
        metavar: None,
        help: "with --data-dir: run as a warm standby — accept a primary's \
               replication stream, serve read-only STATUS and /metrics, and \
               refuse mutating verbs until PROMOTE (verb, or SIGUSR1)",
    },
    FlagSpec {
        name: "--promote-on-disconnect",
        metavar: None,
        help: "with --standby: promote automatically when the primary's \
               replication connection drops",
    },
    FlagSpec {
        name: "--checkpoint-every-frames",
        metavar: Some("N"),
        help: "with --data-dir: snapshot every subscription after N FEED \
               frames on its channel, then truncate the WAL behind the \
               snapshots (default 64)",
    },
    FlagSpec {
        name: "--log",
        metavar: Some("FILE"),
        help: "append a structured span log of the server hot path (accept, \
               frame decode, WAL append, fsync, fan-out, snapshot, recovery, \
               drain) to FILE",
    },
    FlagSpec {
        name: "--log-format",
        metavar: Some("json|text"),
        help: "span log encoding: JSON-lines (default) or aligned text",
    },
    FlagSpec {
        name: "--log-level",
        metavar: Some("error|warn|info|debug"),
        help: "span log filter; debug includes per-frame spans (default info)",
    },
    FlagSpec {
        name: "--log-rotate-bytes",
        metavar: Some("N"),
        help: "rotate the span log to FILE.1 past N bytes, keeping at most \
               two generations (default 0 = never rotate)",
    },
    FlagSpec {
        name: "--slow-frame-ms",
        metavar: Some("N"),
        help: "log a warn-level slow_frame event for any frame whose decode \
               plus dispatch exceeds N milliseconds",
    },
    FlagSpec {
        name: "--sample-profile",
        metavar: Some("FILE"),
        help: "run a sampling profiler thread that folds every worker's \
               phase tag into flamegraph-ready collapsed stacks in FILE \
               (rewritten atomically; final flush at drain)",
    },
    FlagSpec {
        name: "--sample-hz",
        metavar: Some("N"),
        help: "sampling rate for --sample-profile, clamped to 1..=1000 \
               (default 99)",
    },
    FlagSpec {
        name: "--shared-matcher",
        metavar: Some("on|off|auto"),
        help: "share one pattern-set pass across a channel's subscriptions: \
               aligned queries pool predicate tests through a shared memo, \
               per-subscription results stay byte-identical; /metrics gains \
               sqlts_patternset_* counters (default off)",
    },
    FlagSpec {
        name: "--help",
        metavar: None,
        help: "print this help and exit",
    },
];

/// How `--profile` serializes the execution profile.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum MetricsFormat {
    #[default]
    Text,
    Json,
    Prom,
}

struct Args {
    csv: Option<PathBuf>,
    schema: Option<String>,
    demo_djia: bool,
    seed: u64,
    engine: EngineKind,
    direction: DirectionChoice,
    explain: bool,
    stats: bool,
    profile: bool,
    metrics_format: MetricsFormat,
    trace: Option<PathBuf>,
    trace_capacity: usize,
    strict_previous: bool,
    threads: NonZeroUsize,
    timeout_ms: Option<u64>,
    max_steps: Option<u64>,
    max_matches: Option<u64>,
    follow: bool,
    queries: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: u64,
    feed_limit: Option<u64>,
    bad_tuple: BadTuplePolicy,
    query: Option<String>,
}

/// Default worker count: one per available core, `1` when the platform
/// cannot say (which is also the exact legacy sequential path).
fn default_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Render the full help text from the flag table.
fn help_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "usage: sqlts [FLAGS] QUERY\n\
         \n\
         Run a SQL-TS sequence query (PODS 2001) over a CSV file or the\n\
         built-in demo table; the result is printed as CSV on stdout.\n\
         \n\
         flags:\n",
    );
    let width = FLAGS
        .iter()
        .map(|f| f.name.len() + f.metavar.map_or(0, |m| m.len() + 1))
        .max()
        .unwrap_or(0);
    for f in FLAGS {
        let lhs = match f.metavar {
            Some(m) => format!("{} {m}", f.name),
            None => f.name.to_string(),
        };
        let _ = writeln!(out, "  {lhs:width$}  {}", f.help);
    }
    out.push_str(
        "\nexample:\n\
         \x20 sqlts --demo-djia --stats \\\n\
         \x20   \"SELECT FIRST(Y).date AS from_d, Z.date AS to_d FROM djia SEQUENCE BY date \\\n\
         \x20    AS (*Y, Z) WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price\"\n\
         \n\
         exit codes: 0 success, 2 usage, 3 input (compile/CSV), 4 runtime\n\
         (governed termination or isolated cluster failures; the partial\n\
         result is still printed), 5 quarantine capacity exceeded\n",
    );
    out
}

fn usage() -> ! {
    eprint!("{}", help_text());
    std::process::exit(2)
}

/// Parse a flag's numeric value, exiting with usage (never panicking) on
/// a malformed or absent one.
fn numeric<T: std::str::FromStr>(v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

/// Require a flag's string value (present for every flag with a metavar;
/// exits with usage rather than panicking if the invariant ever breaks).
fn req(v: Option<String>) -> String {
    v.unwrap_or_else(|| usage())
}

fn parse_args() -> Args {
    let mut args = Args {
        csv: None,
        schema: None,
        demo_djia: false,
        seed: 2001,
        engine: EngineKind::Ops,
        direction: DirectionChoice::Forward,
        explain: false,
        stats: false,
        profile: false,
        metrics_format: MetricsFormat::Text,
        trace: None,
        trace_capacity: Instrument::DEFAULT_TRACE_CAPACITY,
        strict_previous: false,
        threads: default_threads(),
        timeout_ms: None,
        max_steps: None,
        max_matches: None,
        follow: false,
        queries: None,
        checkpoint: None,
        checkpoint_every: 1000,
        feed_limit: None,
        bad_tuple: BadTuplePolicy::Fail,
        query: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let name = if arg == "-h" { "--help" } else { arg.as_str() };
        let Some(spec) = FLAGS.iter().find(|f| f.name == name) else {
            if !arg.starts_with('-') && args.query.is_none() {
                args.query = Some(arg);
                continue;
            }
            usage();
        };
        // The table drives arity: flags with a metavar consume one value.
        let value = spec.metavar.map(|_| it.next().unwrap_or_else(|| usage()));
        match name {
            "--csv" => args.csv = Some(PathBuf::from(req(value))),
            "--schema" => args.schema = value,
            "--demo-djia" => args.demo_djia = true,
            "--seed" => args.seed = numeric(value),
            "--engine" => {
                args.engine = match value.as_deref() {
                    Some("naive") => EngineKind::Naive,
                    Some("backtrack") => EngineKind::NaiveBacktrack,
                    Some("ops") => EngineKind::Ops,
                    Some("shift-only") => EngineKind::OpsShiftOnly,
                    _ => usage(),
                }
            }
            "--direction" => {
                args.direction = match value.as_deref() {
                    Some("forward") => DirectionChoice::Forward,
                    Some("reverse") => DirectionChoice::Reverse,
                    Some("auto") => DirectionChoice::Auto,
                    _ => usage(),
                }
            }
            "--threads" => args.threads = numeric(value),
            "--timeout-ms" => args.timeout_ms = Some(numeric(value)),
            "--max-steps" => args.max_steps = Some(numeric(value)),
            "--max-matches" => args.max_matches = Some(numeric(value)),
            "--explain" => args.explain = true,
            "--stats" => args.stats = true,
            "--profile" => args.profile = true,
            "--metrics-format" => {
                args.metrics_format = match value.as_deref() {
                    Some("json") => MetricsFormat::Json,
                    Some("prom") => MetricsFormat::Prom,
                    Some("text") => MetricsFormat::Text,
                    _ => usage(),
                }
            }
            "--trace" => args.trace = Some(PathBuf::from(req(value))),
            "--trace-capacity" => args.trace_capacity = numeric(value),
            "--strict-previous" => args.strict_previous = true,
            "--follow" => args.follow = true,
            "--queries" => args.queries = Some(PathBuf::from(req(value))),
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(req(value))),
            "--checkpoint-every" => args.checkpoint_every = numeric(value),
            "--feed-limit" => args.feed_limit = Some(numeric(value)),
            "--on-bad-tuple" => {
                args.bad_tuple = match value.as_deref() {
                    Some("skip") => BadTuplePolicy::Skip,
                    Some("fail") => BadTuplePolicy::Fail,
                    Some(v) => match v.strip_prefix("quarantine:").and_then(|n| n.parse().ok()) {
                        Some(cap) => BadTuplePolicy::Quarantine { cap },
                        None => usage(),
                    },
                    None => usage(),
                }
            }
            "--help" => {
                print!("{}", help_text());
                std::process::exit(0)
            }
            _ => unreachable!("flag in table without a parse arm: {name}"),
        }
    }
    args
}

fn serve_help_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "usage: sqlts serve [FLAGS]\n\
         \n\
         Run the multi-tenant SQL-TS query server: a framed TCP protocol\n\
         (OPEN / SUBSCRIBE / FEED / CHECKPOINT / RESUME / UNSUBSCRIBE over\n\
         shared named input channels) plus HTTP GET /metrics on the same\n\
         port.  See the README's \"Server mode\" section for the protocol\n\
         grammar and a walkthrough.\n\
         \n\
         flags:\n",
    );
    let width = SERVE_FLAGS
        .iter()
        .map(|f| f.name.len() + f.metavar.map_or(0, |m| m.len() + 1))
        .max()
        .unwrap_or(0);
    for f in SERVE_FLAGS {
        let lhs = match f.metavar {
            Some(m) => format!("{} {m}", f.name),
            None => f.name.to_string(),
        };
        let _ = writeln!(out, "  {lhs:width$}  {}", f.help);
    }
    out
}

fn serve_usage() -> ! {
    eprint!("{}", serve_help_text());
    std::process::exit(2)
}

/// The `serve` subcommand: parse its flag table, bind, announce the
/// resolved address on stdout (tests and scripts parse this line), and
/// serve until killed.
fn run_serve() -> Result<(), CliError> {
    let mut config = sqlts_server::ServerConfig {
        listen: "127.0.0.1:7878".into(),
        ..sqlts_server::ServerConfig::default()
    };
    let mut timeout_ms: Option<u64> = None;
    let mut max_steps: Option<u64> = None;
    let mut max_matches: Option<u64> = None;
    let mut it = std::env::args().skip(2);
    while let Some(arg) = it.next() {
        let name = if arg == "-h" { "--help" } else { arg.as_str() };
        let Some(spec) = SERVE_FLAGS.iter().find(|f| f.name == name) else {
            serve_usage();
        };
        let value = spec
            .metavar
            .map(|_| it.next().unwrap_or_else(|| serve_usage()));
        match name {
            "--listen" => config.listen = value.unwrap_or_else(|| serve_usage()),
            "--max-subscriptions" => config.max_subscriptions = serve_numeric(value),
            "--queue-depth" => config.queue_depth = serve_numeric(value),
            "--poll-interval-ms" => {
                config.poll_interval = Duration::from_millis(serve_numeric(value))
            }
            "--max-frame-bytes" => config.max_frame_bytes = serve_numeric(value),
            "--timeout-ms" => timeout_ms = Some(serve_numeric(value)),
            "--max-steps" => max_steps = Some(serve_numeric(value)),
            "--max-matches" => max_matches = Some(serve_numeric(value)),
            "--engine" => {
                config.engine = match value.as_deref() {
                    Some("naive") => EngineKind::Naive,
                    Some("backtrack") => EngineKind::NaiveBacktrack,
                    Some("ops") => EngineKind::Ops,
                    Some("shift-only") => EngineKind::OpsShiftOnly,
                    _ => serve_usage(),
                }
            }
            "--retain-profiles" => config.retain_profiles = serve_numeric(value),
            "--data-dir" => {
                config.data_dir = Some(PathBuf::from(value.unwrap_or_else(|| serve_usage())))
            }
            "--fsync" => {
                config.fsync = value
                    .as_deref()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| serve_usage())
            }
            "--wal-segment-bytes" => {
                config.wal_segment_bytes = serve_numeric::<u64>(value).max(1)
            }
            "--replicate-to" => {
                config.replicate_to = Some(value.unwrap_or_else(|| serve_usage()))
            }
            "--repl-ack" => {
                config.repl_ack = value
                    .as_deref()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| serve_usage())
            }
            "--standby" => config.standby = true,
            "--promote-on-disconnect" => config.promote_on_disconnect = true,
            "--checkpoint-every-frames" => {
                config.checkpoint_every_frames = serve_numeric::<u64>(value).max(1)
            }
            "--log" => {
                config.log_file = Some(PathBuf::from(value.unwrap_or_else(|| serve_usage())))
            }
            "--log-format" => {
                config.log_format = value
                    .as_deref()
                    .and_then(sqlts_server::LogFormat::parse)
                    .unwrap_or_else(|| serve_usage())
            }
            "--log-level" => {
                config.log_level = value
                    .as_deref()
                    .and_then(sqlts_server::Level::parse)
                    .unwrap_or_else(|| serve_usage())
            }
            "--log-rotate-bytes" => config.log_rotate_bytes = serve_numeric(value),
            "--slow-frame-ms" => config.slow_frame_ms = Some(serve_numeric(value)),
            "--sample-profile" => {
                config.sample_profile = Some(PathBuf::from(value.unwrap_or_else(|| serve_usage())))
            }
            "--sample-hz" => config.sample_hz = serve_numeric(value),
            "--shared-matcher" => {
                config.shared_matcher = value
                    .as_deref()
                    .and_then(sqlts_server::SharedMatcherMode::parse)
                    .unwrap_or_else(|| serve_usage())
            }
            "--help" => {
                print!("{}", serve_help_text());
                std::process::exit(0)
            }
            _ => unreachable!("serve flag in table without a parse arm: {name}"),
        }
    }
    let mut governor = Governor::unlimited();
    if let Some(ms) = timeout_ms {
        governor = governor.with_timeout(Duration::from_millis(ms));
    }
    if let Some(n) = max_steps {
        governor = governor.with_max_steps(n);
    }
    if let Some(n) = max_matches {
        governor = governor.with_max_matches(n);
    }
    config.governor = governor;
    let replicate_to = config.replicate_to.clone();
    let repl_ack = config.repl_ack;
    let promote_on_disconnect = config.promote_on_disconnect;
    let server = std::sync::Arc::new(sqlts_server::Server::bind(config).map_err(serve_error)?);
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Runtime(format!("local_addr: {e}")))?;
    if let Some(report) = server.recovery() {
        for note in &report.notes {
            eprintln!("recovery: {note}");
        }
        println!(
            "recovered {} channel(s), {} subscription(s), {} row(s) replayed",
            report.channels, report.subscriptions, report.rows_replayed
        );
    }
    if server.is_standby() {
        println!(
            "standby: read-only until PROMOTE or SIGUSR1{}",
            if promote_on_disconnect {
                " (auto-promotes if the primary disconnects)"
            } else {
                ""
            }
        );
    }
    if let Some(target) = replicate_to {
        println!("replicating to {target} ({repl_ack} acks)");
    }
    // Stdout is line-buffered, so this announcement reaches pipes
    // immediately — drivers wait for it before connecting.
    println!("listening on {addr}");
    install_shutdown_handler();
    let promoter = install_promotion_relay(std::sync::Arc::clone(&server));
    server
        .run_until(&SHUTDOWN)
        .map_err(|e| CliError::Runtime(format!("server: {e}")))?;
    if let Some(handle) = promoter {
        let _ = handle.join();
    }
    println!("drained");
    Ok(())
}

/// Classify a server bind/recovery failure onto the CLI's exit codes:
/// unusable configuration (bad address, locked/unwritable data dir) is
/// usage (2), untrustworthy durable state is input (3), the rest runtime.
fn serve_error(e: sqlts_server::ServeError) -> CliError {
    match e.exit_code() {
        2 => CliError::Usage(e.message().to_string()),
        3 => CliError::Input(e.message().to_string()),
        _ => CliError::Runtime(e.message().to_string()),
    }
}

/// Set when SIGTERM/SIGINT arrives; `serve` drains and exits 0.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Arrange for SIGTERM and SIGINT (Ctrl-C) to request a graceful drain.
/// A raw `signal(2)` binding keeps this `std`-only; the handler does
/// nothing but store to an atomic, which is async-signal-safe.  The
/// accept loop polls the flag, so no EINTR dance is needed.
#[cfg(unix)]
fn install_shutdown_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

/// Set by SIGUSR1: the operator is asking a standby to promote.
static PROMOTE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Arrange for SIGUSR1 to promote a standby: the signal handler only
/// stores to an atomic (async-signal-safe); a relay thread forwards the
/// flag to [`Server::request_promotion`], which the accept loop serves.
/// Returns the relay thread's handle so the drain can join it.
#[cfg(unix)]
fn install_promotion_relay(
    server: std::sync::Arc<sqlts_server::Server>,
) -> Option<std::thread::JoinHandle<()>> {
    use std::sync::atomic::Ordering;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_signal(_sig: i32) {
        PROMOTE.store(true, Ordering::SeqCst);
    }
    const SIGUSR1: i32 = 10;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGUSR1, handler);
    }
    std::thread::Builder::new()
        .name("sqlts-promote-relay".into())
        .spawn(move || {
            while !SHUTDOWN.load(Ordering::SeqCst) {
                if PROMOTE.swap(false, Ordering::SeqCst) {
                    server.request_promotion();
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        })
        .ok()
}

#[cfg(not(unix))]
fn install_promotion_relay(
    _server: std::sync::Arc<sqlts_server::Server>,
) -> Option<std::thread::JoinHandle<()>> {
    None
}

/// Like [`numeric`] but exits through the serve-mode usage text.
fn serve_numeric<T: std::str::FromStr>(v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| serve_usage())
}

fn parse_schema(spec: &str) -> Result<Schema, String> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("bad schema entry {part:?} (want name:type)"))?;
        let ty = match ty.trim().to_ascii_lowercase().as_str() {
            "int" | "integer" => ColumnType::Int,
            "float" | "double" | "real" => ColumnType::Float,
            "str" | "string" | "varchar" | "text" => ColumnType::Str,
            "date" => ColumnType::Date,
            other => return Err(format!("unknown column type {other:?}")),
        };
        cols.push((name.trim().to_string(), ty));
    }
    Schema::new(cols).map_err(|e| e.to_string())
}

/// Every way a run can fail, unified so one printer renders the
/// diagnostic and one place maps failures to exit codes.
enum CliError {
    /// Unusable invocation or configuration (exit 2): bad listen
    /// address, locked or unwritable `--data-dir`.
    Usage(String),
    /// Bad query or bad input data (exit 3): compile errors (already
    /// caret-rendered), CSV ingest errors, schema-spec errors.
    Input(String),
    /// The query started but was cut short (exit 4): governed
    /// termination or isolated cluster failures.  Whatever partial
    /// result existed has already been printed to stdout.
    Runtime(String),
    /// A `--follow` quarantine reached its capacity (exit 5).
    Quarantine(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Runtime(_) => 4,
            CliError::Quarantine(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Input(m)
            | CliError::Runtime(m)
            | CliError::Quarantine(m) => m,
        }
    }
}

fn build_governor(args: &Args) -> Governor {
    let mut governor = Governor::unlimited();
    if let Some(ms) = args.timeout_ms {
        governor = governor.with_timeout(Duration::from_millis(ms));
    }
    if let Some(steps) = args.max_steps {
        governor = governor.with_max_steps(steps);
    }
    if let Some(matches) = args.max_matches {
        governor = governor.with_max_matches(matches);
    }
    governor
}

/// Which instrumentation the requested flags need: `--trace` retains
/// events, `--profile` and `--stats` need the metrics registry.
fn build_instrument(args: &Args) -> Instrument {
    Instrument {
        profile: args.profile || args.stats || args.trace.is_some(),
        trace: args.trace.is_some(),
        trace_capacity: args.trace_capacity,
    }
}

/// Print a result: CSV on stdout, then whatever the flags asked for on
/// stderr.  Shared by the batch path and the `--follow` path (a partial
/// governed result is still worth printing — callers see every match
/// produced before the cut).
fn emit_result(args: &Args, result: &QueryResult) -> Result<(), CliError> {
    print!("{}", result.table.to_csv_string());
    if args.stats {
        // Legacy single-line summary, byte-compatible with older releases…
        eprintln!("{}", result.stats);
        // …plus the per-cluster breakdown the profile now carries.
        if let Some(profile) = &result.profile {
            for c in &profile.clusters {
                let key = if c.key.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", c.key)
                };
                eprintln!(
                    "  cluster {}{}: {} tuples, {} tests {:?}, {} matches",
                    c.index,
                    key,
                    c.tuples,
                    c.metrics.total_tests(),
                    c.metrics.tests_per_position,
                    c.metrics.matches,
                );
            }
        }
    }
    if let Some(profile) = &result.profile {
        if args.profile {
            match args.metrics_format {
                MetricsFormat::Text => eprint!("{}", profile.to_text()),
                MetricsFormat::Json => eprintln!("{}", profile.to_json()),
                MetricsFormat::Prom => eprint!("{}", profile.to_prometheus()),
            }
        }
        if let Some(path) = &args.trace {
            sqlts_core::atomic_write(path, profile.events_jsonl().as_bytes())
                .map_err(|e| CliError::Runtime(format!("{}: {e}", path.display())))?;
        }
    }
    for failure in &result.partial {
        eprintln!("error: {failure}");
    }
    Ok(())
}

/// Snapshot the session and write the checkpoint text to `path`
/// atomically (tmp+rename), so a crash mid-write can never tear the
/// previous good checkpoint — the one file whose whole job is to
/// survive crashes.
fn save_checkpoint(session: &mut StreamSession<'_>, path: &Path) -> Result<(), CliError> {
    let checkpoint = session
        .snapshot()
        .map_err(|e| CliError::Runtime(format!("checkpoint: {e}")))?;
    sqlts_core::atomic_write(path, checkpoint.to_text().as_bytes())
        .map_err(|e| CliError::Runtime(format!("{}: {e}", path.display())))
}

/// Close the stream and report: print the (possibly partial) result, note
/// skipped/quarantined input, and map a governed trip to exit 4.
fn finish_and_report(args: &Args, session: StreamSession<'_>) -> Result<(), CliError> {
    let skipped = session.skipped();
    let quarantined = session.quarantine().len();
    let outcome = session.finish();
    if skipped > 0 {
        eprintln!("{skipped} bad tuple(s) skipped");
    }
    if quarantined > 0 {
        eprintln!("{quarantined} bad tuple(s) quarantined");
    }
    match outcome {
        Ok(result) => emit_result(args, &result),
        Err(StreamError::Governed { trip, partial }) => {
            if let Some(partial) = partial {
                emit_result(args, &partial)?;
            }
            Err(CliError::Runtime(format!(
                "stream terminated by resource governor: {trip} (partial result printed)"
            )))
        }
        Err(e) => Err(CliError::Runtime(e.to_string())),
    }
}

/// The `--follow` driver: feed stdin CSV records through a streaming
/// session, checkpointing as configured.
fn run_follow(
    args: &Args,
    query: &sqlts_core::CompiledQuery,
    exec: ExecOptions,
) -> Result<(), CliError> {
    let options = StreamOptions {
        exec,
        bad_tuple: args.bad_tuple,
        max_window_bytes: None,
        log_capacity: 0,
    };
    let mut session = match &args.checkpoint {
        Some(path) if path.exists() => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Input(format!("{}: {e}", path.display())))?;
            let checkpoint = SessionCheckpoint::from_text(&text)
                .map_err(|e| CliError::Input(format!("{}: {e}", path.display())))?;
            eprintln!(
                "resuming from {} ({} records already processed)",
                path.display(),
                checkpoint.records()
            );
            StreamSession::resume(query, options, checkpoint)
                .map_err(|e| CliError::Input(e.to_string()))?
        }
        _ => StreamSession::new(query, options).map_err(|e| CliError::Input(e.to_string()))?,
    };

    let stdin = std::io::stdin();
    let records = CsvRecords::new(query.schema.clone(), stdin.lock())
        .map_err(|e| CliError::Input(format!("stdin: {e}")))?;
    let mut since_save = 0u64;
    for item in records {
        let step = match item {
            Ok(row) => session.feed(row),
            // A line the CSV reader itself rejected goes through the same
            // skip/fail/quarantine policy as an unbindable tuple.
            Err(e) => session.quarantine_external(e.to_string(), String::new()),
        };
        match step {
            Ok(()) => {}
            Err(StreamError::Governed { .. }) => {
                if let Some(path) = &args.checkpoint {
                    save_checkpoint(&mut session, path)?;
                    eprintln!("checkpoint saved to {}", path.display());
                }
                return finish_and_report(args, session);
            }
            Err(StreamError::QuarantineFull { cap, tuple }) => {
                return Err(CliError::Quarantine(format!(
                    "quarantine full (cap {cap}); rejected {tuple}"
                )))
            }
            Err(StreamError::BadTuple(tuple)) => {
                return Err(CliError::Input(format!("bad tuple at {tuple}")))
            }
            Err(e) => return Err(CliError::Runtime(e.to_string())),
        }
        since_save += 1;
        if let Some(limit) = args.feed_limit {
            if session.records() >= limit {
                if let Some(path) = &args.checkpoint {
                    save_checkpoint(&mut session, path)?;
                }
                eprintln!(
                    "feed limit reached at {} records; stream left unfinished",
                    session.records()
                );
                return Ok(());
            }
        }
        if let Some(path) = &args.checkpoint {
            if since_save >= args.checkpoint_every {
                save_checkpoint(&mut session, path)?;
                since_save = 0;
            }
        }
    }
    if let Some(path) = &args.checkpoint {
        save_checkpoint(&mut session, path)?;
    }
    finish_and_report(args, session)
}

/// The `--queries` driver: compile every query in the file, execute the
/// whole set over one shared pass, and print each result as CSV under a
/// `-- query N` header (file order).  `--stats` adds each query's legacy
/// one-line cost summary plus the set-level sharing summary on stderr.
/// The exit code reflects the first failing query, after every result
/// (including governed partials) has been printed.
fn run_query_set(
    args: &Args,
    path: &Path,
    table: &Table,
    exec: ExecOptions,
) -> Result<(), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Input(format!("{}: {e}", path.display())))?;
    let sources: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    if sources.is_empty() {
        return Err(CliError::Input(format!(
            "{}: no queries (one per line; '#' starts a comment)",
            path.display()
        )));
    }
    let mut compiled = Vec::with_capacity(sources.len());
    for (i, src) in sources.iter().enumerate() {
        let query = compile(src, table.schema(), &exec.compile)
            .map_err(|e| CliError::Input(format!("query {i}: {}", e.render(src))))?;
        compiled.push(query);
    }
    if args.explain {
        for (i, query) in compiled.iter().enumerate() {
            eprintln!("-- query {i}");
            eprintln!("{}", explain(query));
        }
    }
    let set = sqlts_core::execute_set(&compiled, table, &exec);
    let mut failure: Option<CliError> = None;
    for (i, result) in set.results.iter().enumerate() {
        println!("-- query {i}");
        match result {
            Ok(result) => {
                print!("{}", result.table.to_csv_string());
                if args.stats {
                    eprintln!("query {i}: {}", result.stats);
                }
            }
            Err(ExecError::Governed { trip, partial }) => {
                print!("{}", partial.table.to_csv_string());
                if args.stats {
                    eprintln!("query {i}: {}", partial.stats);
                }
                if failure.is_none() {
                    failure = Some(CliError::Runtime(format!(
                        "query {i} terminated by resource governor: {trip} \
                         (partial result printed)"
                    )));
                }
            }
            Err(e) => {
                if failure.is_none() {
                    failure = Some(CliError::Input(format!("query {i}: {e}")));
                }
            }
        }
    }
    if args.stats {
        eprint!("{}", set.stats.to_text());
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn run() -> Result<(), CliError> {
    if std::env::args().nth(1).as_deref() == Some("serve") {
        return run_serve();
    }
    if std::env::args().nth(1).as_deref() == Some("trace-agg") {
        std::process::exit(trace_agg::run_trace_agg().into());
    }
    let args = parse_args();
    // `--queries` replaces the positional QUERY and is a batch-only mode.
    if args.queries.is_some() && (args.query.is_some() || args.follow) {
        usage();
    }

    // Batch modes materialize the whole table up front; `--follow` only
    // needs the schema (tuples arrive on stdin).
    let table: Option<Table> = if args.follow {
        None
    } else if args.demo_djia {
        Some(sqlts_datagen::djia_series(args.seed))
    } else {
        let csv = args.csv.clone().unwrap_or_else(|| usage());
        let schema_spec = args.schema.clone().unwrap_or_else(|| usage());
        let schema = parse_schema(&schema_spec).map_err(CliError::Input)?;
        Some(
            Table::from_csv_path(schema, &csv)
                .map_err(|e| CliError::Input(format!("{}: {e}", csv.display())))?,
        )
    };
    let schema: Schema = match &table {
        Some(t) => t.schema().clone(),
        None => {
            let schema_spec = args.schema.clone().unwrap_or_else(|| usage());
            parse_schema(&schema_spec).map_err(CliError::Input)?
        }
    };

    let compile_opts = CompileOptions::default();
    let exec = ExecOptions {
        engine: args.engine,
        policy: if args.strict_previous {
            FirstTuplePolicy::Fail
        } else {
            FirstTuplePolicy::VacuousTrue
        },
        compile: compile_opts,
        direction: args.direction,
        threads: args.threads,
        governor: build_governor(&args),
        instrument: build_instrument(&args),
    };

    if let Some(path) = &args.queries {
        let Some(table) = table else {
            return Err(CliError::Input(
                "internal: --queries reached without an input table".into(),
            ));
        };
        return run_query_set(&args, path, &table, exec);
    }

    let query_src = args.query.clone().unwrap_or_else(|| usage());
    let compiled = compile(&query_src, &schema, &exec.compile)
        .map_err(|e| CliError::Input(e.render(&query_src)))?;

    if args.explain {
        eprintln!("{}", explain(&compiled));
    }

    if args.follow {
        return run_follow(&args, &compiled, exec);
    }

    // Batch mode: the table was built above in every non-follow branch;
    // degrade to a diagnostic (never a panic) should that ever regress.
    let Some(table) = table else {
        return Err(CliError::Input(
            "internal: batch mode reached without an input table".into(),
        ));
    };
    let (result, trip) = match execute(&compiled, &table, &exec) {
        Ok(result) => (result, None),
        Err(ExecError::Governed { trip, partial }) => (*partial, Some(trip)),
        Err(ExecError::Lang(e)) => return Err(CliError::Input(e.render(&query_src))),
        Err(e @ ExecError::Table(_)) => return Err(CliError::Input(e.to_string())),
    };

    emit_result(&args, &result)?;
    if let Some(trip) = trip {
        return Err(CliError::Runtime(format!(
            "query terminated by resource governor: {trip} (partial result printed)"
        )));
    }
    if !result.partial.is_empty() {
        return Err(CliError::Runtime(format!(
            "{} cluster(s) failed; partial result printed",
            result.partial.len()
        )));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("{}", err.message());
            ExitCode::from(err.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The help text is generated from the flag table, so every accepted
    /// flag is documented by construction — this pins that property (and
    /// catches accidental duplicates in the table).
    #[test]
    fn every_accepted_flag_appears_in_help() {
        let help = help_text();
        for f in FLAGS {
            assert!(help.contains(f.name), "{} missing from --help", f.name);
            if let Some(m) = f.metavar {
                assert!(
                    help.contains(&format!("{} {m}", f.name)),
                    "{} metavar missing from --help",
                    f.name
                );
            }
        }
        let mut names: Vec<_> = FLAGS.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FLAGS.len(), "duplicate flag in table");
    }

    #[test]
    fn help_mentions_exit_codes_and_example() {
        let help = help_text();
        assert!(help.contains("exit codes:"));
        assert!(help.contains("--demo-djia --stats"));
    }
}
