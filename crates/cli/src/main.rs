//! `sqlts` — run SQL-TS sequence queries over CSV files.
//!
//! ```text
//! sqlts --csv quotes.csv --schema 'name:str,date:date,price:float' \
//!       [--engine naive|backtrack|ops|shift-only] [--explain] [--stats] \
//!       [--threads N] [--strict-previous] \
//!       [--timeout-ms N] [--max-steps N] [--max-matches N] \
//!       "SELECT … FROM … AS (X, *Y, Z) WHERE …"
//!
//! sqlts --demo-djia [--seed N] …     # use the built-in simulated DJIA
//! ```
//!
//! Prints the result as CSV on stdout; `--stats` adds the cost metric on
//! stderr, `--explain` prints the optimizer's θ/φ/shift/next report.
//!
//! Exit codes: `0` success, `2` usage, `3` input (query compile or CSV
//! ingest), `4` runtime (governed termination or isolated cluster
//! failures — the partial result is still printed).

use sqlts_core::{
    compile, execute, explain, CompileOptions, DirectionChoice, EngineKind, ExecError, ExecOptions,
    FirstTuplePolicy, Governor,
};
use sqlts_relation::{ColumnType, Schema, Table};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    csv: Option<PathBuf>,
    schema: Option<String>,
    demo_djia: bool,
    seed: u64,
    engine: EngineKind,
    direction: DirectionChoice,
    explain: bool,
    stats: bool,
    strict_previous: bool,
    threads: NonZeroUsize,
    timeout_ms: Option<u64>,
    max_steps: Option<u64>,
    max_matches: Option<u64>,
    query: Option<String>,
}

/// Default worker count: one per available core, `1` when the platform
/// cannot say (which is also the exact legacy sequential path).
fn default_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

fn usage() -> ! {
    eprintln!(
        "usage: sqlts (--csv FILE --schema 'col:type,…' | --demo-djia [--seed N]) \\\n\
         \x20            [--engine naive|backtrack|ops|shift-only] [--direction forward|reverse|auto] \\\n\
         \x20            [--explain] [--stats] [--threads N] [--strict-previous] \\\n\
         \x20            [--timeout-ms N] [--max-steps N] [--max-matches N] QUERY\n\
         \n\
         --threads N: worker threads for cluster-parallel execution\n\
         \x20            (default: all cores; 1 = sequential; output is\n\
         \x20            identical for every N)\n\
         --timeout-ms N: abort the query after N milliseconds of wall clock\n\
         --max-steps N: abort after N predicate tests (the paper's cost metric)\n\
         --max-matches N: abort after N retained matches (output rows)\n\
         \x20            (on abort the partial result is printed and the exit\n\
         \x20            code is 4)\n\
         \n\
         types: int, float, str, date\n\
         example:\n\
         \x20 sqlts --demo-djia --stats \\\n\
         \x20   \"SELECT FIRST(Y).date AS from_d, Z.date AS to_d FROM djia SEQUENCE BY date \\\n\
         \x20    AS (*Y, Z) WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price\""
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        csv: None,
        schema: None,
        demo_djia: false,
        seed: 2001,
        engine: EngineKind::Ops,
        direction: DirectionChoice::Forward,
        explain: false,
        stats: false,
        strict_previous: false,
        threads: default_threads(),
        timeout_ms: None,
        max_steps: None,
        max_matches: None,
        query: None,
    };
    let mut it = std::env::args().skip(1);
    let numeric = |it: &mut dyn Iterator<Item = String>| -> u64 {
        it.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage())
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => args.csv = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--schema" => args.schema = Some(it.next().unwrap_or_else(|| usage())),
            "--demo-djia" => args.demo_djia = true,
            "--seed" => args.seed = numeric(&mut it),
            "--engine" => {
                args.engine = match it.next().as_deref() {
                    Some("naive") => EngineKind::Naive,
                    Some("backtrack") => EngineKind::NaiveBacktrack,
                    Some("ops") => EngineKind::Ops,
                    Some("shift-only") => EngineKind::OpsShiftOnly,
                    _ => usage(),
                }
            }
            "--direction" => {
                args.direction = match it.next().as_deref() {
                    Some("forward") => DirectionChoice::Forward,
                    Some("reverse") => DirectionChoice::Reverse,
                    Some("auto") => DirectionChoice::Auto,
                    _ => usage(),
                }
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--timeout-ms" => args.timeout_ms = Some(numeric(&mut it)),
            "--max-steps" => args.max_steps = Some(numeric(&mut it)),
            "--max-matches" => args.max_matches = Some(numeric(&mut it)),
            "--explain" => args.explain = true,
            "--stats" => args.stats = true,
            "--strict-previous" => args.strict_previous = true,
            "--help" | "-h" => usage(),
            q if !q.starts_with('-') && args.query.is_none() => args.query = Some(arg),
            _ => usage(),
        }
    }
    args
}

fn parse_schema(spec: &str) -> Result<Schema, String> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("bad schema entry {part:?} (want name:type)"))?;
        let ty = match ty.trim().to_ascii_lowercase().as_str() {
            "int" | "integer" => ColumnType::Int,
            "float" | "double" | "real" => ColumnType::Float,
            "str" | "string" | "varchar" | "text" => ColumnType::Str,
            "date" => ColumnType::Date,
            other => return Err(format!("unknown column type {other:?}")),
        };
        cols.push((name.trim().to_string(), ty));
    }
    Schema::new(cols).map_err(|e| e.to_string())
}

/// Every way a run can fail, unified so one printer renders the
/// diagnostic and one place maps failures to exit codes.
enum CliError {
    /// Bad query or bad input data (exit 3): compile errors (already
    /// caret-rendered), CSV ingest errors, schema-spec errors.
    Input(String),
    /// The query started but was cut short (exit 4): governed
    /// termination or isolated cluster failures.  Whatever partial
    /// result existed has already been printed to stdout.
    Runtime(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Input(_) => 3,
            CliError::Runtime(_) => 4,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Input(m) | CliError::Runtime(m) => m,
        }
    }
}

fn build_governor(args: &Args) -> Governor {
    let mut governor = Governor::unlimited();
    if let Some(ms) = args.timeout_ms {
        governor = governor.with_timeout(Duration::from_millis(ms));
    }
    if let Some(steps) = args.max_steps {
        governor = governor.with_max_steps(steps);
    }
    if let Some(matches) = args.max_matches {
        governor = governor.with_max_matches(matches);
    }
    governor
}

fn run() -> Result<(), CliError> {
    let args = parse_args();
    let query_src = args.query.clone().unwrap_or_else(|| usage());

    let table: Table = if args.demo_djia {
        sqlts_datagen::djia_series(args.seed)
    } else {
        let csv = args.csv.clone().unwrap_or_else(|| usage());
        let schema_spec = args.schema.clone().unwrap_or_else(|| usage());
        let schema = parse_schema(&schema_spec).map_err(CliError::Input)?;
        Table::from_csv_path(schema, &csv)
            .map_err(|e| CliError::Input(format!("{}: {e}", csv.display())))?
    };

    let compile_opts = CompileOptions::default();
    let compiled = compile(&query_src, table.schema(), &compile_opts)
        .map_err(|e| CliError::Input(e.render(&query_src)))?;

    if args.explain {
        eprintln!("{}", explain(&compiled));
    }

    let exec_result = execute(
        &compiled,
        &table,
        &ExecOptions {
            engine: args.engine,
            policy: if args.strict_previous {
                FirstTuplePolicy::Fail
            } else {
                FirstTuplePolicy::VacuousTrue
            },
            compile: compile_opts,
            direction: args.direction,
            threads: args.threads,
            governor: build_governor(&args),
        },
    );
    let (result, trip) = match exec_result {
        Ok(result) => (result, None),
        Err(ExecError::Governed { trip, partial }) => (*partial, Some(trip)),
        Err(ExecError::Lang(e)) => return Err(CliError::Input(e.render(&query_src))),
        Err(e @ ExecError::Table(_)) => return Err(CliError::Input(e.to_string())),
    };

    // The partial result of a governed or partially-failed run is still
    // worth printing — callers see every match produced before the cut.
    print!("{}", result.table.to_csv_string());
    if args.stats {
        eprintln!("{}", result.stats);
    }
    for failure in &result.partial {
        eprintln!("error: {failure}");
    }
    if let Some(trip) = trip {
        return Err(CliError::Runtime(format!(
            "query terminated by resource governor: {trip} (partial result printed)"
        )));
    }
    if !result.partial.is_empty() {
        return Err(CliError::Runtime(format!(
            "{} cluster(s) failed; partial result printed",
            result.partial.len()
        )));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("{}", err.message());
            ExitCode::from(err.exit_code())
        }
    }
}
