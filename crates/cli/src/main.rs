//! `sqlts` — run SQL-TS sequence queries over CSV files.
//!
//! ```text
//! sqlts --csv quotes.csv --schema 'name:str,date:date,price:float' \
//!       [--engine naive|backtrack|ops|shift-only] [--explain] [--stats] \
//!       [--threads N] [--strict-previous] "SELECT … FROM … AS (X, *Y, Z) WHERE …"
//!
//! sqlts --demo-djia [--seed N] …     # use the built-in simulated DJIA
//! ```
//!
//! Prints the result as CSV on stdout; `--stats` adds the cost metric on
//! stderr, `--explain` prints the optimizer's θ/φ/shift/next report.

use sqlts_core::{
    compile, execute, explain, CompileOptions, DirectionChoice, EngineKind, ExecOptions,
    FirstTuplePolicy,
};
use sqlts_relation::{ColumnType, Schema, Table};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    csv: Option<PathBuf>,
    schema: Option<String>,
    demo_djia: bool,
    seed: u64,
    engine: EngineKind,
    direction: DirectionChoice,
    explain: bool,
    stats: bool,
    strict_previous: bool,
    threads: NonZeroUsize,
    query: Option<String>,
}

/// Default worker count: one per available core, `1` when the platform
/// cannot say (which is also the exact legacy sequential path).
fn default_threads() -> NonZeroUsize {
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

fn usage() -> ! {
    eprintln!(
        "usage: sqlts (--csv FILE --schema 'col:type,…' | --demo-djia [--seed N]) \\\n\
         \x20            [--engine naive|backtrack|ops|shift-only] [--direction forward|reverse|auto] \\\n\
         \x20            [--explain] [--stats] [--threads N] [--strict-previous] QUERY\n\
         \n\
         --threads N: worker threads for cluster-parallel execution\n\
         \x20            (default: all cores; 1 = sequential; output is\n\
         \x20            identical for every N)\n\
         \n\
         types: int, float, str, date\n\
         example:\n\
         \x20 sqlts --demo-djia --stats \\\n\
         \x20   \"SELECT FIRST(Y).date AS from_d, Z.date AS to_d FROM djia SEQUENCE BY date \\\n\
         \x20    AS (*Y, Z) WHERE Y.price < Y.previous.price AND Z.price > Z.previous.price\""
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        csv: None,
        schema: None,
        demo_djia: false,
        seed: 2001,
        engine: EngineKind::Ops,
        direction: DirectionChoice::Forward,
        explain: false,
        stats: false,
        strict_previous: false,
        threads: default_threads(),
        query: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" => args.csv = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--schema" => args.schema = Some(it.next().unwrap_or_else(|| usage())),
            "--demo-djia" => args.demo_djia = true,
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--engine" => {
                args.engine = match it.next().as_deref() {
                    Some("naive") => EngineKind::Naive,
                    Some("backtrack") => EngineKind::NaiveBacktrack,
                    Some("ops") => EngineKind::Ops,
                    Some("shift-only") => EngineKind::OpsShiftOnly,
                    _ => usage(),
                }
            }
            "--direction" => {
                args.direction = match it.next().as_deref() {
                    Some("forward") => DirectionChoice::Forward,
                    Some("reverse") => DirectionChoice::Reverse,
                    Some("auto") => DirectionChoice::Auto,
                    _ => usage(),
                }
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--explain" => args.explain = true,
            "--stats" => args.stats = true,
            "--strict-previous" => args.strict_previous = true,
            "--help" | "-h" => usage(),
            q if !q.starts_with('-') && args.query.is_none() => args.query = Some(arg),
            _ => usage(),
        }
    }
    args
}

fn parse_schema(spec: &str) -> Result<Schema, String> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("bad schema entry {part:?} (want name:type)"))?;
        let ty = match ty.trim().to_ascii_lowercase().as_str() {
            "int" | "integer" => ColumnType::Int,
            "float" | "double" | "real" => ColumnType::Float,
            "str" | "string" | "varchar" | "text" => ColumnType::Str,
            "date" => ColumnType::Date,
            other => return Err(format!("unknown column type {other:?}")),
        };
        cols.push((name.trim().to_string(), ty));
    }
    Schema::new(cols).map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args = parse_args();
    let query_src = args.query.clone().unwrap_or_else(|| usage());

    let table: Table = if args.demo_djia {
        sqlts_datagen::djia_series(args.seed)
    } else {
        let csv = args.csv.clone().unwrap_or_else(|| usage());
        let schema_spec = args.schema.clone().unwrap_or_else(|| usage());
        let schema = parse_schema(&schema_spec)?;
        Table::from_csv_path(schema, &csv).map_err(|e| e.to_string())?
    };

    let compile_opts = CompileOptions::default();
    let compiled =
        compile(&query_src, table.schema(), &compile_opts).map_err(|e| e.render(&query_src))?;

    if args.explain {
        eprintln!("{}", explain(&compiled));
    }

    let result = execute(
        &compiled,
        &table,
        &ExecOptions {
            engine: args.engine,
            policy: if args.strict_previous {
                FirstTuplePolicy::Fail
            } else {
                FirstTuplePolicy::VacuousTrue
            },
            compile: compile_opts,
            direction: args.direction,
            threads: args.threads,
        },
    )
    .map_err(|e| e.to_string())?;

    print!("{}", result.table.to_csv_string());
    if args.stats {
        eprintln!("{}", result.stats);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
