//! `sqlts trace-agg` — fold observability JSONL into a hierarchical
//! cost tree and (optionally) flamegraph-ready collapsed stacks.
//!
//! Two input dialects, auto-detected per line:
//!
//! * **Batch trace** (`sqlts --trace FILE.jsonl`): one search event per
//!   line, `{"cluster":0,"ev":"advance","i":1,"j":1}`, ending with a
//!   `{"dropped":N}` trailer.  The tree is `query → cluster:N → event
//!   kind`, counting events; the dropped trailer is surfaced so a
//!   truncated trace is never mistaken for a complete one.
//! * **Server span log** (`sqlts serve --log FILE`): begin/end/event
//!   records, `{"ts":…,"k":"b"|"e"|"ev","lvl":…,"name":…,"id":N,
//!   "parent":N,…}`.  Spans are stitched by id into their parent chains;
//!   the tree reports per-path counts, inclusive and self nanoseconds.
//!   A span with no end record (the process was killed mid-span) is
//!   closed at the last timestamp in the file, so a torn log still
//!   aggregates.
//!
//! Both dialects aggregate by *path*, never by arrival order or thread,
//! so the same underlying work always produces the same tree no matter
//! how many threads (or how many interleaved connections) emitted it.
//!
//! Collapsed-stack lines are `frame;frame;frame count` — the format
//! `flamegraph.pl` and friends consume.  Batch traces count events;
//! span logs count self-nanoseconds, so frame width is time.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;

/// One parsed flat-JSON record: key → raw value (strings unescaped,
/// numbers kept as their decimal text).
type Record = Vec<(String, String)>;

fn get<'a>(rec: &'a Record, key: &str) -> Option<&'a str> {
    rec.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// Parse one flat JSON object (`{"k":"v","n":12}`).  Both input dialects
/// are flat by construction — no arrays, no nesting — which keeps this
/// parser small enough to carry no dependency.
fn parse_flat_json(line: &str) -> Result<Record, String> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let mut rec = Record::new();
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {i}", i = *i));
        }
        *i += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *i += 1;
                    match bytes.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = line.get(*i + 1..*i + 5).ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            *i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is copied through char-wise.
                    let ch = line[*i..].chars().next().ok_or("bad utf-8")?;
                    out.push(ch);
                    *i += ch.len_utf8();
                }
            }
        }
    };
    skip_ws(&mut i);
    if bytes.get(i) != Some(&b'{') {
        return Err("expected '{'".into());
    }
    i += 1;
    skip_ws(&mut i);
    if bytes.get(i) == Some(&b'}') {
        return Ok(rec);
    }
    loop {
        skip_ws(&mut i);
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if bytes.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        skip_ws(&mut i);
        let value = match bytes.get(i) {
            Some(b'"') => parse_string(&mut i)?,
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'-'
                        || bytes[i] == b'+'
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E')
                {
                    i += 1;
                }
                line[start..i].to_string()
            }
            other => return Err(format!("unsupported value start {other:?}")),
        };
        rec.push((key, value));
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(rec),
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

/// Aggregated stats for one tree path.
#[derive(Default, Clone)]
struct Node {
    count: u64,
    /// Inclusive nanoseconds (0 in batch-trace mode).
    incl_ns: u64,
    /// Self nanoseconds: inclusive minus children's inclusive.
    self_ns: u64,
}

/// The aggregation result: path (`;`-joined frames) → stats, plus
/// header facts for the report.
pub struct CostTree {
    nodes: HashMap<String, Node>,
    /// "span log" or "batch trace".
    dialect: &'static str,
    /// Instantaneous events by name (span-log dialect only).
    events: HashMap<String, u64>,
    /// The `{"dropped":N}` trailer sum (batch-trace dialect only).
    dropped: u64,
    /// Lines that parsed as neither dialect.
    skipped_lines: u64,
    /// Spans with no end record, closed at end-of-file.
    unterminated: u64,
}

impl CostTree {
    /// Render the hierarchical text report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}:", self.dialect);
        if self.dropped > 0 {
            let _ = writeln!(out, "  (trace recorder dropped {} events)", self.dropped);
        }
        if self.unterminated > 0 {
            let _ = writeln!(
                out,
                "  ({} span(s) had no end record; closed at end of file)",
                self.unterminated
            );
        }
        if self.skipped_lines > 0 {
            let _ = writeln!(
                out,
                "  ({} unparseable line(s) skipped)",
                self.skipped_lines
            );
        }
        // Children of each path, sorted by count desc then name — counts
        // are deterministic for a given input, so so is the report.
        let mut children: HashMap<&str, Vec<&str>> = HashMap::new();
        let mut roots: Vec<&str> = Vec::new();
        for path in self.nodes.keys() {
            // A node is a child only if its parent path is itself a
            // node: span paths all hang off the virtual "serve" frame,
            // which never aggregates anything of its own.
            match path.rsplit_once(';') {
                Some((parent, _)) if self.nodes.contains_key(parent) => {
                    children.entry(parent).or_default().push(path)
                }
                _ => roots.push(path),
            }
        }
        let order = |paths: &mut Vec<&str>, nodes: &HashMap<String, Node>| {
            paths.sort_by(|a: &&str, b: &&str| {
                let (na, nb) = (&nodes[*a], &nodes[*b]);
                nb.count
                    .cmp(&na.count)
                    .then(nb.incl_ns.cmp(&na.incl_ns))
                    .then(a.cmp(b))
            });
        };
        order(&mut roots, &self.nodes);
        for list in children.values_mut() {
            order(list, &self.nodes);
        }
        let mut stack: Vec<(&str, usize)> = roots.iter().rev().map(|p| (*p, 0)).collect();
        while let Some((path, depth)) = stack.pop() {
            let node = &self.nodes[path];
            let frame = path.rsplit_once(';').map_or(path, |(_, f)| f);
            let indent = "  ".repeat(depth + 1);
            if self.dialect == "span log" {
                let _ = writeln!(
                    out,
                    "{indent}{frame}  count={} incl_ns={} self_ns={}",
                    node.count, node.incl_ns, node.self_ns
                );
            } else {
                let _ = writeln!(out, "{indent}{frame}  count={}", node.count);
            }
            if let Some(kids) = children.get(path) {
                for kid in kids.iter().rev() {
                    stack.push((kid, depth + 1));
                }
            }
        }
        if !self.events.is_empty() {
            let _ = writeln!(out, "events:");
            let mut names: Vec<_> = self.events.iter().collect();
            names.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            for (name, count) in names {
                let _ = writeln!(out, "  {name}  count={count}");
            }
        }
        out
    }

    /// Render collapsed-stack lines (`frame;frame;frame count`), sorted
    /// for determinism.  Each line carries *self* weight — batch traces
    /// subtract direct children's counts, span logs already track self
    /// nanoseconds — so folding the lines back up reconstructs inclusive
    /// totals without double-counting, exactly as flamegraph.pl expects.
    /// Zero-weight frames (pure aggregation parents) are omitted.
    pub fn to_collapsed(&self) -> String {
        let mut child_count: HashMap<&str, u64> = HashMap::new();
        for (path, node) in &self.nodes {
            if let Some((parent, _)) = path.rsplit_once(';') {
                if self.nodes.contains_key(parent) {
                    *child_count.entry(parent).or_insert(0) += node.count;
                }
            }
        }
        let mut lines: Vec<String> = self
            .nodes
            .iter()
            .filter_map(|(path, node)| {
                let weight = if self.dialect == "span log" {
                    node.self_ns
                } else {
                    node.count
                        .saturating_sub(child_count.get(path.as_str()).copied().unwrap_or(0))
                };
                (weight > 0).then(|| format!("{path} {weight}"))
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

/// One live span while stitching the span-log dialect.
struct OpenSpan {
    name: String,
    parent: u64,
    begin_ts: u64,
    /// Sum of ended children's inclusive time, for self-time.
    child_ns: u64,
}

/// Aggregate a JSONL document (batch trace or span log) into a
/// [`CostTree`].  Never fails on content: unparseable lines are counted
/// and skipped, because a half-written observability file is exactly
/// when an aggregator is most needed.
pub fn aggregate(text: &str) -> CostTree {
    let mut tree = CostTree {
        nodes: HashMap::new(),
        dialect: "batch trace",
        events: HashMap::new(),
        dropped: 0,
        skipped_lines: 0,
        unterminated: 0,
    };
    let mut open: HashMap<u64, OpenSpan> = HashMap::new();
    let mut paths: HashMap<u64, String> = HashMap::new();
    let mut saw_span = false;
    let mut last_ts = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(rec) = parse_flat_json(line) else {
            tree.skipped_lines += 1;
            continue;
        };
        if let Some(n) = get(&rec, "dropped") {
            if rec.len() == 1 {
                tree.dropped += n.parse::<u64>().unwrap_or(0);
                continue;
            }
        }
        if let (Some(cluster), Some(ev)) = (get(&rec, "cluster"), get(&rec, "ev")) {
            // Batch-trace event: query → cluster:N → kind.
            tree.nodes.entry("query".into()).or_default().count += 1;
            tree.nodes
                .entry(format!("query;cluster:{cluster}"))
                .or_default()
                .count += 1;
            tree.nodes
                .entry(format!("query;cluster:{cluster};{ev}"))
                .or_default()
                .count += 1;
            continue;
        }
        let (Some(kind), Some(name)) = (get(&rec, "k"), get(&rec, "name")) else {
            tree.skipped_lines += 1;
            continue;
        };
        saw_span = true;
        let ts = get(&rec, "ts").and_then(|t| t.parse().ok()).unwrap_or(0);
        last_ts = last_ts.max(ts);
        match kind {
            "b" => {
                let id: u64 = get(&rec, "id").and_then(|v| v.parse().ok()).unwrap_or(0);
                let parent: u64 = get(&rec, "parent")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                let path = match paths.get(&parent) {
                    Some(pp) => format!("{pp};{name}"),
                    None => format!("serve;{name}"),
                };
                paths.insert(id, path);
                open.insert(
                    id,
                    OpenSpan {
                        name: name.to_string(),
                        parent,
                        begin_ts: ts,
                        child_ns: 0,
                    },
                );
            }
            "e" => {
                let id: u64 = get(&rec, "id").and_then(|v| v.parse().ok()).unwrap_or(0);
                if let Some(span) = open.remove(&id) {
                    let incl = ts.saturating_sub(span.begin_ts);
                    if let Some(parent) = open.get_mut(&span.parent) {
                        parent.child_ns = parent.child_ns.saturating_add(incl);
                    }
                    let path = paths
                        .get(&id)
                        .cloned()
                        .unwrap_or_else(|| format!("serve;{}", span.name));
                    let node = tree.nodes.entry(path).or_default();
                    node.count += 1;
                    node.incl_ns = node.incl_ns.saturating_add(incl);
                    node.self_ns = node
                        .self_ns
                        .saturating_add(incl.saturating_sub(span.child_ns));
                }
            }
            "ev" => {
                *tree.events.entry(name.to_string()).or_insert(0) += 1;
            }
            _ => tree.skipped_lines += 1,
        }
    }
    // Close torn spans at the last timestamp the file reached.  Children
    // are drained before parents (descending id — children begin after
    // their parents, and ids are allocated in begin order) so parents'
    // self-time still excludes their children.
    let mut torn: Vec<u64> = open.keys().copied().collect();
    torn.sort_unstable_by(|a, b| b.cmp(a));
    for id in torn {
        let Some(span) = open.remove(&id) else {
            continue;
        };
        tree.unterminated += 1;
        let incl = last_ts.saturating_sub(span.begin_ts);
        if let Some(parent) = open.get_mut(&span.parent) {
            parent.child_ns = parent.child_ns.saturating_add(incl);
        }
        let path = paths
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("serve;{}", span.name));
        let node = tree.nodes.entry(path).or_default();
        node.count += 1;
        node.incl_ns = node.incl_ns.saturating_add(incl);
        node.self_ns = node
            .self_ns
            .saturating_add(incl.saturating_sub(span.child_ns));
    }
    if saw_span {
        tree.dialect = "span log";
    }
    tree
}

/// The `sqlts trace-agg IN.jsonl [--collapsed FILE]` entry point.
/// Returns the process exit code.
pub fn run_trace_agg() -> u8 {
    let mut input: Option<PathBuf> = None;
    let mut collapsed: Option<PathBuf> = None;
    let mut it = std::env::args().skip(2);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--collapsed" => match it.next() {
                Some(path) => collapsed = Some(PathBuf::from(path)),
                None => return trace_agg_usage(),
            },
            "--help" | "-h" => {
                print!("{}", TRACE_AGG_HELP);
                return 0;
            }
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(PathBuf::from(other));
            }
            _ => return trace_agg_usage(),
        }
    }
    let Some(input) = input else {
        return trace_agg_usage();
    };
    let text = match std::fs::read_to_string(&input) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("{}: {e}", input.display());
            return 3;
        }
    };
    let tree = aggregate(&text);
    print!("{}", tree.to_text());
    if let Some(path) = collapsed {
        if let Err(e) = std::fs::write(&path, tree.to_collapsed()) {
            eprintln!("{}: {e}", path.display());
            return 4;
        }
    }
    0
}

const TRACE_AGG_HELP: &str = "usage: sqlts trace-agg IN.jsonl [--collapsed FILE]\n\
    \n\
    Fold observability JSONL into a hierarchical cost tree (printed on\n\
    stdout) and optionally flamegraph-ready collapsed stacks (--collapsed).\n\
    Accepts both the batch trace format (sqlts --trace FILE.jsonl) and the\n\
    server span log (sqlts serve --log FILE); the dialect is auto-detected.\n";

fn trace_agg_usage() -> u8 {
    eprint!("{}", TRACE_AGG_HELP);
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_json_parses_strings_numbers_and_escapes() {
        let rec = parse_flat_json(r#"{"a":"x\n\"y\\","n":-12,"u":"A"}"#).unwrap();
        assert_eq!(get(&rec, "a"), Some("x\n\"y\\"));
        assert_eq!(get(&rec, "n"), Some("-12"));
        assert_eq!(get(&rec, "u"), Some("A"));
        assert!(parse_flat_json("not json").is_err());
        assert!(parse_flat_json(r#"{"unclosed":"#).is_err());
        assert_eq!(parse_flat_json("{}").unwrap().len(), 0);
    }

    #[test]
    fn batch_trace_aggregates_by_cluster_and_kind() {
        let text = "\
            {\"cluster\":0,\"ev\":\"advance\",\"i\":1,\"j\":1}\n\
            {\"cluster\":0,\"ev\":\"advance\",\"i\":2,\"j\":2}\n\
            {\"cluster\":0,\"ev\":\"fail\",\"i\":3,\"j\":1}\n\
            {\"cluster\":1,\"ev\":\"match\",\"start\":1,\"end\":3}\n\
            {\"dropped\":7}\n";
        let tree = aggregate(text);
        assert_eq!(tree.dialect, "batch trace");
        assert_eq!(tree.dropped, 7);
        assert_eq!(tree.nodes["query"].count, 4);
        assert_eq!(tree.nodes["query;cluster:0"].count, 3);
        assert_eq!(tree.nodes["query;cluster:0;advance"].count, 2);
        assert_eq!(tree.nodes["query;cluster:1;match"].count, 1);
        let report = tree.to_text();
        assert!(report.contains("dropped 7 events"), "{report}");
        assert!(report.contains("advance  count=2"), "{report}");
        let collapsed = tree.to_collapsed();
        assert!(
            collapsed.contains("query;cluster:0;advance 2\n"),
            "{collapsed}"
        );
        for line in collapsed.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty() && count.parse::<u64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn span_log_stitches_parents_and_computes_self_time() {
        let text = "\
            {\"ts\":100,\"k\":\"b\",\"lvl\":\"debug\",\"name\":\"dispatch\",\"id\":1,\"parent\":0}\n\
            {\"ts\":150,\"k\":\"b\",\"lvl\":\"debug\",\"name\":\"wal_append\",\"id\":2,\"parent\":1}\n\
            {\"ts\":250,\"k\":\"e\",\"lvl\":\"debug\",\"name\":\"wal_append\",\"id\":2}\n\
            {\"ts\":300,\"k\":\"ev\",\"lvl\":\"warn\",\"name\":\"governor_trip\",\"sub\":\"s1\"}\n\
            {\"ts\":400,\"k\":\"e\",\"lvl\":\"debug\",\"name\":\"dispatch\",\"id\":1}\n";
        let tree = aggregate(text);
        assert_eq!(tree.dialect, "span log");
        let dispatch = &tree.nodes["serve;dispatch"];
        assert_eq!((dispatch.count, dispatch.incl_ns), (1, 300));
        assert_eq!(dispatch.self_ns, 200, "300 incl - 100 child");
        let wal = &tree.nodes["serve;dispatch;wal_append"];
        assert_eq!((wal.incl_ns, wal.self_ns), (100, 100));
        assert_eq!(tree.events["governor_trip"], 1);
        let collapsed = tree.to_collapsed();
        assert!(collapsed.contains("serve;dispatch 200\n"), "{collapsed}");
        assert!(
            collapsed.contains("serve;dispatch;wal_append 100\n"),
            "{collapsed}"
        );
    }

    #[test]
    fn torn_span_log_closes_spans_at_eof() {
        let text = "\
            {\"ts\":10,\"k\":\"b\",\"lvl\":\"warn\",\"name\":\"drain\",\"id\":5,\"parent\":0}\n\
            {\"ts\":20,\"k\":\"b\",\"lvl\":\"debug\",\"name\":\"snapshot\",\"id\":6,\"parent\":5}\n\
            {\"ts\":90,\"k\":\"ev\",\"lvl\":\"info\",\"name\":\"accept\"}\n";
        let tree = aggregate(text);
        assert_eq!(tree.unterminated, 2);
        let drain = &tree.nodes["serve;drain"];
        assert_eq!(drain.incl_ns, 80, "closed at last ts 90");
        assert_eq!(drain.self_ns, 10, "snapshot child covered 70 of it");
        assert_eq!(tree.nodes["serve;drain;snapshot"].incl_ns, 70);
    }

    #[test]
    fn report_renders_span_tree_under_virtual_root_and_collapsed_is_self_weighted() {
        let text = "\
            {\"ts\":100,\"k\":\"b\",\"lvl\":\"debug\",\"name\":\"dispatch\",\"id\":1,\"parent\":0}\n\
            {\"ts\":150,\"k\":\"b\",\"lvl\":\"debug\",\"name\":\"fanout\",\"id\":2,\"parent\":1}\n\
            {\"ts\":350,\"k\":\"e\",\"lvl\":\"debug\",\"name\":\"fanout\",\"id\":2}\n\
            {\"ts\":400,\"k\":\"e\",\"lvl\":\"debug\",\"name\":\"dispatch\",\"id\":1}\n";
        let report = aggregate(text).to_text();
        // Span paths hang off the virtual "serve" frame, which has no
        // node of its own — the tree must still print them.
        assert!(
            report.contains("dispatch  count=1 incl_ns=300 self_ns=100"),
            "{report}"
        );
        assert!(
            report.contains("fanout  count=1 incl_ns=200 self_ns=200"),
            "{report}"
        );
        // Collapsed lines are self-weighted: a batch trace's pure parent
        // frames (query, cluster:N) fold to zero and are omitted, so
        // summing the file never double-counts.
        let collapsed = aggregate(
            "{\"cluster\":0,\"ev\":\"advance\",\"i\":1,\"j\":1}\n\
             {\"cluster\":0,\"ev\":\"fail\",\"i\":2,\"j\":1}\n",
        )
        .to_collapsed();
        assert!(!collapsed.contains("\nquery "), "{collapsed}");
        assert!(!collapsed.starts_with("query "), "{collapsed}");
        assert!(
            collapsed.contains("query;cluster:0;advance 1\n"),
            "{collapsed}"
        );
        let total: u64 = collapsed
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 2, "self weights sum to the event count");
    }

    #[test]
    fn garbage_lines_are_counted_not_fatal() {
        let tree =
            aggregate("not json at all\n{\"cluster\":0,\"ev\":\"shift\",\"j\":1,\"dist\":2}\n");
        assert_eq!(tree.skipped_lines, 1);
        assert_eq!(tree.nodes["query;cluster:0;shift"].count, 1);
    }
}
