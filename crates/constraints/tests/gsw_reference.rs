//! Deep coverage of the GSW fragment: the solver's verdicts are checked
//! against a brute-force reference over a dense rational grid.
//!
//! The grid evaluator cannot prove unsatisfiability (the reals are not a
//! grid), but it *can* refute: any grid point satisfying a system
//! falsifies an UNSAT verdict, and any grid point satisfying `A ∧ ¬b`
//! falsifies an implication verdict.  Completeness is additionally
//! spot-checked on systems whose solution sets are known to contain grid
//! points.

use sqlts_constraints::{Atom, CmpOp, System, Var};
use sqlts_rational::Rational;
use sqlts_tvl::Truth;

const X: Var = Var(0);
const Y: Var = Var(1);
const Z: Var = Var(2);

/// Half-integer grid over [-4, 8] in each of three variables.
fn grid() -> Vec<[Rational; 3]> {
    let steps: Vec<Rational> = (-8..=16).map(|i| Rational::new(i, 2)).collect();
    let mut out = Vec::new();
    for &a in &steps {
        for &b in &steps {
            for &c in &steps {
                out.push([a, b, c]);
            }
        }
    }
    out
}

fn satisfied_on_grid(sys: &System) -> bool {
    grid().iter().any(|point| {
        sys.eval_assignment(|v| point[v.0 as usize])
            .expect("numeric-only system")
    })
}

fn check_consistency(sys: &System) {
    match sys.satisfiability() {
        Truth::False => assert!(
            !satisfied_on_grid(sys),
            "solver claims UNSAT but grid satisfies: {sys}"
        ),
        Truth::True => { /* grid may or may not contain a witness */ }
        Truth::Unknown => panic!("pure-fragment system must be decisive: {sys}"),
    }
}

#[test]
fn op_pair_matrix_var_const() {
    // Every ordered pair of (op, constant) atoms on one variable.
    use CmpOp::*;
    let ops = [Eq, Ne, Lt, Le, Gt, Ge];
    let consts = [Rational::from(2), Rational::from(3)];
    for &op1 in &ops {
        for &c1 in &consts {
            for &op2 in &ops {
                for &c2 in &consts {
                    let sys = System::from_atoms([
                        Atom::VarConst {
                            x: X,
                            op: op1,
                            c: c1,
                        },
                        Atom::VarConst {
                            x: X,
                            op: op2,
                            c: c2,
                        },
                    ]);
                    check_consistency(&sys);
                    // Decisiveness is exact: UNSAT iff no real solution,
                    // which for two single-variable atoms the grid decides
                    // (all boundary values are half-integers ≤ 3).
                    if satisfied_on_grid(&sys) {
                        assert_eq!(sys.satisfiability(), Truth::True, "{sys}");
                    }
                }
            }
        }
    }
}

#[test]
fn op_pair_matrix_implication() {
    // p1 = (x op1 c1) implies p2 = (x op2 c2)?  Verified by grid
    // refutation in both directions of the verdict.
    use CmpOp::*;
    let ops = [Eq, Ne, Lt, Le, Gt, Ge];
    for &op1 in &ops {
        for &op2 in &ops {
            for c1 in [2i64, 3] {
                for c2 in [2i64, 3] {
                    let p1 = System::from_atoms([Atom::var_const(X, op1, c1)]);
                    let p2 = System::from_atoms([Atom::var_const(X, op2, c2)]);
                    let claimed = p1.implies(&p2);
                    // Grid check: a point where p1 holds and p2 fails
                    // refutes the implication.
                    let counterexample = grid().iter().any(|pt| {
                        let a = |v: Var| pt[v.0 as usize];
                        p1.eval_assignment(a).unwrap() && !p2.eval_assignment(a).unwrap()
                    });
                    if claimed {
                        assert!(
                            !counterexample,
                            "solver claims ({p1}) ⇒ ({p2}) but the grid refutes it"
                        );
                    } else {
                        // For single-variable interval atoms with
                        // half-integer-representable boundaries, the grid
                        // is complete: a true implication cannot be
                        // missed unless a counterexample exists.
                        assert!(
                            counterexample || p1.satisfiability() == Truth::False,
                            "solver missed ({p1}) ⇒ ({p2})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn difference_chains_with_offsets() {
    // x ≤ y - 1 ∧ y ≤ z - 1 ⇒ x ≤ z - 2, x < z, x ≠ z; and the chain plus
    // z ≤ x + 1 is unsatisfiable.
    let chain = System::from_atoms([
        Atom::var_var(X, CmpOp::Le, Y, -1),
        Atom::var_var(Y, CmpOp::Le, Z, -1),
    ]);
    for goal in [
        Atom::var_var(X, CmpOp::Le, Z, -2),
        Atom::var_var(X, CmpOp::Lt, Z, 0),
        Atom::var_var(X, CmpOp::Ne, Z, 0),
    ] {
        assert!(chain.implies(&System::from_atoms([goal.clone()])), "{goal}");
    }
    let mut closed = chain.clone();
    closed.push(Atom::var_var(Z, CmpOp::Le, X, 1));
    assert_eq!(closed.satisfiability(), Truth::False);
    check_consistency(&closed);
    // Relaxing one offset makes it satisfiable again (x = y-1 = z-2 = z-... ).
    let mut relaxed = chain.clone();
    relaxed.push(Atom::var_var(Z, CmpOp::Le, X, 2));
    assert_eq!(relaxed.satisfiability(), Truth::True);
}

#[test]
fn equality_propagates_through_chains() {
    // x = y + 1 ∧ y = z - 2 ⇒ x = z - 1.
    let sys = System::from_atoms([
        Atom::var_var(X, CmpOp::Eq, Y, 1),
        Atom::var_var(Y, CmpOp::Eq, Z, -2),
    ]);
    assert!(sys.implies(&System::from_atoms([Atom::var_var(X, CmpOp::Eq, Z, -1)])));
    assert!(!sys.implies(&System::from_atoms([Atom::var_var(X, CmpOp::Eq, Z, 0)])));
    // And the ≠ that contradicts the forced equality is caught.
    let mut bad = sys.clone();
    bad.push(Atom::var_var(X, CmpOp::Ne, Z, -1));
    assert_eq!(bad.satisfiability(), Truth::False);
}

#[test]
fn multiple_neqs_dont_overconstrain() {
    // Over the rationals, finitely many ≠ cannot exhaust an interval.
    let sys = System::from_atoms([
        Atom::var_const(X, CmpOp::Ge, 0),
        Atom::var_const(X, CmpOp::Le, 1),
        Atom::var_const(X, CmpOp::Ne, 0),
        Atom::var_const(X, CmpOp::Ne, 1),
        Atom::VarConst {
            x: X,
            op: CmpOp::Ne,
            c: Rational::new(1, 2),
        },
    ]);
    assert_eq!(sys.satisfiability(), Truth::True);
}

#[test]
fn strictness_chains() {
    // x < y ∧ y < z ∧ z ≤ x is unsat; all-loose version with equalities is sat.
    let strict = System::from_atoms([
        Atom::var_var(X, CmpOp::Lt, Y, 0),
        Atom::var_var(Y, CmpOp::Lt, Z, 0),
        Atom::var_var(Z, CmpOp::Le, X, 0),
    ]);
    assert_eq!(strict.satisfiability(), Truth::False);
    let loose = System::from_atoms([
        Atom::var_var(X, CmpOp::Le, Y, 0),
        Atom::var_var(Y, CmpOp::Le, Z, 0),
        Atom::var_var(Z, CmpOp::Le, X, 0),
    ]);
    assert_eq!(loose.satisfiability(), Truth::True); // x = y = z
                                                     // The loose cycle forces x = y: adding x ≠ y is unsat.
    let mut forced = loose.clone();
    forced.push(Atom::var_var(X, CmpOp::Ne, Y, 0));
    assert_eq!(forced.satisfiability(), Truth::False);
}

#[test]
fn ratio_and_difference_interplay() {
    // Over positive domains: x ≤ 0.5·y ∧ y ≤ 4 ⇒ x ≤ 4... (trivially from
    // x ≤ 0.5·y ≤ 2); the solver must connect ratio and bound spaces via
    // the dual encoding.
    let mut sys = System::from_atoms([
        Atom::var_scaled(X, CmpOp::Le, Rational::new(1, 2), Y),
        Atom::var_const(Y, CmpOp::Le, 4),
    ]);
    sys.assume_positive(X);
    sys.assume_positive(Y);
    // x < y follows from x ≤ y/2 over positives.
    assert!(sys.implies(&System::from_atoms([Atom::var_var(X, CmpOp::Lt, Y, 0)])));
    // The pure-bound consequence x ≤ 2 needs cross-space reasoning our
    // relaxation does not attempt; it must stay unproven (conservative),
    // not wrongly refuted.
    let goal = System::from_atoms([Atom::var_const(X, CmpOp::Le, 2)]);
    let _ = sys.implies(&goal); // no panic; either answer is sound here
    assert!(!sys.contradicts(&goal));
}

#[test]
fn example_queries_from_gsw_paper_style() {
    // The TKDE'96-style mixed system: x < y + 2 ∧ y < z - 3 ∧ z < 10
    // entails x < 9 and y < 7, refutes x > 9.
    let sys = System::from_atoms([
        Atom::var_var(X, CmpOp::Lt, Y, 2),
        Atom::var_var(Y, CmpOp::Lt, Z, -3),
        Atom::var_const(Z, CmpOp::Lt, 10),
    ]);
    assert!(sys.implies(&System::from_atoms([Atom::var_const(X, CmpOp::Lt, 9)])));
    assert!(sys.implies(&System::from_atoms([Atom::var_const(Y, CmpOp::Lt, 7)])));
    assert!(sys.contradicts(&System::from_atoms([Atom::var_const(X, CmpOp::Gt, 9)])));
    assert!(!sys.implies(&System::from_atoms([Atom::var_const(X, CmpOp::Lt, 8)])));
    check_consistency(&sys);
}
