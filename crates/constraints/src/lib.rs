#![warn(missing_docs)]

//! Implication and satisfiability for conjunctions of (in)equalities.
//!
//! Section 6 of *Optimization of Sequence Queries in Database Systems*
//! (Sadri & Zaniolo, PODS 2001) fills the optimizer's θ and φ matrices using
//! the algorithm of Guo, Sun and Weiss (TKDE 1996) for **implication** and
//! **satisfiability** of conjunctions of inequalities of the forms
//!
//! * `X op C`,
//! * `X op Y`,
//! * `X op Y + C`,
//!
//! with `op ∈ {=, ≠, <, ≤, >, ≥}`, extended (also per §6 of the paper) to
//! `X op C·Y` over positive domains through the ratio substitution
//! `Z = X / Y`.
//!
//! This crate implements that decision procedure from scratch:
//!
//! * [`Atom`] — one atomic constraint over opaque numeric variables
//!   (`Var`), categorical (string) variables, or an unanalyzable-but-
//!   syntactically-identifiable residue ([`Atom::Opaque`]);
//! * [`System`] — a conjunction of atoms plus positive-domain assumptions;
//!   [`System::satisfiability`] and [`System::implies`] are the two
//!   queries the optimizer asks;
//! * [`Formula`] — a disjunction of systems (DNF), supporting the paper's
//!   §8 *disjunctive conditions* extension.
//!
//! The solver is **sound and conservative**: `satisfiability() == False`
//! and `implies() == true` are proofs; anything it cannot decide comes back
//! `Unknown`/`false`, which the optimizer maps to `U` entries (degrading
//! gracefully toward the naive search, never skipping a real match).
//!
//! Satisfiability of the difference-constraint core is decided by
//! negative-cycle detection (Bellman–Ford) over a constraint graph with
//! strict/loose edge weights — exact over the rationals, hence complete for
//! the GSW fragment.

mod atom;
mod dbm;
mod dnf;
mod system;

pub use atom::{Atom, CmpOp, Var};
pub use dnf::Formula;
pub use system::System;
