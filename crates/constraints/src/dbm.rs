//! Difference-bound constraint graph with negative-cycle detection.
//!
//! The decidable core of the GSW procedure reduces every atom to
//! *difference constraints* `u - v ≤ c` or `u - v < c` over a set of nodes
//! (the variables, ratio variables, and a distinguished zero node).  A
//! conjunction of such constraints is satisfiable over the rationals iff the
//! corresponding weighted digraph has no cycle of total weight `< 0`, nor a
//! cycle of weight `= 0` that contains a strict edge.  We detect such cycles
//! with Bellman–Ford over (weight, strictness) pairs ordered
//! lexicographically — a strict edge behaves like an infinitesimal `-ε`.

use sqlts_rational::Rational;

/// A node of the constraint graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub(crate) enum Node {
    /// The distinguished constant-zero node, used to encode `x op c` as
    /// `x - zero op c`.
    Zero,
    /// A plain solver variable.
    Var(u32),
    /// The ratio variable `num / den` introduced by the §6 `X op C·Y`
    /// transform (valid over positive domains).  Always canonicalized with
    /// `num < den` by the caller.
    Ratio(u32, u32),
}

/// An edge weight: a rational bound plus a count of strict edges.
///
/// `(c, 0)` encodes `≤ c`; `(c, k)` with `k > 0` encodes `< c` and behaves
/// like `c - k·ε` for an infinitesimal `ε`.  Counting (rather than a
/// boolean) is essential: a cycle of total weight `0` containing a strict
/// edge must keep relaxing on every traversal so Bellman–Ford can detect
/// it, which a saturating boolean would hide.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Weight {
    pub c: Rational,
    pub strict: u32,
}

impl Weight {
    pub(crate) fn new(c: Rational, strict: bool) -> Weight {
        Weight {
            c,
            strict: strict as u32,
        }
    }

    /// `None` when the rational sum overflows `i128`; the caller treats that
    /// relaxation path as unusable and answers conservatively.
    fn add(self, other: Weight) -> Option<Weight> {
        Some(Weight {
            c: self.c.checked_add(other.c).ok()?,
            strict: self.strict.saturating_add(other.strict),
        })
    }

    /// Lexicographic "tighter-than" used by relaxation: each strict edge
    /// acts as an infinitesimal `-ε`.
    fn tighter_than(self, other: Weight) -> bool {
        self.c < other.c || (self.c == other.c && self.strict > other.strict)
    }
}

/// A difference constraint `to - from ≤ c` (or `< c` when strict).
#[derive(Clone, Debug)]
pub(crate) struct DiffConstraint {
    pub from: Node,
    pub to: Node,
    pub weight: Weight,
}

/// The constraint graph over difference constraints.
#[derive(Clone, Debug, Default)]
pub(crate) struct DiffGraph {
    constraints: Vec<DiffConstraint>,
}

impl DiffGraph {
    pub(crate) fn new() -> DiffGraph {
        DiffGraph::default()
    }

    /// Add `to - from ≤ c` (loose) or `to - from < c` (strict).
    pub(crate) fn add(&mut self, to: Node, from: Node, c: Rational, strict: bool) {
        self.constraints.push(DiffConstraint {
            from,
            to,
            weight: Weight::new(c, strict),
        });
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` iff the conjunction of difference constraints is satisfiable
    /// over the rationals.
    ///
    /// Complete for this fragment — returns `false` exactly when a negative
    /// (or zero-with-strict-edge) cycle exists — unless a relaxation step
    /// overflows `i128` (query constants of astronomical magnitude), in
    /// which case it conservatively returns `true`.  That keeps the GSW
    /// procedure sound: `satisfiable` never falsely claims UNSAT, and
    /// [`DiffGraph::entails`] (a refutation) never falsely claims
    /// entailment; the optimizer merely misses a pruning opportunity.
    pub(crate) fn satisfiable(&self) -> bool {
        // Collect nodes and index them.
        let mut nodes: Vec<Node> = Vec::new();
        for c in &self.constraints {
            nodes.push(c.from);
            nodes.push(c.to);
        }
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.is_empty() {
            return true;
        }
        let index_of = |n: Node| nodes.binary_search(&n).expect("node indexed");

        // Edges: constraint `to - from ≤ c` becomes edge from → to with
        // weight (c, strict); dist(to) ≤ dist(from) + c.
        let edges: Vec<(usize, usize, Weight)> = self
            .constraints
            .iter()
            .map(|c| (index_of(c.from), index_of(c.to), c.weight))
            .collect();

        // Bellman–Ford from a virtual source connected to every node with
        // weight 0 (equivalently: all distances start at 0).
        let n = nodes.len();
        let mut dist = vec![Weight::new(Rational::ZERO, false); n];
        for _ in 0..n {
            let mut changed = false;
            for &(from, to, w) in &edges {
                let Some(cand) = dist[from].add(w) else {
                    return true; // overflow: conservatively satisfiable
                };
                if cand.tighter_than(dist[to]) {
                    dist[to] = cand;
                    changed = true;
                }
            }
            if !changed {
                return true; // converged: no negative cycle reachable
            }
        }
        // One more pass: any further relaxation implies a negative cycle.
        for &(from, to, w) in &edges {
            let Some(cand) = dist[from].add(w) else {
                return true; // overflow: conservatively satisfiable
            };
            if cand.tighter_than(dist[to]) {
                return false;
            }
        }
        true
    }

    /// `true` iff the graph *entails* `to - from ≤ c` (strict: `< c`), i.e.
    /// the constraint holds in every solution.
    ///
    /// Decided by refutation: entailment holds iff adding the negation
    /// (`from - to < -c`, or `≤ -c` when the entailed constraint is strict)
    /// makes the graph unsatisfiable.  Vacuously true if the graph itself
    /// is unsatisfiable.
    pub(crate) fn entails(&self, to: Node, from: Node, c: Rational, strict: bool) -> bool {
        // ¬(to - from ≤ c)  ≡  to - from > c  ≡  from - to < -c
        // ¬(to - from < c)  ≡  to - from ≥ c  ≡  from - to ≤ -c
        let Ok(neg_c) = c.checked_neg() else {
            return false; // cannot even state the negation: don't claim proof
        };
        let mut g = self.clone();
        g.add(from, to, neg_c, !strict);
        !g.satisfiable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn empty_graph_is_satisfiable() {
        assert!(DiffGraph::new().satisfiable());
    }

    #[test]
    fn simple_chain_is_satisfiable() {
        // x - y ≤ 1, y - z ≤ 2, x - z ≤ 5
        let (x, y, z) = (Node::Var(0), Node::Var(1), Node::Var(2));
        let mut g = DiffGraph::new();
        g.add(x, y, r(1), false);
        g.add(y, z, r(2), false);
        g.add(x, z, r(5), false);
        assert!(g.satisfiable());
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn negative_cycle_is_unsat() {
        // x - y ≤ -1 and y - x ≤ 0  →  cycle weight -1.
        let (x, y) = (Node::Var(0), Node::Var(1));
        let mut g = DiffGraph::new();
        g.add(x, y, r(-1), false);
        g.add(y, x, r(0), false);
        assert!(!g.satisfiable());
    }

    #[test]
    fn zero_cycle_loose_is_sat_strict_is_unsat() {
        let (x, y) = (Node::Var(0), Node::Var(1));
        // x - y ≤ 0 and y - x ≤ 0: x = y, satisfiable.
        let mut g = DiffGraph::new();
        g.add(x, y, r(0), false);
        g.add(y, x, r(0), false);
        assert!(g.satisfiable());
        // x - y < 0 and y - x ≤ 0: x < y ≤ x, unsatisfiable.
        let mut g = DiffGraph::new();
        g.add(x, y, r(0), true);
        g.add(y, x, r(0), false);
        assert!(!g.satisfiable());
    }

    #[test]
    fn strictness_through_long_cycle() {
        // x1 < x2 ≤ x3 ≤ x1 is unsat; all-loose version is sat.
        let ns: Vec<Node> = (0..3).map(Node::Var).collect();
        let mut g = DiffGraph::new();
        g.add(ns[0], ns[1], r(0), true); // x1 - x2 < 0
        g.add(ns[1], ns[2], r(0), false);
        g.add(ns[2], ns[0], r(0), false);
        assert!(!g.satisfiable());
    }

    #[test]
    fn constants_via_zero_node() {
        // x ≤ 5 and x ≥ 6  →  unsat.
        let x = Node::Var(0);
        let mut g = DiffGraph::new();
        g.add(x, Node::Zero, r(5), false); // x - 0 ≤ 5
        g.add(Node::Zero, x, r(-6), false); // 0 - x ≤ -6  ≡  x ≥ 6
        assert!(!g.satisfiable());
    }

    #[test]
    fn entailment_by_transitivity() {
        // x ≤ y - 1, y ≤ z  entails  x < z  and  x ≤ z - 1, but not x ≤ z - 2.
        let (x, y, z) = (Node::Var(0), Node::Var(1), Node::Var(2));
        let mut g = DiffGraph::new();
        g.add(x, y, r(-1), false); // x - y ≤ -1
        g.add(y, z, r(0), false); // y - z ≤ 0
        assert!(g.entails(x, z, r(-1), false)); // x - z ≤ -1
        assert!(g.entails(x, z, r(0), true)); // x - z < 0
        assert!(!g.entails(x, z, r(-2), false));
    }

    #[test]
    fn entailment_vacuous_for_unsat_graph() {
        let (x, y) = (Node::Var(0), Node::Var(1));
        let mut g = DiffGraph::new();
        g.add(x, y, r(-1), false);
        g.add(y, x, r(0), false);
        assert!(!g.satisfiable());
        assert!(g.entails(x, y, r(100), false));
    }

    #[test]
    fn overflowing_weights_degrade_to_conservative_answers() {
        // The chain sums two near-i128::MAX weights, so relaxation
        // overflows.  satisfiable() must answer true (never falsely UNSAT)
        // and entails() must answer false (never falsely proven).
        let (x, y, z) = (Node::Var(0), Node::Var(1), Node::Var(2));
        let huge = Rational::from_int(i128::MAX);
        let mut g = DiffGraph::new();
        g.add(x, y, -huge, false);
        g.add(y, z, -huge, false);
        g.add(z, x, r(0), false);
        assert!(g.satisfiable());
        assert!(!g.entails(x, z, -huge, false));
    }

    #[test]
    fn rational_bounds() {
        // x < 23/20·"unit" modelled directly: x - z ≤ 23/20 strict, z - x ≤ -23/20 loose → unsat.
        let (x, z) = (Node::Var(0), Node::Zero);
        let mut g = DiffGraph::new();
        g.add(x, z, Rational::new(23, 20), true);
        g.add(z, x, Rational::new(-23, 20), false);
        assert!(!g.satisfiable());
    }
}
