//! Atomic constraints: the GSW inequality forms plus categorical equality
//! and an opaque residue for atoms outside the decidable fragment.

use sqlts_rational::Rational;
use std::fmt;

/// A numeric variable, identified by an opaque caller-assigned id.
///
/// The SQL-TS compiler maps tuple-attribute references (e.g. *current
/// tuple's `price`*, *previous tuple's `price`*) to `Var`s; the solver only
/// sees the ids.  Two atoms talk about the same quantity iff they use the
/// same id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A comparison operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠` (`<>` in SQL)
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// The logical negation: `¬(x < y)` is `x ≥ y`, etc.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The mirrored operator: `x < y` iff `y > x`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            eqne => eqne,
        }
    }

    /// Evaluate the comparison on two rationals.
    pub fn eval(self, lhs: Rational, rhs: Rational) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// Evaluate the comparison on two floats (runtime fast path).
    pub fn eval_f64(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// SQL rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One atomic constraint of a predicate conjunction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// `x op c` — variable against constant.
    VarConst {
        /// The variable.
        x: Var,
        /// Comparison operator.
        op: CmpOp,
        /// The constant.
        c: Rational,
    },
    /// `x op scale·y + add` — variable against (scaled, shifted) variable.
    ///
    /// With `scale = 1` this is the GSW `X op Y + C` form; with `add = 0`
    /// and `scale > 0` it is the paper's §6 `X op C·Y` form, decided via the
    /// ratio substitution when both variables have positive domains.  Other
    /// combinations are kept for faithful evaluation but are treated as
    /// opaque by the solver.
    VarVar {
        /// Left-hand variable.
        x: Var,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand variable.
        y: Var,
        /// Multiplier on `y`.
        scale: Rational,
        /// Additive offset.
        add: Rational,
    },
    /// `x = "value"` or `x ≠ "value"` — categorical (string) equality, e.g.
    /// `X.name = 'IBM'`.
    Cat {
        /// The categorical variable.
        x: Var,
        /// The compared string constant.
        value: String,
        /// `true` for `≠`, `false` for `=`.
        negated: bool,
    },
    /// An atom outside the decidable fragment, identified by a canonical
    /// string so that syntactically identical occurrences (and their
    /// negations) can still be recognized.  `negated` tracks logical
    /// polarity so that `¬Opaque(s)` and `Opaque(s)` contradict.
    Opaque {
        /// Canonical identity of the atom.
        token: String,
        /// Logical polarity.
        negated: bool,
    },
    /// The constant true.
    True,
    /// The constant false.
    False,
}

impl Atom {
    /// Convenience constructor: `x op c`.
    pub fn var_const(x: Var, op: CmpOp, c: impl Into<Rational>) -> Atom {
        Atom::VarConst { x, op, c: c.into() }
    }

    /// Convenience constructor: `x op y + add`.
    pub fn var_var(x: Var, op: CmpOp, y: Var, add: impl Into<Rational>) -> Atom {
        Atom::VarVar {
            x,
            op,
            y,
            scale: Rational::ONE,
            add: add.into(),
        }
    }

    /// Convenience constructor: `x op scale·y` (the §6 extension form).
    pub fn var_scaled(x: Var, op: CmpOp, scale: impl Into<Rational>, y: Var) -> Atom {
        Atom::VarVar {
            x,
            op,
            y,
            scale: scale.into(),
            add: Rational::ZERO,
        }
    }

    /// The logical negation of this atom (always a single atom in this
    /// language: every comparison operator has a complementary operator).
    pub fn negate(&self) -> Atom {
        match self {
            Atom::VarConst { x, op, c } => Atom::VarConst {
                x: *x,
                op: op.negate(),
                c: *c,
            },
            Atom::VarVar {
                x,
                op,
                y,
                scale,
                add,
            } => Atom::VarVar {
                x: *x,
                op: op.negate(),
                y: *y,
                scale: *scale,
                add: *add,
            },
            Atom::Cat { x, value, negated } => Atom::Cat {
                x: *x,
                value: value.clone(),
                negated: !negated,
            },
            Atom::Opaque { token, negated } => Atom::Opaque {
                token: token.clone(),
                negated: !negated,
            },
            Atom::True => Atom::False,
            Atom::False => Atom::True,
        }
    }

    /// All variables mentioned by the atom.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Atom::VarConst { x, .. } | Atom::Cat { x, .. } => vec![*x],
            Atom::VarVar { x, y, .. } => vec![*x, *y],
            _ => vec![],
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::VarConst { x, op, c } => write!(f, "{x} {op} {c}"),
            Atom::VarVar {
                x,
                op,
                y,
                scale,
                add,
            } => {
                write!(f, "{x} {op} ")?;
                if *scale != Rational::ONE {
                    write!(f, "{scale}*")?;
                }
                write!(f, "{y}")?;
                if !add.is_zero() {
                    if add.is_negative() {
                        write!(f, " - {}", -*add)?;
                    } else {
                        write!(f, " + {add}")?;
                    }
                }
                Ok(())
            }
            Atom::Cat { x, value, negated } => {
                write!(f, "{x} {} '{value}'", if *negated { "<>" } else { "=" })
            }
            Atom::Opaque { token, negated } => {
                if *negated {
                    write!(f, "NOT ({token})")
                } else {
                    write!(f, "({token})")
                }
            }
            Atom::True => write!(f, "TRUE"),
            Atom::False => write!(f, "FALSE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negate_is_involution() {
        let x = Var(0);
        let y = Var(1);
        let atoms = [
            Atom::var_const(x, CmpOp::Lt, 5),
            Atom::var_var(x, CmpOp::Ge, y, 3),
            Atom::var_scaled(x, CmpOp::Eq, Rational::new(23, 20), y),
            Atom::Cat {
                x,
                value: "IBM".into(),
                negated: false,
            },
            Atom::Opaque {
                token: "weird".into(),
                negated: false,
            },
            Atom::True,
            Atom::False,
        ];
        for a in &atoms {
            assert_eq!(&a.negate().negate(), a, "double negation of {a}");
        }
    }

    #[test]
    fn cmp_op_negate_and_flip() {
        use CmpOp::*;
        assert_eq!(Lt.negate(), Ge);
        assert_eq!(Le.negate(), Gt);
        assert_eq!(Eq.negate(), Ne);
        assert_eq!(Lt.flip(), Gt);
        assert_eq!(Ge.flip(), Le);
        assert_eq!(Eq.flip(), Eq);
        for op in [Eq, Ne, Lt, Le, Gt, Ge] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn cmp_op_eval_matches_rational_ordering() {
        let a = Rational::new(1, 2);
        let b = Rational::new(2, 3);
        assert!(CmpOp::Lt.eval(a, b));
        assert!(CmpOp::Le.eval(a, b));
        assert!(!CmpOp::Gt.eval(a, b));
        assert!(CmpOp::Ne.eval(a, b));
        assert!(CmpOp::Eq.eval(a, a));
        // Negated operator always gives the complementary result.
        use CmpOp::*;
        for op in [Eq, Ne, Lt, Le, Gt, Ge] {
            assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
            assert_eq!(op.eval(a, b), op.flip().eval(b, a));
        }
    }

    #[test]
    fn display_renders_sql_like() {
        let x = Var(0);
        let y = Var(1);
        assert_eq!(Atom::var_const(x, CmpOp::Lt, 50).to_string(), "v0 < 50");
        assert_eq!(
            Atom::var_var(x, CmpOp::Ge, y, -2).to_string(),
            "v0 >= v1 - 2"
        );
        assert_eq!(
            Atom::var_scaled(x, CmpOp::Gt, Rational::new(51, 50), y).to_string(),
            "v0 > 51/50*v1"
        );
        assert_eq!(
            Atom::Cat {
                x,
                value: "IBM".into(),
                negated: false
            }
            .to_string(),
            "v0 = 'IBM'"
        );
    }

    #[test]
    fn vars_collects_mentions() {
        let x = Var(3);
        let y = Var(7);
        assert_eq!(Atom::var_const(x, CmpOp::Eq, 1).vars(), vec![x]);
        assert_eq!(Atom::var_var(x, CmpOp::Lt, y, 0).vars(), vec![x, y]);
        assert!(Atom::True.vars().is_empty());
    }
}
