//! [`Formula`]: disjunctions of conjunctive systems, supporting the
//! paper's §8 *disjunctive conditions* extension of the OPS optimizer.
//!
//! A formula is kept in disjunctive normal form.  The solver queries are
//! lifted from [`System`] in the standard way and remain sound and
//! conservative; exact reasoning about `A ⇒ (g₁ ∨ … ∨ g_k)` requires a
//! cross-product expansion of the negated disjuncts, which we bound to keep
//! query compilation cheap (the paper's queries have a handful of
//! disjuncts at most).

use crate::atom::Atom;
use crate::system::System;
use sqlts_tvl::Truth;
use std::fmt;

/// Maximum number of conjunctions materialized while refuting an
/// implication with a disjunctive right-hand side.  Beyond this the solver
/// gives up (soundly) and reports "not proven".
const MAX_EXPANSION: usize = 512;

/// A disjunction of conjunctive [`System`]s (DNF).  An empty disjunction
/// is the constant FALSE.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Formula {
    disjuncts: Vec<System>,
}

impl Formula {
    /// The constant FALSE (empty disjunction).
    pub fn none() -> Formula {
        Formula::default()
    }

    /// A formula with a single conjunctive disjunct.
    pub fn conj(system: System) -> Formula {
        Formula {
            disjuncts: vec![system],
        }
    }

    /// A formula from several disjuncts.
    pub fn disjunction<I: IntoIterator<Item = System>>(disjuncts: I) -> Formula {
        Formula {
            disjuncts: disjuncts.into_iter().collect(),
        }
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[System] {
        &self.disjuncts
    }

    /// `true` iff the formula is a single conjunction.
    pub fn is_conjunctive(&self) -> bool {
        self.disjuncts.len() == 1
    }

    /// Three-valued satisfiability, lifted disjunct-wise.
    pub fn satisfiability(&self) -> Truth {
        if self.disjuncts.is_empty() {
            return Truth::False;
        }
        let mut all_false = true;
        for d in &self.disjuncts {
            match d.satisfiability() {
                Truth::True => return Truth::True,
                Truth::Unknown => all_false = false,
                Truth::False => {}
            }
        }
        if all_false {
            Truth::False
        } else {
            Truth::Unknown
        }
    }

    /// `true` iff `self ⇒ other` is proven: every disjunct of `self`
    /// implies the disjunction `other`.
    pub fn implies(&self, other: &Formula) -> bool {
        self.disjuncts.iter().all(|d| implies_disjunction(d, other))
    }

    /// `true` iff `self ∧ other` is proven unsatisfiable: every pair of
    /// disjuncts contradicts.
    pub fn contradicts(&self, other: &Formula) -> bool {
        if self.disjuncts.is_empty() || other.disjuncts.is_empty() {
            return true;
        }
        self.disjuncts
            .iter()
            .all(|a| other.disjuncts.iter().all(|b| a.contradicts(b)))
    }
}

/// Prove `d ⇒ (g₁ ∨ … ∨ g_k)` by refutation:
/// `d ∧ ¬g₁ ∧ … ∧ ¬g_k` must be unsatisfiable.  Each `¬gᵢ` is a
/// disjunction of negated atoms; their conjunction is expanded by
/// cross-product, every branch of which must be provably unsatisfiable.
fn implies_disjunction(d: &System, goal: &Formula) -> bool {
    match goal.disjuncts.len() {
        0 => d.satisfiability().is_false(),
        1 => d.implies(&goal.disjuncts[0]),
        _ => {
            // Fast path: implication of any single disjunct suffices.
            if goal.disjuncts.iter().any(|g| d.implies(g)) {
                return true;
            }
            // Cross-product refutation.
            let mut branches: Vec<Vec<Atom>> = vec![Vec::new()];
            for g in &goal.disjuncts {
                let negs: Vec<Atom> = g.atoms().iter().map(Atom::negate).collect();
                if negs.is_empty() {
                    // ¬TRUE = FALSE: the branch set is annihilated, the
                    // whole refutation target is unsatisfiable, hence the
                    // implication holds (goal contains a tautological
                    // disjunct).
                    return true;
                }
                if branches.len() * negs.len() > MAX_EXPANSION {
                    return false; // give up, conservatively
                }
                branches = branches
                    .iter()
                    .flat_map(|b| {
                        negs.iter().map(move |n| {
                            let mut b2 = b.clone();
                            b2.push(n.clone());
                            b2
                        })
                    })
                    .collect();
            }
            branches.into_iter().all(|extra| {
                let mut sys = d.clone();
                for a in extra {
                    sys.push(a);
                }
                sys.satisfiability().is_false()
            })
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "FALSE");
        }
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " OR ")?;
            }
            if self.disjuncts.len() > 1 {
                write!(f, "({d})")?;
            } else {
                write!(f, "{d}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{CmpOp, Var};

    const X: Var = Var(0);

    fn lt(c: i64) -> System {
        System::from_atoms([Atom::var_const(X, CmpOp::Lt, c)])
    }

    fn gt(c: i64) -> System {
        System::from_atoms([Atom::var_const(X, CmpOp::Gt, c)])
    }

    fn band(lo: i64, hi: i64) -> System {
        System::from_atoms([
            Atom::var_const(X, CmpOp::Gt, lo),
            Atom::var_const(X, CmpOp::Lt, hi),
        ])
    }

    #[test]
    fn empty_formula_is_false() {
        assert_eq!(Formula::none().satisfiability(), Truth::False);
        assert!(Formula::none().implies(&Formula::conj(lt(0))));
        assert!(Formula::none().contradicts(&Formula::conj(gt(0))));
    }

    #[test]
    fn single_disjunct_matches_system_behaviour() {
        let f = Formula::conj(band(40, 50));
        assert_eq!(f.satisfiability(), Truth::True);
        assert!(f.implies(&Formula::conj(lt(50))));
        assert!(f.contradicts(&Formula::conj(gt(60))));
        assert!(f.is_conjunctive());
    }

    #[test]
    fn disjunct_implies_union() {
        // x < 10  ⇒  (x < 20 ∨ x > 100)
        let f = Formula::conj(lt(10));
        let goal = Formula::disjunction([lt(20), gt(100)]);
        assert!(f.implies(&goal));
        // x < 30 does not imply it.
        assert!(!Formula::conj(lt(30)).implies(&goal));
    }

    #[test]
    fn split_interval_implication_needs_cross_product() {
        // (10 < x < 20)  ⇒  (x < 15 ∨ x > 12): neither disjunct alone is
        // implied, but the union covers the interval.
        let f = Formula::conj(band(10, 20));
        let goal = Formula::disjunction([lt(15), gt(12)]);
        assert!(f.implies(&goal));
        // But (10 < x < 20) does NOT imply (x < 13 ∨ x > 16).
        let gap = Formula::disjunction([lt(13), gt(16)]);
        assert!(!f.implies(&gap));
    }

    #[test]
    fn disjunctive_lhs_requires_all_branches() {
        // (x < 5 ∨ x > 50)  ⇒  (x < 10 ∨ x > 40)
        let f = Formula::disjunction([lt(5), gt(50)]);
        assert!(f.implies(&Formula::disjunction([lt(10), gt(40)])));
        // but not ⇒ x < 10.
        assert!(!f.implies(&Formula::conj(lt(10))));
    }

    #[test]
    fn contradiction_pairwise() {
        let f = Formula::disjunction([band(0, 10), band(20, 30)]);
        let g = Formula::conj(gt(40));
        assert!(f.contradicts(&g));
        let overlapping = Formula::conj(band(25, 45));
        assert!(!f.contradicts(&overlapping));
    }

    #[test]
    fn unsat_disjunction() {
        let f = Formula::disjunction([
            System::from_atoms([Atom::False]),
            System::from_atoms([
                Atom::var_const(X, CmpOp::Lt, 0),
                Atom::var_const(X, CmpOp::Gt, 0),
            ]),
        ]);
        assert_eq!(f.satisfiability(), Truth::False);
    }

    #[test]
    fn tautological_goal_disjunct() {
        let f = Formula::conj(band(0, 10));
        let goal = Formula::disjunction([System::new(), gt(100)]);
        assert!(f.implies(&goal));
    }

    #[test]
    fn display() {
        let f = Formula::disjunction([lt(5), gt(50)]);
        assert_eq!(f.to_string(), "(v0 < 5) OR (v0 > 50)");
        assert_eq!(Formula::none().to_string(), "FALSE");
    }
}
