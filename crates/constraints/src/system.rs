//! [`System`]: a conjunction of atoms and the two solver queries
//! (satisfiability, implication) the OPS optimizer needs.

use crate::atom::{Atom, CmpOp, Var};
use crate::dbm::{DiffGraph, Node};
use sqlts_rational::Rational;
use sqlts_tvl::Truth;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

/// A conjunction of [`Atom`]s plus positive-domain assumptions.
///
/// ```
/// use sqlts_constraints::{Atom, CmpOp, System, Var};
/// use sqlts_tvl::Truth;
///
/// let (x, prev) = (Var(0), Var(1));
/// // p2 = price < previous.price ∧ 40 < price < 50
/// let p2 = System::from_atoms([
///     Atom::var_var(x, CmpOp::Lt, prev, 0),
///     Atom::var_const(x, CmpOp::Gt, 40),
///     Atom::var_const(x, CmpOp::Lt, 50),
/// ]);
/// // p1 = price < previous.price
/// let p1 = System::from_atoms([Atom::var_var(x, CmpOp::Lt, prev, 0)]);
/// assert!(p2.implies(&p1));                      // θ_21 = 1 in Example 5
/// assert!(!p1.implies(&p2));
/// assert_eq!(p2.satisfiability(), Truth::True);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct System {
    atoms: Vec<Atom>,
    positive: BTreeSet<u32>,
}

impl System {
    /// The empty (always-true) conjunction.
    pub fn new() -> System {
        System::default()
    }

    /// Build from an iterator of atoms.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> System {
        System {
            atoms: atoms.into_iter().collect(),
            positive: BTreeSet::new(),
        }
    }

    /// Add an atom to the conjunction.
    pub fn push(&mut self, atom: Atom) {
        self.atoms.push(atom);
    }

    /// Record that `var` ranges over strictly positive values (e.g. stock
    /// prices), enabling the §6 ratio transform for `X op C·Y` atoms.
    pub fn assume_positive(&mut self, var: Var) {
        self.positive.insert(var.0);
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The variables assumed to range over strictly positive values.
    pub fn positive_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.positive.iter().map(|&v| Var(v))
    }

    /// `true` iff the conjunction is empty (trivially true).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The conjunction of `self` and `other` (positivity assumptions are
    /// unioned).
    pub fn conjoin(&self, other: &System) -> System {
        let mut atoms = Vec::with_capacity(self.atoms.len() + other.atoms.len());
        atoms.extend_from_slice(&self.atoms);
        atoms.extend_from_slice(&other.atoms);
        System {
            atoms,
            positive: self.positive.union(&other.positive).copied().collect(),
        }
    }

    /// Three-valued satisfiability.
    ///
    /// * `False` — **proven** unsatisfiable;
    /// * `True` — **proven** satisfiable (only claimed when every atom lies
    ///   in the decidable fragment, for which the check is complete);
    /// * `Unknown` — atoms outside the fragment prevented a proof.
    pub fn satisfiability(&self) -> Truth {
        let enc = Encoding::build(self);
        if enc.definitely_unsat() {
            Truth::False
        } else if enc.complete {
            Truth::True
        } else {
            Truth::Unknown
        }
    }

    /// `true` iff `self ⇒ other` is **proven**: every model of `self`
    /// satisfies every atom of `other`.
    ///
    /// Decided by refutation: for each conjunct `b` of `other`,
    /// `self ∧ ¬b` must be provably unsatisfiable.  (Vacuously true when
    /// `self` is unsatisfiable; the optimizer guards the `p_j ≢ F` side
    /// condition separately, as the paper's θ definition requires.)
    pub fn implies(&self, other: &System) -> bool {
        other.atoms.iter().all(|b| match b {
            Atom::True => true,
            _ => {
                let mut refute = self.clone();
                refute.positive.extend(other.positive.iter().copied());
                refute.push(b.negate());
                Encoding::build(&refute).definitely_unsat()
            }
        })
    }

    /// `true` iff `self ∧ other` is **proven** unsatisfiable.
    pub fn contradicts(&self, other: &System) -> bool {
        self.conjoin(other).satisfiability().is_false()
    }

    /// Evaluate the conjunction under a numeric assignment.
    ///
    /// Returns `None` if the system contains categorical or opaque atoms
    /// (no numeric semantics).  Used by soundness tests and the reference
    /// evaluator.
    pub fn eval_assignment(&self, assign: impl Fn(Var) -> Rational) -> Option<bool> {
        let mut result = true;
        for atom in &self.atoms {
            let holds = match atom {
                Atom::True => true,
                Atom::False => false,
                Atom::VarConst { x, op, c } => op.eval(assign(*x), *c),
                Atom::VarVar {
                    x,
                    op,
                    y,
                    scale,
                    add,
                } => op.eval(assign(*x), *scale * assign(*y) + *add),
                Atom::Cat { .. } | Atom::Opaque { .. } => return None,
            };
            result &= holds;
        }
        Some(result)
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "TRUE");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Canonical polarity for opaque tokens: among `op` and `op.negate()` we
/// keep whichever of `{Eq, Lt, Le}` applies and record the flip in the
/// `negated` flag, so that an atom and its negation share a token.
fn canonical_opaque(x: Var, op: CmpOp, y: Var, scale: Rational, add: Rational) -> Atom {
    let (canon_op, negated) = match op {
        CmpOp::Eq | CmpOp::Lt | CmpOp::Le => (op, false),
        CmpOp::Ne => (CmpOp::Eq, true),
        CmpOp::Ge => (CmpOp::Lt, true),
        CmpOp::Gt => (CmpOp::Le, true),
    };
    let token = format!("{x} {canon_op} {scale}*{y} + {add}");
    Atom::Opaque { token, negated }
}

/// The solver-internal encoding of a conjunction: a difference-constraint
/// graph, a list of `≠` constraints, categorical facts, and opaque residue.
struct Encoding {
    graph: DiffGraph,
    /// `u - v ≠ c` constraints, checked against forced equality.
    neqs: Vec<(Node, Node, Rational)>,
    /// Per categorical variable: required value (if any) and forbidden set.
    cat_eq: BTreeMap<u32, BTreeSet<String>>,
    cat_ne: BTreeMap<u32, BTreeSet<String>>,
    /// Opaque atoms as (token, negated) pairs.
    opaques: HashSet<(String, bool)>,
    /// An `Atom::False` (or an internally detected trivial falsity).
    has_false: bool,
    /// `true` iff every atom was encoded exactly (no opaque residue),
    /// making the satisfiability check complete.
    complete: bool,
}

impl Encoding {
    fn build(sys: &System) -> Encoding {
        let mut enc = Encoding {
            graph: DiffGraph::new(),
            neqs: Vec::new(),
            cat_eq: BTreeMap::new(),
            cat_ne: BTreeMap::new(),
            opaques: HashSet::new(),
            has_false: false,
            complete: true,
        };
        let positive = &sys.positive;
        let mut positive_nodes: BTreeSet<Node> = BTreeSet::new();
        let mut numeric_vars: BTreeSet<u32> = BTreeSet::new();
        let mut cat_vars: BTreeSet<u32> = BTreeSet::new();

        for atom in &sys.atoms {
            match atom {
                Atom::True => {}
                Atom::False => enc.has_false = true,
                Atom::VarConst { x, op, c } => {
                    numeric_vars.insert(x.0);
                    if positive.contains(&x.0) {
                        positive_nodes.insert(Node::Var(x.0));
                    }
                    enc.add_cmp(Node::Var(x.0), Node::Zero, *op, *c);
                }
                Atom::VarVar {
                    x,
                    op,
                    y,
                    scale,
                    add,
                } => {
                    numeric_vars.insert(x.0);
                    numeric_vars.insert(y.0);
                    for v in [x, y] {
                        if positive.contains(&v.0) {
                            positive_nodes.insert(Node::Var(v.0));
                        }
                    }
                    if *scale == Rational::ONE {
                        // GSW form: x op y + add  ≡  (x - y) op add.
                        enc.add_cmp(Node::Var(x.0), Node::Var(y.0), *op, *add);
                        // Over positive domains a pure comparison also
                        // holds in ratio space (`x op y ≡ x/y op 1`), which
                        // is what lets the solver connect it with §6 ratio
                        // atoms such as `x < 0.98·y ⇒ x < y`.
                        if add.is_zero()
                            && x.0 != y.0
                            && positive.contains(&x.0)
                            && positive.contains(&y.0)
                        {
                            if x.0 < y.0 {
                                let r = Node::Ratio(x.0, y.0);
                                positive_nodes.insert(r);
                                enc.add_cmp(r, Node::Zero, *op, Rational::ONE);
                            } else {
                                let r = Node::Ratio(y.0, x.0);
                                positive_nodes.insert(r);
                                enc.add_cmp(r, Node::Zero, op.flip(), Rational::ONE);
                            }
                        }
                    } else if add.is_zero()
                        && scale.is_positive()
                        && positive.contains(&x.0)
                        && positive.contains(&y.0)
                    {
                        // §6 ratio transform: x op s·y over positive domain.
                        if x.0 == y.0 {
                            // x op s·x  ≡  1 op s (dividing by x > 0).
                            if !op.eval(Rational::ONE, *scale) {
                                enc.has_false = true;
                            }
                        } else if x.0 < y.0 {
                            // r = x/y:  r op s.
                            let r = Node::Ratio(x.0, y.0);
                            positive_nodes.insert(r);
                            enc.add_cmp(r, Node::Zero, *op, *scale);
                        } else {
                            // r = y/x:  x op s·y  ≡  r flip(op) 1/s.
                            let r = Node::Ratio(y.0, x.0);
                            positive_nodes.insert(r);
                            enc.add_cmp(r, Node::Zero, op.flip(), scale.recip());
                        }
                    } else {
                        // Outside the decidable fragment: keep as opaque so
                        // that syntactic contradictions are still caught.
                        enc.complete = false;
                        enc.insert_opaque(canonical_opaque(*x, *op, *y, *scale, *add));
                    }
                }
                Atom::Cat { x, value, negated } => {
                    cat_vars.insert(x.0);
                    if *negated {
                        enc.cat_ne.entry(x.0).or_default().insert(value.clone());
                    } else {
                        enc.cat_eq.entry(x.0).or_default().insert(value.clone());
                    }
                }
                Atom::Opaque { .. } => {
                    enc.complete = false;
                    enc.insert_opaque(atom.clone());
                }
            }
        }

        // A variable used both numerically and categorically is a type
        // error upstream; refuse to claim completeness for it.
        if numeric_vars.intersection(&cat_vars).next().is_some() {
            enc.complete = false;
        }

        // Positivity: v > 0 for every positive-domain variable that occurs,
        // and every ratio node (a quotient of positives is positive).
        for node in positive_nodes {
            enc.graph.add(Node::Zero, node, Rational::ZERO, true); // 0 - v < 0
        }
        enc
    }

    fn insert_opaque(&mut self, atom: Atom) {
        if let Atom::Opaque { token, negated } = atom {
            if self.opaques.contains(&(token.clone(), !negated)) {
                // Both an atom and its negation are asserted.
                self.has_false = true;
            }
            self.opaques.insert((token, negated));
        }
    }

    /// Encode `lhs - rhs op c` into graph edges / the `≠` list.
    fn add_cmp(&mut self, lhs: Node, rhs: Node, op: CmpOp, c: Rational) {
        match op {
            CmpOp::Le => self.graph.add(lhs, rhs, c, false),
            CmpOp::Lt => self.graph.add(lhs, rhs, c, true),
            CmpOp::Ge => self.graph.add(rhs, lhs, -c, false),
            CmpOp::Gt => self.graph.add(rhs, lhs, -c, true),
            CmpOp::Eq => {
                self.graph.add(lhs, rhs, c, false);
                self.graph.add(rhs, lhs, -c, false);
            }
            CmpOp::Ne => self.neqs.push((lhs, rhs, c)),
        }
    }

    /// `true` iff the conjunction is **provably** unsatisfiable.
    fn definitely_unsat(&self) -> bool {
        if self.has_false {
            return true;
        }
        // Categorical contradictions: two distinct required values, or a
        // required value that is also forbidden.
        for (var, eqs) in &self.cat_eq {
            if eqs.len() > 1 {
                return true;
            }
            if let (Some(v), Some(nes)) = (eqs.iter().next(), self.cat_ne.get(var)) {
                if nes.contains(v) {
                    return true;
                }
            }
        }
        if !self.graph.satisfiable() {
            return true;
        }
        // Over the rationals the solution set of the difference constraints
        // is convex, so the conjunction with finitely many `≠`s is
        // unsatisfiable iff some single `≠` is forced to equality.
        for &(u, v, c) in &self.neqs {
            if self.graph.entails(u, v, c, false) && self.graph.entails(v, u, -c, false) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Truth::*;

    const X: Var = Var(0); // current price
    const P: Var = Var(1); // previous price

    fn falling() -> System {
        System::from_atoms([Atom::var_var(X, CmpOp::Lt, P, 0)])
    }

    fn rising() -> System {
        System::from_atoms([Atom::var_var(X, CmpOp::Gt, P, 0)])
    }

    #[test]
    fn example5_pairwise_relations() {
        // Example 4/5 of the paper:
        //   p1 = price < prev
        //   p2 = price < prev ∧ 40 < price < 50
        //   p3 = price > prev ∧ price < 52
        //   p4 = price > prev
        let p1 = falling();
        let p2 = System::from_atoms([
            Atom::var_var(X, CmpOp::Lt, P, 0),
            Atom::var_const(X, CmpOp::Gt, 40),
            Atom::var_const(X, CmpOp::Lt, 50),
        ]);
        let p3 = System::from_atoms([
            Atom::var_var(X, CmpOp::Gt, P, 0),
            Atom::var_const(X, CmpOp::Lt, 52),
        ]);
        let p4 = rising();

        assert!(p2.implies(&p1), "θ21 = 1");
        assert!(p3.contradicts(&p1), "θ31 = 0");
        assert!(p3.contradicts(&p2), "θ32 = 0");
        assert!(p4.contradicts(&p2), "θ42 = 0");
        assert!(p4.contradicts(&p1), "θ41 = 0");
        // ¬p4 = price ≤ prev  ⇒  ¬p3 (p3 requires price > prev): φ43 = 0,
        // i.e. p3 ⇒ p4.
        assert!(p3.implies(&p4), "φ43 = 0 (p3 ⇒ p4)");
        // And the relations the paper leaves at U really are undecided:
        assert!(!p4.implies(&p3) && !p4.contradicts(&p3), "θ43 = U");
        assert!(!p1.implies(&p2), "θ part of φ21 = U story");
    }

    #[test]
    fn satisfiability_basics() {
        assert_eq!(System::new().satisfiability(), True);
        let contradictory = System::from_atoms([
            Atom::var_const(X, CmpOp::Lt, 10),
            Atom::var_const(X, CmpOp::Gt, 10),
        ]);
        assert_eq!(contradictory.satisfiability(), False);
        let boundary = System::from_atoms([
            Atom::var_const(X, CmpOp::Le, 10),
            Atom::var_const(X, CmpOp::Ge, 10),
        ]);
        assert_eq!(boundary.satisfiability(), True); // x = 10
        let strict = System::from_atoms([
            Atom::var_const(X, CmpOp::Le, 10),
            Atom::var_const(X, CmpOp::Ge, 10),
            Atom::var_const(X, CmpOp::Ne, 10),
        ]);
        assert_eq!(strict.satisfiability(), False); // forced x = 10 but x ≠ 10
    }

    #[test]
    fn neq_not_forced_is_sat() {
        let s = System::from_atoms([
            Atom::var_const(X, CmpOp::Le, 10),
            Atom::var_const(X, CmpOp::Ne, 10),
        ]);
        assert_eq!(s.satisfiability(), True);
    }

    #[test]
    fn var_var_neq_forced() {
        // x = y + 2 ∧ x ≠ y + 2 is unsat; x ≤ y + 2 ∧ x ≠ y + 2 is sat.
        let forced = System::from_atoms([
            Atom::var_var(X, CmpOp::Eq, P, 2),
            Atom::var_var(X, CmpOp::Ne, P, 2),
        ]);
        assert_eq!(forced.satisfiability(), False);
        let loose = System::from_atoms([
            Atom::var_var(X, CmpOp::Le, P, 2),
            Atom::var_var(X, CmpOp::Ne, P, 2),
        ]);
        assert_eq!(loose.satisfiability(), True);
    }

    #[test]
    fn transitive_implication_through_chain() {
        // x < y ∧ y < z  ⇒  x < z.
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let chain = System::from_atoms([
            Atom::var_var(x, CmpOp::Lt, y, 0),
            Atom::var_var(y, CmpOp::Lt, z, 0),
        ]);
        let goal = System::from_atoms([Atom::var_var(x, CmpOp::Lt, z, 0)]);
        assert!(chain.implies(&goal));
        let too_strong = System::from_atoms([Atom::var_var(x, CmpOp::Lt, z, -5)]);
        assert!(!chain.implies(&too_strong));
    }

    #[test]
    fn gsw_offset_form() {
        // x ≤ y - 3  ⇒  x < y and x ≠ y.
        let s = System::from_atoms([Atom::var_var(X, CmpOp::Le, P, -3)]);
        assert!(s.implies(&System::from_atoms([Atom::var_var(X, CmpOp::Lt, P, 0)])));
        assert!(s.implies(&System::from_atoms([Atom::var_var(X, CmpOp::Ne, P, 0)])));
    }

    fn positive(mut s: System) -> System {
        s.assume_positive(X);
        s.assume_positive(P);
        s
    }

    #[test]
    fn ratio_transform_example10_style() {
        // Over positive prices: price < 0.98·prev  ⇒  price < prev.
        let drop2pct = positive(System::from_atoms([Atom::var_scaled(
            X,
            CmpOp::Lt,
            Rational::new(49, 50),
            P,
        )]));
        assert!(drop2pct.implies(&positive(falling())));
        // ...and contradicts price > 1.02·prev.
        let rise2pct = positive(System::from_atoms([Atom::var_scaled(
            X,
            CmpOp::Gt,
            Rational::new(51, 50),
            P,
        )]));
        assert!(drop2pct.contradicts(&rise2pct));
        // The "flat band" 0.98·prev < price < 1.02·prev is satisfiable and
        // compatible with neither.
        let flat = positive(System::from_atoms([
            Atom::var_scaled(X, CmpOp::Gt, Rational::new(49, 50), P),
            Atom::var_scaled(X, CmpOp::Lt, Rational::new(51, 50), P),
        ]));
        assert_eq!(flat.satisfiability(), True);
        assert!(flat.contradicts(&drop2pct));
        assert!(!flat.contradicts(&positive(rising())));
    }

    #[test]
    fn ratio_transform_mirrored_orientation() {
        // prev > 1.02·price (note swapped roles)  ≡  price < prev/1.02,
        // which implies price < prev.
        let s = positive(System::from_atoms([Atom::var_scaled(
            P,
            CmpOp::Gt,
            Rational::new(51, 50),
            X,
        )]));
        assert!(s.implies(&positive(falling())));
    }

    #[test]
    fn ratio_without_positivity_is_conservative() {
        // Without positive-domain assumptions the transform is invalid and
        // the solver must stay agnostic.
        let drop = System::from_atoms([Atom::var_scaled(X, CmpOp::Lt, Rational::new(49, 50), P)]);
        assert_eq!(drop.satisfiability(), Unknown);
        assert!(!drop.implies(&falling()));
        // But syntactic identity still works.
        assert!(drop.implies(&drop.clone()));
        // And a syntactic contradiction is caught.
        let anti = System::from_atoms([Atom::var_scaled(X, CmpOp::Ge, Rational::new(49, 50), P)]);
        assert!(drop.contradicts(&anti));
    }

    #[test]
    fn self_ratio_degenerate() {
        // x < 0.9·x over positive x is false; x < 1.1·x is trivially true.
        let shrink = positive(System::from_atoms([Atom::var_scaled(
            X,
            CmpOp::Lt,
            Rational::new(9, 10),
            X,
        )]));
        assert_eq!(shrink.satisfiability(), False);
        let grow = positive(System::from_atoms([Atom::var_scaled(
            X,
            CmpOp::Lt,
            Rational::new(11, 10),
            X,
        )]));
        assert_eq!(grow.satisfiability(), True);
    }

    #[test]
    fn categorical_atoms() {
        let ibm = System::from_atoms([Atom::Cat {
            x: Var(9),
            value: "IBM".into(),
            negated: false,
        }]);
        let intc = System::from_atoms([Atom::Cat {
            x: Var(9),
            value: "INTC".into(),
            negated: false,
        }]);
        assert!(ibm.contradicts(&intc));
        assert!(ibm.implies(&ibm.clone()));
        let not_ibm = System::from_atoms([Atom::Cat {
            x: Var(9),
            value: "IBM".into(),
            negated: true,
        }]);
        assert!(ibm.contradicts(&not_ibm));
        assert!(intc.implies(&not_ibm), "name='INTC' ⇒ name≠'IBM'");
        assert_eq!(not_ibm.satisfiability(), True);
    }

    #[test]
    fn opaque_atoms_are_conservative_but_syntactic() {
        let a = Atom::Opaque {
            token: "mystery".into(),
            negated: false,
        };
        let s = System::from_atoms([a.clone()]);
        assert_eq!(s.satisfiability(), Unknown);
        assert!(s.implies(&System::from_atoms([a.clone()])));
        assert!(s.contradicts(&System::from_atoms([a.negate()])));
        assert!(!s.implies(&System::from_atoms([Atom::Opaque {
            token: "other".into(),
            negated: false
        }])));
    }

    #[test]
    fn false_and_true_atoms() {
        let f = System::from_atoms([Atom::False]);
        assert_eq!(f.satisfiability(), False);
        assert!(f.implies(&falling()), "vacuous implication from FALSE");
        let t = System::from_atoms([Atom::True]);
        assert_eq!(t.satisfiability(), True);
        assert!(falling().implies(&t));
    }

    #[test]
    fn implication_is_not_symmetric_noise() {
        assert!(!falling().implies(&rising()));
        assert!(falling().contradicts(&rising()));
        // price ≤ prev vs price < prev: neither implies the other way.
        let le = System::from_atoms([Atom::var_var(X, CmpOp::Le, P, 0)]);
        assert!(falling().implies(&le));
        assert!(!le.implies(&falling()));
    }

    #[test]
    fn display_round() {
        let s = System::from_atoms([
            Atom::var_var(X, CmpOp::Lt, P, 0),
            Atom::var_const(X, CmpOp::Gt, 40),
        ]);
        assert_eq!(
            s.to_string(),
            "v0 < v1 v0 > 40".replace(" v0 > 40", " AND v0 > 40")
        );
        assert_eq!(System::new().to_string(), "TRUE");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Random linear atoms over 3 variables with small constants.
        fn atom() -> impl Strategy<Value = Atom> {
            let op = prop_oneof![
                Just(CmpOp::Eq),
                Just(CmpOp::Ne),
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge),
            ];
            prop_oneof![
                (0u32..3, op.clone(), -5i64..5).prop_map(|(x, op, c)| Atom::var_const(
                    Var(x),
                    op,
                    c
                )),
                (0u32..3, op, 0u32..3, -5i64..5).prop_map(|(x, op, y, c)| Atom::var_var(
                    Var(x),
                    op,
                    Var(y),
                    c
                )),
            ]
        }

        fn system() -> impl Strategy<Value = System> {
            proptest::collection::vec(atom(), 0..5).prop_map(System::from_atoms)
        }

        proptest! {
            /// If the solver proves UNSAT, no assignment may satisfy the system.
            #[test]
            fn unsat_is_sound(s in system(), vals in proptest::collection::vec(-6i64..6, 3)) {
                if s.satisfiability() == Truth::False {
                    let holds = s
                        .eval_assignment(|v| Rational::from(vals[v.0 as usize]))
                        .unwrap();
                    prop_assert!(!holds, "solver claimed unsat but {vals:?} satisfies {s}");
                }
            }

            /// If the solver proves A ⇒ B, every assignment satisfying A satisfies B.
            #[test]
            fn implication_is_sound(
                a in system(),
                b in system(),
                vals in proptest::collection::vec(-6i64..6, 3),
            ) {
                if a.implies(&b) {
                    let assign = |v: Var| Rational::from(vals[v.0 as usize]);
                    if a.eval_assignment(assign).unwrap() {
                        prop_assert!(
                            b.eval_assignment(assign).unwrap(),
                            "solver claimed {a} ⇒ {b} but {vals:?} is a countermodel"
                        );
                    }
                }
            }

            /// Contradiction proofs are sound.
            #[test]
            fn contradiction_is_sound(
                a in system(),
                b in system(),
                vals in proptest::collection::vec(-6i64..6, 3),
            ) {
                if a.contradicts(&b) {
                    let assign = |v: Var| Rational::from(vals[v.0 as usize]);
                    let both = a.eval_assignment(assign).unwrap()
                        && b.eval_assignment(assign).unwrap();
                    prop_assert!(!both);
                }
            }

            /// Implication is reflexive for satisfiable pure-fragment systems.
            #[test]
            fn implication_reflexive(a in system()) {
                prop_assert!(a.implies(&a.clone()));
            }
        }
    }
}
