//! Lower-triangular matrix containers for the optimizer's θ, φ and S.
//!
//! The paper indexes matrices 1-based (`θ_{jk}` with `j ≥ k ≥ 1`).  These
//! containers keep that convention: all public accessors take 1-based
//! `(row, col)` pairs, which keeps the code next to the paper's formulas
//! readable and avoids a forest of `- 1` adjustments at call sites.

use crate::Truth;
use std::fmt;

/// A dense lower-triangular matrix **including** the main diagonal.
///
/// Used for θ and φ, whose entries `θ_{jk}` are defined for `j ≥ k`.
/// Indices are 1-based, matching the paper.
#[derive(Clone, PartialEq, Eq)]
pub struct TriMatrix {
    n: usize,
    data: Vec<Truth>,
}

impl TriMatrix {
    /// A new `n × n` lower-triangular matrix filled with `fill`.
    pub fn filled(n: usize, fill: Truth) -> Self {
        TriMatrix {
            n,
            data: vec![fill; n * (n + 1) / 2],
        }
    }

    /// A new matrix with every entry `Unknown` — the sound default for the
    /// optimizer (an all-`U` θ/φ degenerates OPS to the naive search).
    pub fn unknown(n: usize) -> Self {
        Self::filled(n, Truth::Unknown)
    }

    /// Matrix dimension (the pattern length `m`).
    pub fn dim(&self) -> usize {
        self.n
    }

    #[inline]
    fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(
            1 <= col && col <= row && row <= self.n,
            "TriMatrix index ({row},{col}) out of range for dim {}",
            self.n
        );
        row * (row - 1) / 2 + (col - 1)
    }

    /// Entry `(row, col)` with `1 ≤ col ≤ row ≤ dim()` (1-based).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Truth {
        self.data[self.index(row, col)]
    }

    /// Set entry `(row, col)` (1-based).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Truth) {
        let i = self.index(row, col);
        self.data[i] = value;
    }

    /// Iterate over `(row, col, value)` for every defined entry.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, Truth)> + '_ {
        (1..=self.n).flat_map(move |row| (1..=row).map(move |col| (row, col, self.get(row, col))))
    }

    /// Build from rows given as slices (`rows[j-1]` must have length `j`).
    ///
    /// Handy for transcribing the paper's worked matrices in tests.
    pub fn from_rows(rows: &[&[Truth]]) -> Self {
        let n = rows.len();
        let mut m = TriMatrix::unknown(n);
        for (j, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                j + 1,
                "row {} must have {} entries",
                j + 1,
                j + 1
            );
            for (k, &v) in row.iter().enumerate() {
                m.set(j + 1, k + 1, v);
            }
        }
        m
    }
}

impl fmt::Debug for TriMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in 1..=self.n {
            for col in 1..=row {
                if col > 1 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self.get(row, col))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for TriMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A dense lower-triangular matrix **excluding** the main diagonal.
///
/// Used for the whole-pattern shift matrix `S`, whose entries `S_{jk}` are
/// defined only for `j > k`.  Indices are 1-based.
#[derive(Clone, PartialEq, Eq)]
pub struct StrictTriMatrix {
    n: usize,
    data: Vec<Truth>,
}

impl StrictTriMatrix {
    /// A new `n × n` strictly-lower-triangular matrix filled with `fill`.
    pub fn filled(n: usize, fill: Truth) -> Self {
        StrictTriMatrix {
            n,
            data: vec![fill; n * n.saturating_sub(1) / 2],
        }
    }

    /// A new matrix with every entry `Unknown`.
    pub fn unknown(n: usize) -> Self {
        Self::filled(n, Truth::Unknown)
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    #[inline]
    fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(
            1 <= col && col < row && row <= self.n,
            "StrictTriMatrix index ({row},{col}) out of range for dim {}",
            self.n
        );
        (row - 1) * (row - 2) / 2 + (col - 1)
    }

    /// Entry `(row, col)` with `1 ≤ col < row ≤ dim()` (1-based).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Truth {
        self.data[self.index(row, col)]
    }

    /// Set entry `(row, col)` (1-based).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Truth) {
        let i = self.index(row, col);
        self.data[i] = value;
    }

    /// Iterate over `(row, col, value)` for every defined entry.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, Truth)> + '_ {
        (2..=self.n).flat_map(move |row| (1..row).map(move |col| (row, col, self.get(row, col))))
    }
}

impl fmt::Debug for StrictTriMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in 2..=self.n {
            for col in 1..row {
                if col > 1 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self.get(row, col))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for StrictTriMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Truth::*;

    #[test]
    fn tri_matrix_get_set_round_trip() {
        let mut m = TriMatrix::unknown(4);
        assert_eq!(m.dim(), 4);
        for j in 1..=4 {
            for k in 1..=j {
                assert_eq!(m.get(j, k), Unknown);
            }
        }
        m.set(3, 2, True);
        m.set(4, 1, False);
        assert_eq!(m.get(3, 2), True);
        assert_eq!(m.get(4, 1), False);
        assert_eq!(m.get(3, 1), Unknown);
    }

    #[test]
    fn tri_matrix_entry_count() {
        let m = TriMatrix::unknown(5);
        assert_eq!(m.entries().count(), 15);
    }

    #[test]
    fn tri_matrix_from_rows_matches_paper_example5_theta() {
        // θ from Example 5 of the paper.
        let theta = TriMatrix::from_rows(&[
            &[True],
            &[True, True],
            &[False, False, True],
            &[False, False, Unknown, True],
        ]);
        assert_eq!(theta.get(2, 1), True);
        assert_eq!(theta.get(3, 1), False);
        assert_eq!(theta.get(4, 3), Unknown);
        assert_eq!(theta.get(4, 4), True);
    }

    #[test]
    #[should_panic]
    fn tri_matrix_from_rows_rejects_bad_row_length() {
        TriMatrix::from_rows(&[&[True], &[True]]);
    }

    #[test]
    fn strict_matrix_get_set() {
        let mut s = StrictTriMatrix::unknown(4);
        assert_eq!(s.entries().count(), 6);
        s.set(4, 1, False);
        s.set(4, 2, False);
        s.set(4, 3, Unknown);
        assert_eq!(s.get(4, 1), False);
        assert_eq!(s.get(4, 3), Unknown);
        assert_eq!(s.get(2, 1), Unknown);
    }

    #[test]
    fn strict_matrix_of_dim_one_is_empty() {
        let s = StrictTriMatrix::unknown(1);
        assert_eq!(s.entries().count(), 0);
        let s0 = StrictTriMatrix::unknown(0);
        assert_eq!(s0.entries().count(), 0);
    }

    #[test]
    fn display_renders_rows() {
        let m = TriMatrix::from_rows(&[&[True], &[Unknown, False]]);
        assert_eq!(m.to_string(), "1\nU 0\n");
        let mut s = StrictTriMatrix::unknown(3);
        s.set(3, 1, True);
        assert_eq!(s.to_string(), "U\n1 U\n");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn out_of_range_access_panics_in_debug() {
        let m = TriMatrix::unknown(3);
        let _ = m.get(2, 3);
    }
}
