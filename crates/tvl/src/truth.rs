//! The [`Truth`] type: Kleene strong three-valued logic.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Not};

/// A truth value in Kleene's strong three-valued logic.
///
/// The paper writes the three values as `1`, `0` and `U`.  `Unknown` is
/// ordered between `False` and `True` so that conjunction is `min` and
/// disjunction is `max`, exactly as in Kleene logic:
///
/// ```
/// use sqlts_tvl::Truth;
/// assert_eq!(Truth::Unknown & Truth::True, Truth::Unknown);
/// assert_eq!(Truth::Unknown & Truth::False, Truth::False);
/// assert_eq!(!Truth::Unknown, Truth::Unknown);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Truth {
    /// The relationship certainly does not hold (`0` in the paper).
    False,
    /// The relationship may or may not hold (`U` in the paper).
    #[default]
    Unknown,
    /// The relationship certainly holds (`1` in the paper).
    True,
}

impl Truth {
    /// All three values, useful for exhaustive tests.
    pub const ALL: [Truth; 3] = [Truth::False, Truth::Unknown, Truth::True];

    /// `true` iff this is [`Truth::True`].
    #[inline]
    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    /// `true` iff this is [`Truth::False`].
    #[inline]
    pub fn is_false(self) -> bool {
        self == Truth::False
    }

    /// `true` iff this is [`Truth::Unknown`].
    #[inline]
    pub fn is_unknown(self) -> bool {
        self == Truth::Unknown
    }

    /// `true` iff this is *not* [`Truth::False`] — the paper's frequent
    /// test `S_jk ≠ 0`.
    #[inline]
    pub fn is_possible(self) -> bool {
        self != Truth::False
    }

    /// Lift a Boolean into the logic.
    #[inline]
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Kleene conjunction over an iterator; `True` for an empty iterator.
    pub fn conjunction<I: IntoIterator<Item = Truth>>(iter: I) -> Truth {
        iter.into_iter().fold(Truth::True, |a, b| a & b)
    }

    /// Kleene disjunction over an iterator; `False` for an empty iterator.
    pub fn disjunction<I: IntoIterator<Item = Truth>>(iter: I) -> Truth {
        iter.into_iter().fold(Truth::False, |a, b| a | b)
    }

    /// Kleene implication `¬a ∨ b`.
    #[inline]
    pub fn implies(self, other: Truth) -> Truth {
        !self | other
    }

    /// The paper's compact rendering: `1`, `0` or `U`.
    pub fn symbol(self) -> char {
        match self {
            Truth::True => '1',
            Truth::False => '0',
            Truth::Unknown => 'U',
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Truth {
        Truth::from_bool(b)
    }
}

impl Not for Truth {
    type Output = Truth;
    #[inline]
    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

impl BitAnd for Truth {
    type Output = Truth;
    #[inline]
    fn bitand(self, rhs: Truth) -> Truth {
        self.min(rhs)
    }
}

impl BitOr for Truth {
    type Output = Truth;
    #[inline]
    fn bitor(self, rhs: Truth) -> Truth {
        self.max(rhs)
    }
}

impl BitAndAssign for Truth {
    fn bitand_assign(&mut self, rhs: Truth) {
        *self = *self & rhs;
    }
}

impl BitOrAssign for Truth {
    fn bitor_assign(&mut self, rhs: Truth) {
        *self = *self | rhs;
    }
}

impl fmt::Debug for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_involution() {
        for t in Truth::ALL {
            assert_eq!(!!t, t);
        }
    }

    #[test]
    fn conjunction_truth_table() {
        use Truth::*;
        assert_eq!(True & True, True);
        assert_eq!(True & Unknown, Unknown);
        assert_eq!(True & False, False);
        assert_eq!(Unknown & Unknown, Unknown);
        assert_eq!(Unknown & False, False);
        assert_eq!(False & False, False);
    }

    #[test]
    fn disjunction_truth_table() {
        use Truth::*;
        assert_eq!(True | False, True);
        assert_eq!(Unknown | False, Unknown);
        assert_eq!(Unknown | True, True);
        assert_eq!(False | False, False);
        assert_eq!(Unknown | Unknown, Unknown);
    }

    #[test]
    fn paper_rules() {
        // The paper (§4.2): ¬U = U, U ∧ 1 = U, U ∧ 0 = 0.
        use Truth::*;
        assert_eq!(!Unknown, Unknown);
        assert_eq!(Unknown & True, Unknown);
        assert_eq!(Unknown & False, False);
    }

    #[test]
    fn de_morgan() {
        for a in Truth::ALL {
            for b in Truth::ALL {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn associativity_and_commutativity() {
        for a in Truth::ALL {
            for b in Truth::ALL {
                assert_eq!(a & b, b & a);
                assert_eq!(a | b, b | a);
                for c in Truth::ALL {
                    assert_eq!((a & b) & c, a & (b & c));
                    assert_eq!((a | b) | c, a | (b | c));
                }
            }
        }
    }

    #[test]
    fn folds() {
        use Truth::*;
        assert_eq!(Truth::conjunction([]), True);
        assert_eq!(Truth::conjunction([True, Unknown]), Unknown);
        assert_eq!(Truth::conjunction([True, Unknown, False]), False);
        assert_eq!(Truth::disjunction([]), False);
        assert_eq!(Truth::disjunction([False, Unknown]), Unknown);
        assert_eq!(Truth::disjunction([False, True]), True);
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Truth::from_bool(true), Truth::True);
        assert_eq!(Truth::from(false), Truth::False);
        assert!(Truth::True.is_true());
        assert!(Truth::False.is_false());
        assert!(Truth::Unknown.is_unknown());
        assert!(Truth::Unknown.is_possible());
        assert!(!Truth::False.is_possible());
    }

    #[test]
    fn implication() {
        use Truth::*;
        assert_eq!(False.implies(False), True);
        assert_eq!(True.implies(False), False);
        assert_eq!(Unknown.implies(True), True);
        assert_eq!(Unknown.implies(False), Unknown);
    }

    #[test]
    fn display_symbols() {
        assert_eq!(Truth::True.to_string(), "1");
        assert_eq!(Truth::False.to_string(), "0");
        assert_eq!(Truth::Unknown.to_string(), "U");
        assert_eq!(format!("{:?}", Truth::Unknown), "U");
    }

    #[test]
    fn kleene_monotonicity() {
        // Conjunction/disjunction are monotone in the information order
        // and bounded: a∧b ≤ a ≤ a∨b (using the truth order F < U < T).
        for a in Truth::ALL {
            for b in Truth::ALL {
                assert!((a & b) <= a);
                assert!(a <= (a | b));
                // Idempotence and identity/annihilator laws.
                assert_eq!(a & a, a);
                assert_eq!(a | a, a);
                assert_eq!(a & Truth::True, a);
                assert_eq!(a | Truth::False, a);
                assert_eq!(a & Truth::False, Truth::False);
                assert_eq!(a | Truth::True, Truth::True);
            }
        }
    }

    #[test]
    fn absorption_laws() {
        for a in Truth::ALL {
            for b in Truth::ALL {
                assert_eq!(a & (a | b), a);
                assert_eq!(a | (a & b), a);
            }
        }
    }

    #[test]
    fn assign_ops() {
        let mut t = Truth::True;
        t &= Truth::Unknown;
        assert_eq!(t, Truth::Unknown);
        t |= Truth::True;
        assert_eq!(t, Truth::True);
    }
}
