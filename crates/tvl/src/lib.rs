#![warn(missing_docs)]

//! Kleene three-valued logic and triangular matrix containers.
//!
//! The OPS optimizer of Sadri & Zaniolo (PODS 2001) reasons about the
//! pairwise logical relationships between pattern predicates using a
//! three-valued logic: a relationship either certainly holds (`True`),
//! certainly does not hold (`False`), or is unknown (`Unknown`, written `U`
//! in the paper).  The compile-time artifacts θ, φ and S are
//! lower-triangular matrices over this logic.
//!
//! This crate provides:
//! * [`Truth`] — the three-valued truth type with Kleene conjunction,
//!   disjunction and negation;
//! * [`TriMatrix`] — a dense lower-triangular matrix (diagonal included)
//!   used for θ and φ;
//! * [`StrictTriMatrix`] — a strictly lower-triangular matrix (diagonal
//!   excluded) used for the whole-pattern shift matrix S.

mod trimatrix;
mod truth;

pub use trimatrix::{StrictTriMatrix, TriMatrix};
pub use truth::Truth;
