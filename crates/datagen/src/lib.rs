#![warn(missing_docs)]

//! Seeded workload generators for the SQL-TS/OPS evaluation.
//!
//! The paper's §7 experiments ran over 25 years of recorded DJIA daily
//! closes.  We do not ship that proprietary series; instead (per the
//! substitution policy in DESIGN.md §4) [`djia_series`] simulates it with
//! a geometric Brownian motion calibrated to the 1975–2000 era — the OPS
//! speedup depends only on the statistical shape of daily relative moves,
//! which the calibration preserves.
//!
//! All generators are deterministic given a seed, so every experiment in
//! EXPERIMENTS.md is exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sqlts_relation::{ColumnType, Date, Schema, Table, Value};

/// The schema every generated price table uses:
/// `(name VARCHAR, date DATE, price FLOAT)` — the paper's `quote` table.
pub fn quote_schema() -> Schema {
    Schema::new([
        ("name", ColumnType::Str),
        ("date", ColumnType::Date),
        ("price", ColumnType::Float),
    ])
    .expect("static schema is valid")
}

/// Build a quote table from a price series, one row per trading day
/// (weekends skipped), starting at `start`.
pub fn prices_to_table(name: &str, start: Date, prices: &[f64]) -> Table {
    let mut table = Table::new(quote_schema());
    let mut day = start;
    for &p in prices {
        while day.is_weekend() {
            day = day.plus_days(1);
        }
        table
            .push_row(vec![
                Value::from(name),
                Value::Date(day),
                Value::from((p * 100.0).round() / 100.0),
            ])
            .expect("generated rows match the schema");
        day = day.plus_days(1);
    }
    table
}

/// Parameters of the geometric-Brownian-motion simulator.
#[derive(Clone, Copy, Debug)]
pub struct GbmParams {
    /// Initial level.
    pub start: f64,
    /// Annualized drift (e.g. `0.098` ≈ the DJIA 1975–2000).
    pub drift: f64,
    /// Annualized volatility (e.g. `0.15`).
    pub volatility: f64,
    /// Trading days per year.
    pub days_per_year: f64,
}

impl Default for GbmParams {
    fn default() -> GbmParams {
        GbmParams {
            start: 632.0, // DJIA close, early January 1975
            drift: 0.098,
            volatility: 0.15,
            days_per_year: 252.0,
        }
    }
}

/// A geometric Brownian motion price path of `n` daily closes.
pub fn gbm_series(params: &GbmParams, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dt = 1.0 / params.days_per_year;
    let drift_term = (params.drift - 0.5 * params.volatility * params.volatility) * dt;
    let vol_term = params.volatility * dt.sqrt();
    let mut out = Vec::with_capacity(n);
    let mut level = params.start;
    for _ in 0..n {
        out.push(level);
        let z = standard_normal(&mut rng);
        level *= (drift_term + vol_term * z).exp();
    }
    out
}

/// Parameters of the regime-switching simulator used for the DJIA
/// substitute: a two-state (calm / turbulent) Markov chain modulating the
/// GBM volatility, giving the fat tails and volatility clustering of real
/// index returns — the features that produce the clustered ±2% moves the
/// relaxed-double-bottom query looks for.
#[derive(Clone, Copy, Debug)]
pub struct RegimeParams {
    /// Base GBM parameters (volatility field = calm-state volatility).
    pub base: GbmParams,
    /// Turbulent-state annualized volatility.
    pub turbulent_volatility: f64,
    /// Daily probability of switching calm → turbulent.
    pub p_calm_to_turbulent: f64,
    /// Daily probability of switching turbulent → calm.
    pub p_turbulent_to_calm: f64,
}

impl Default for RegimeParams {
    fn default() -> RegimeParams {
        RegimeParams {
            base: GbmParams {
                volatility: 0.10,
                ..GbmParams::default()
            },
            turbulent_volatility: 0.35,
            p_calm_to_turbulent: 0.02,
            p_turbulent_to_calm: 0.10,
        }
    }
}

/// A regime-switching GBM price path of `n` daily closes.
pub fn regime_series(params: &RegimeParams, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dt = 1.0 / params.base.days_per_year;
    let mut out = Vec::with_capacity(n);
    let mut level = params.base.start;
    let mut turbulent = false;
    for _ in 0..n {
        out.push(level);
        let vol = if turbulent {
            params.turbulent_volatility
        } else {
            params.base.volatility
        };
        let drift_term = (params.base.drift - 0.5 * vol * vol) * dt;
        let z = standard_normal(&mut rng);
        level *= (drift_term + vol * dt.sqrt() * z).exp();
        let flip = if turbulent {
            params.p_turbulent_to_calm
        } else {
            params.p_calm_to_turbulent
        };
        if rng.gen_bool(flip) {
            turbulent = !turbulent;
        }
    }
    out
}

/// The paper's §7 substrate: ~25 years (6300 trading days) of simulated
/// DJIA closes, starting 1975-01-02, seeded for reproducibility.
///
/// Uses the regime-switching model (see [`RegimeParams`]) so daily ±2%
/// moves occur at a realistic rate (~5%) *and* cluster, as on the
/// recorded index.
pub fn djia_series(seed: u64) -> Table {
    let prices = regime_series(&RegimeParams::default(), 6300, seed);
    prices_to_table("DJIA", Date::from_ymd(1975, 1, 2), &prices)
}

/// A uniform-step integer random walk within `[lo, hi]`, for property
/// tests and microbenchmarks (integer values keep f64 arithmetic exact).
pub fn integer_walk(n: usize, lo: i64, hi: i64, max_step: i64, seed: u64) -> Vec<f64> {
    assert!(lo < hi && max_step > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut level = (lo + hi) / 2;
    for _ in 0..n {
        out.push(level as f64);
        level += rng.gen_range(-max_step..=max_step);
        level = level.clamp(lo, hi);
    }
    out
}

/// A series of i.i.d. symbols drawn uniformly from `0..alphabet`, as
/// prices — the text-search workload for the KMP comparison (E6).
pub fn symbol_series(n: usize, alphabet: u8, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| f64::from(rng.gen_range(0..alphabet)))
        .collect()
}

/// Embed copies of `motif` into a base series at roughly every
/// `period` positions (the series length is unchanged; the motif
/// overwrites a window).  Used to control match density in sweeps.
pub fn embed_motif(base: &mut [f64], motif: &[f64], period: usize, seed: u64) {
    assert!(period >= motif.len().max(1));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pos = rng.gen_range(0..period);
    while pos + motif.len() <= base.len() {
        base[pos..pos + motif.len()].copy_from_slice(motif);
        pos += period + rng.gen_range(0..period / 2 + 1);
    }
}

/// A sawtooth series: long gentle declines (each step flat or −1)
/// followed by a sharp recovery, with run lengths jittered around
/// `period`.  Produces long runs of tuples satisfying
/// `price <= previous.price` — the workload on which backtracking
/// evaluation of overlapping star patterns blows up polynomially
/// (experiment E5's high-speedup regime).
pub fn sawtooth(n: usize, period: usize, seed: u64) -> Vec<f64> {
    assert!(period >= 4);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut level = 1000.0f64;
    while out.len() < n {
        let run = rng.gen_range(period / 2..=period + period / 2);
        let mut dropped = 0.0;
        for _ in 0..run {
            if out.len() >= n {
                break;
            }
            out.push(level);
            // Mostly −1, sometimes flat.
            let step = if rng.gen_bool(0.25) { 0.0 } else { 1.0 };
            level -= step;
            dropped += step;
        }
        // Sharp recovery past the previous peak.
        level += dropped + 5.0;
    }
    out
}

/// Box–Muller standard normal deviate.
fn standard_normal(rng: &mut SmallRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Fraction of daily moves exceeding ±2% — the statistic that drives the
/// relaxed-double-bottom workload's behaviour; exposed so experiments can
/// report the calibration.
pub fn big_move_fraction(prices: &[f64], threshold: f64) -> f64 {
    if prices.len() < 2 {
        return 0.0;
    }
    let big = prices
        .windows(2)
        .filter(|w| (w[1] / w[0] - 1.0).abs() > threshold)
        .count();
    big as f64 / (prices.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbm_is_deterministic_per_seed() {
        let p = GbmParams::default();
        let a = gbm_series(&p, 100, 42);
        let b = gbm_series(&p, 100, 42);
        let c = gbm_series(&p, 100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a[0], 632.0);
        assert!(a.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gbm_drifts_upward_over_25_years() {
        // With ~9.8%/yr drift over 25 years the expected terminal level is
        // ≈ 632·e^2.45 ≈ 7300; any healthy seed lands well above start.
        let p = GbmParams::default();
        let series = gbm_series(&p, 6300, 2001);
        let last = *series.last().unwrap();
        assert!(last > 1500.0, "terminal level {last} suspiciously low");
        assert!(last < 80_000.0, "terminal level {last} suspiciously high");
    }

    #[test]
    fn djia_table_shape() {
        let t = djia_series(2001);
        assert_eq!(t.len(), 6300);
        assert_eq!(t.schema().arity(), 3);
        // Dates ascend and skip weekends.
        let mut prev: Option<Date> = None;
        for row in t.rows().take(50) {
            let d = row[1].as_date().unwrap();
            assert!(!d.is_weekend());
            if let Some(p) = prev {
                assert!(d > p);
            }
            prev = Some(d);
        }
    }

    #[test]
    fn integer_walk_stays_in_bounds() {
        let w = integer_walk(1000, 0, 20, 3, 7);
        assert_eq!(w.len(), 1000);
        assert!(w.iter().all(|&x| (0.0..=20.0).contains(&x)));
        assert!(w.iter().all(|&x| x.fract() == 0.0));
    }

    #[test]
    fn symbol_series_alphabet() {
        let s = symbol_series(500, 3, 1);
        assert!(s.iter().all(|&x| x == 0.0 || x == 1.0 || x == 2.0));
        // All three symbols occur in a long enough series.
        for sym in [0.0, 1.0, 2.0] {
            assert!(s.contains(&sym));
        }
    }

    #[test]
    fn embed_motif_plants_copies() {
        let mut base = vec![0.0; 300];
        let motif = [9.0, 8.0, 9.5];
        embed_motif(&mut base, &motif, 40, 11);
        let hits = base.windows(3).filter(|w| w == &motif).count();
        assert!(hits >= 3, "expected several embedded motifs, got {hits}");
    }

    #[test]
    fn sawtooth_has_long_nonincreasing_runs() {
        let s = sawtooth(2000, 24, 3);
        assert_eq!(s.len(), 2000);
        assert!(s.iter().all(|&x| x > 0.0));
        // Longest run of price <= previous.price spans a whole decline.
        let mut longest = 0usize;
        let mut cur = 0usize;
        for w in s.windows(2) {
            if w[1] <= w[0] {
                cur += 1;
                longest = longest.max(cur);
            } else {
                cur = 0;
            }
        }
        assert!(longest >= 12, "longest non-increasing run {longest}");
    }

    #[test]
    fn big_move_fraction_sane() {
        assert_eq!(big_move_fraction(&[], 0.02), 0.0);
        assert_eq!(big_move_fraction(&[100.0, 100.5], 0.02), 0.0);
        assert_eq!(big_move_fraction(&[100.0, 110.0], 0.02), 1.0);
        let frac = big_move_fraction(&gbm_series(&GbmParams::default(), 6300, 2001), 0.02);
        // At 15% annual vol, daily sigma ≈ 0.94%, so ±2% moves are the
        // ~3.4% two-sided tail — accept a generous band.
        assert!(frac > 0.005 && frac < 0.15, "big-move fraction {frac}");
    }

    #[test]
    fn prices_to_table_rounds_to_cents() {
        let t = prices_to_table("X", Date::from_ymd(2000, 1, 3), &[1.23456]);
        assert_eq!(t.cell(0, 2), &Value::from(1.23));
    }
}
