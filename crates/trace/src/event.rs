//! Search events (the paper's Figure 5, machine-readable) and the bounded
//! ring-buffer recorder.

use std::collections::VecDeque;
use std::fmt;

/// Why a governed run was cut short.  A dependency-free mirror of the
/// engine's `TripReason`, so trace artifacts can name the cause without
/// this crate depending on the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TripCause {
    /// The wall-clock deadline passed.
    Deadline,
    /// The predicate-test budget was exhausted.
    StepBudget,
    /// The match/row budget was exhausted.
    MatchBudget,
    /// The cancellation token was cancelled.
    Cancelled,
    /// A streaming session's buffered-window high-watermark was exceeded
    /// and the in-flight attempt was force-failed (backpressure relief).
    StreamPressure,
}

impl TripCause {
    /// Stable machine-readable name (used in JSON and Prometheus output).
    pub fn as_str(&self) -> &'static str {
        match self {
            TripCause::Deadline => "deadline",
            TripCause::StepBudget => "step_budget",
            TripCause::MatchBudget => "match_budget",
            TripCause::Cancelled => "cancelled",
            TripCause::StreamPressure => "stream_pressure",
        }
    }

    /// Parse a [`TripCause::as_str`] name back (checkpoint decoding).
    pub fn parse(name: &str) -> Option<TripCause> {
        Some(match name {
            "deadline" => TripCause::Deadline,
            "step_budget" => TripCause::StepBudget,
            "match_budget" => TripCause::MatchBudget,
            "cancelled" => TripCause::Cancelled,
            "stream_pressure" => TripCause::StreamPressure,
            _ => return None,
        })
    }
}

impl fmt::Display for TripCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One step of a pattern search, in the vocabulary of the paper's
/// Figure 5.  Input positions `i` and pattern positions `j` are 1-based,
/// matching the paper's `t_i` / `p_j` notation.
///
/// `Copy` and four words wide: recording one is a couple of stores.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// Input position `i` satisfied pattern element `j`: the search
    /// advances (into, or further along, element `j`).
    Advance {
        /// 1-based input position tested.
        i: u32,
        /// 1-based pattern element tested.
        j: u32,
    },
    /// Input position `i` failed pattern element `j`.
    Fail {
        /// 1-based input position tested.
        i: u32,
        /// 1-based pattern element tested.
        j: u32,
    },
    /// After a genuine failure at element `j`, the attempt start moved
    /// forward past `dist` pattern elements — the paper's `shift(j)`.
    /// The naive engines always restart one tuple on (`dist = 1`).
    Shift {
        /// 1-based pattern element whose failure triggered the realign.
        j: u32,
        /// Elements shifted over (`shift(j)`), or 1 for naive restarts.
        dist: u32,
    },
    /// After the shift for a failure at `j`, matching resumes at element
    /// `k` — the paper's `next(j)`; `k = 0` means the failed tuple itself
    /// is excluded and the input cursor advances past it.
    Next {
        /// 1-based pattern element whose failure triggered the realign.
        j: u32,
        /// Element where matching resumes (`next(j)`; 0 = advance input).
        k: u32,
    },
    /// A match was retained, spanning input positions `start..=end`
    /// (1-based, inclusive).
    MatchEmitted {
        /// First input position of the match.
        start: u32,
        /// Last input position of the match.
        end: u32,
    },
    /// The resource governor cut this cluster's search short.
    GovernorTrip {
        /// Which limit tripped.
        cause: TripCause,
    },
    /// A streaming session accepted input record `i` (1-based feed count).
    /// Session-level: recorded into the session's stream log, never into a
    /// per-cluster recorder.
    Feed {
        /// 1-based input record number.
        i: u32,
    },
    /// A streaming session quarantined (or skipped) input record `i`.
    /// Session-level, like [`TraceEvent::Feed`].
    Quarantine {
        /// 1-based input record number.
        i: u32,
    },
    /// A streaming session took a checkpoint after `tuples` input records.
    /// Session-level, like [`TraceEvent::Feed`].
    Checkpoint {
        /// Input records covered by the checkpoint.
        tuples: u32,
    },
}

impl TraceEvent {
    /// Stable machine-readable event name.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Advance { .. } => "advance",
            TraceEvent::Fail { .. } => "fail",
            TraceEvent::Shift { .. } => "shift",
            TraceEvent::Next { .. } => "next",
            TraceEvent::MatchEmitted { .. } => "match",
            TraceEvent::GovernorTrip { .. } => "governor_trip",
            TraceEvent::Feed { .. } => "feed",
            TraceEvent::Quarantine { .. } => "quarantine",
            TraceEvent::Checkpoint { .. } => "checkpoint",
        }
    }

    /// Append this event as one JSON object (no trailing newline), e.g.
    /// `{"ev":"advance","i":3,"j":2}`.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            TraceEvent::Advance { i, j } | TraceEvent::Fail { i, j } => {
                let _ = write!(out, "{{\"ev\":\"{}\",\"i\":{i},\"j\":{j}}}", self.kind());
            }
            TraceEvent::Shift { j, dist } => {
                let _ = write!(out, "{{\"ev\":\"shift\",\"j\":{j},\"dist\":{dist}}}");
            }
            TraceEvent::Next { j, k } => {
                let _ = write!(out, "{{\"ev\":\"next\",\"j\":{j},\"k\":{k}}}");
            }
            TraceEvent::MatchEmitted { start, end } => {
                let _ = write!(out, "{{\"ev\":\"match\",\"start\":{start},\"end\":{end}}}");
            }
            TraceEvent::GovernorTrip { cause } => {
                let _ = write!(out, "{{\"ev\":\"governor_trip\",\"cause\":\"{cause}\"}}");
            }
            TraceEvent::Feed { i } | TraceEvent::Quarantine { i } => {
                let _ = write!(out, "{{\"ev\":\"{}\",\"i\":{i}}}", self.kind());
            }
            TraceEvent::Checkpoint { tuples } => {
                let _ = write!(out, "{{\"ev\":\"checkpoint\",\"tuples\":{tuples}}}");
            }
        }
    }
}

/// Anything that can receive a stream of search events.  The engine emits
/// through this trait so tests can plug in custom recorders; the standard
/// implementation is [`RingBuffer`].
pub trait TraceSink {
    /// Record one event.
    fn record(&mut self, event: TraceEvent);
}

/// A bounded flight recorder: keeps the most recent `capacity` events and
/// counts how many older ones were dropped.  Dropping is deterministic —
/// the retained window depends only on the event stream and the capacity,
/// never on timing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RingBuffer {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingBuffer {
    /// A recorder keeping at most `capacity` events (0 records nothing).
    pub fn new(capacity: usize) -> RingBuffer {
        RingBuffer {
            buf: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Drain the retained events into a `Vec`, oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }

    /// How many events were dropped (oldest-first) to stay within bounds.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rebuild a recorder from previously captured parts (checkpoint
    /// restore).  Events beyond `capacity` are dropped oldest-first, as if
    /// they had been recorded live.
    pub fn from_parts(capacity: usize, events: Vec<TraceEvent>, dropped: u64) -> RingBuffer {
        let mut rb = RingBuffer {
            buf: VecDeque::new(),
            capacity,
            dropped,
        };
        // Replay through `record` minus the drop accounting already
        // reflected in `dropped`.
        let spill = events.len().saturating_sub(capacity);
        rb.buf.extend(events.into_iter().skip(spill));
        rb
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingBuffer {
    fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shapes() {
        let cases = [
            (
                TraceEvent::Advance { i: 3, j: 2 },
                r#"{"ev":"advance","i":3,"j":2}"#,
            ),
            (
                TraceEvent::Fail { i: 4, j: 1 },
                r#"{"ev":"fail","i":4,"j":1}"#,
            ),
            (
                TraceEvent::Shift { j: 4, dist: 3 },
                r#"{"ev":"shift","j":4,"dist":3}"#,
            ),
            (
                TraceEvent::Next { j: 4, k: 1 },
                r#"{"ev":"next","j":4,"k":1}"#,
            ),
            (
                TraceEvent::MatchEmitted { start: 2, end: 5 },
                r#"{"ev":"match","start":2,"end":5}"#,
            ),
            (
                TraceEvent::GovernorTrip {
                    cause: TripCause::StepBudget,
                },
                r#"{"ev":"governor_trip","cause":"step_budget"}"#,
            ),
            (
                TraceEvent::GovernorTrip {
                    cause: TripCause::StreamPressure,
                },
                r#"{"ev":"governor_trip","cause":"stream_pressure"}"#,
            ),
            (TraceEvent::Feed { i: 7 }, r#"{"ev":"feed","i":7}"#),
            (
                TraceEvent::Quarantine { i: 8 },
                r#"{"ev":"quarantine","i":8}"#,
            ),
            (
                TraceEvent::Checkpoint { tuples: 100 },
                r#"{"ev":"checkpoint","tuples":100}"#,
            ),
        ];
        for (event, expect) in cases {
            let mut s = String::new();
            event.write_json(&mut s);
            assert_eq!(s, expect);
        }
    }

    #[test]
    fn ring_buffer_bounds_and_counts_drops() {
        let mut rb = RingBuffer::new(2);
        for i in 1..=5 {
            rb.record(TraceEvent::Advance { i, j: 1 });
        }
        assert_eq!(rb.len(), 2);
        assert_eq!(rb.dropped(), 3);
        let kept: Vec<_> = rb.events().copied().collect();
        assert_eq!(
            kept,
            vec![
                TraceEvent::Advance { i: 4, j: 1 },
                TraceEvent::Advance { i: 5, j: 1 }
            ]
        );
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut rb = RingBuffer::new(0);
        rb.record(TraceEvent::MatchEmitted { start: 1, end: 1 });
        assert!(rb.is_empty());
        assert_eq!(rb.dropped(), 1);
    }

    #[test]
    fn trip_cause_names_round_trip() {
        for cause in [
            TripCause::Deadline,
            TripCause::StepBudget,
            TripCause::MatchBudget,
            TripCause::Cancelled,
            TripCause::StreamPressure,
        ] {
            assert_eq!(TripCause::parse(cause.as_str()), Some(cause));
        }
        assert_eq!(TripCause::parse("nonsense"), None);
    }

    #[test]
    fn ring_buffer_from_parts_round_trips() {
        let mut rb = RingBuffer::new(3);
        for i in 1..=5 {
            rb.record(TraceEvent::Feed { i });
        }
        let rebuilt =
            RingBuffer::from_parts(rb.capacity(), rb.events().copied().collect(), rb.dropped());
        assert_eq!(rebuilt, rb);
    }
}
