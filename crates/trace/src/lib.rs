#![warn(missing_docs)]

//! `sqlts-trace` — execution tracing, metrics registry and
//! machine-readable profiling for the SQL-TS query pipeline.
//!
//! The paper evaluates OPS by a single number (predicate tests, §7) and
//! explains *why* OPS wins with the element-by-element search traces of
//! Figure 5.  This crate provides the runtime artifacts both of those
//! need, with **zero external dependencies** (no `tracing` crate; the
//! build environment has no registry access, so everything here is plain
//! std, in the spirit of the vendored shims under `vendor/`):
//!
//! * [`TraceEvent`] — Figure-5-style search events (`Advance`, `Fail`,
//!   `Shift`, `Next`, `MatchEmitted`, `GovernorTrip`) recorded through the
//!   [`TraceSink`] trait into a bounded [`RingBuffer`], so a query's
//!   search can be replayed and asserted in tests;
//! * [`ClusterRecorder`] / [`ClusterMetrics`] — the per-cluster metrics
//!   registry: predicate tests per pattern position, shift-distance and
//!   backtrack-depth [`BoundedHistogram`]s, matches retained, governor
//!   credit flushes and trip causes.  Each cluster records privately (no
//!   atomics in the hot path) and the recorders are merged **in cluster
//!   order**, exactly like the engines' `EvalCounter` totals, so every
//!   derived number and the merged event stream are identical for every
//!   thread count;
//! * [`ExecutionProfile`] — the merged, machine-readable report: totals,
//!   per-cluster breakdowns, per-phase wall clock ([`PhaseNanos`]), the
//!   folded optimizer report ([`OptimizerReport`]), with exporters for
//!   human text ([`ExecutionProfile::to_text`]), a JSON object
//!   ([`ExecutionProfile::to_json`]), JSON-lines event streams
//!   ([`ExecutionProfile::events_jsonl`]) and Prometheus text exposition
//!   ([`ExecutionProfile::to_prometheus`]).
//!
//! The crate is deliberately inert: it never spawns threads, and — with
//! one documented exception — never reads clocks; the query engine
//! decides when (and whether) to record.  When nothing is armed, none of
//! these types are even constructed.  The exception is [`SpanLog`], the
//! structured span log the server arms under `--log`: wall-time
//! attribution is its entire purpose, so it timestamps every record
//! against a monotonic epoch.  Spans observe and never steer — query
//! output is bit-identical whether a `SpanLog` exists or not.

mod event;
mod metrics;
mod profile;
mod setstats;
mod span;

pub use event::{RingBuffer, TraceEvent, TraceSink, TripCause};
pub use metrics::{BoundedHistogram, ClusterMetrics, ClusterRecorder, HIST_BUCKETS};
pub use profile::{
    json_escape, write_prometheus_histogram, ClusterProfile, ExecutionProfile, OptimizerReport,
    PhaseNanos,
};
pub use setstats::PatternSetStats;
pub use span::{Level, LogFormat, SpanLog};
