//! The merged, machine-readable execution report and its exporters.

use crate::metrics::{BoundedHistogram, ClusterMetrics};
use crate::TraceEvent;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal (appends to
/// `out`, without the surrounding quotes).
pub fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Wall-clock nanoseconds per pipeline phase.  Wall clock is inherently
/// non-deterministic, so these fields are excluded from every
/// bit-identity guarantee; everything else in the profile is exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// Lexing + parsing the query text.
    pub parse: u64,
    /// Binding/semantic analysis against the schema.
    pub bind: u64,
    /// Compile-time optimization (θ/φ matrices, shift/next tables).
    pub plan: u64,
    /// Clustering, search and projection.
    pub execute: u64,
}

impl PhaseNanos {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"parse_ns\":{},\"bind_ns\":{},\"plan_ns\":{},\"execute_ns\":{}}}",
            self.parse, self.bind, self.plan, self.execute
        );
    }
}

/// The compile-time optimizer report, folded into the profile so one
/// artifact carries both the plan and its runtime consequences (the
/// `explain` text view renders from this same data).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OptimizerReport {
    /// One rendered line per pattern element (`p1 *X: X.price > …`).
    pub pattern: Vec<String>,
    /// The 1-based `shift` array.
    pub shift: Vec<usize>,
    /// The 1-based `next` array.
    pub next: Vec<usize>,
    /// Mean shift value (the §8 direction heuristic's input).
    pub mean_shift: f64,
    /// Mean next value.
    pub mean_next: f64,
}

impl OptimizerReport {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"pattern\":[");
        for (i, p) in self.pattern.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(p, out);
            out.push('"');
        }
        let _ = write!(
            out,
            "],\"shift\":{:?},\"next\":{:?},\"mean_shift\":{},\"mean_next\":{}}}",
            self.shift, self.next, self.mean_shift, self.mean_next
        );
    }
}

/// One cluster's slice of the execution profile.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterProfile {
    /// 0-based index in `CLUSTER BY` order.
    pub index: usize,
    /// The cluster's key values rendered for diagnostics (empty when the
    /// query has no `CLUSTER BY`).
    pub key: String,
    /// Input tuples scanned.
    pub tuples: u64,
    /// The cluster's metrics registry.
    pub metrics: ClusterMetrics,
    /// The retained Figure-5 event stream (empty unless tracing was
    /// armed with a capacity).
    pub events: Vec<TraceEvent>,
    /// Events dropped by the bounded recorder.
    pub events_dropped: u64,
}

impl ClusterProfile {
    fn write_json(&self, out: &mut String) {
        let _ = write!(out, "{{\"index\":{},\"key\":\"", self.index);
        json_escape(&self.key, out);
        let _ = write!(
            out,
            "\",\"tuples\":{},\"predicate_tests\":{},\"tests_per_position\":{:?},\
             \"matches\":{},\"governor_flushes\":{}",
            self.tuples,
            self.metrics.total_tests(),
            self.metrics.tests_per_position,
            self.metrics.matches,
            self.metrics.governor_flushes,
        );
        write_hist_json(out, "shift_distances", &self.metrics.shifts);
        write_hist_json(out, "backtrack_depths", &self.metrics.backtracks);
        if let Some(trip) = self.metrics.trip {
            let _ = write!(out, ",\"trip\":\"{trip}\"");
        }
        let _ = write!(out, ",\"events_dropped\":{}", self.events_dropped);
        if !self.events.is_empty() {
            out.push_str(",\"events\":[");
            for (i, e) in self.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                e.write_json(out);
            }
            out.push(']');
        }
        out.push('}');
    }
}

fn write_hist_json(out: &mut String, name: &str, h: &BoundedHistogram) {
    let _ = write!(
        out,
        ",\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
        h.count(),
        h.sum(),
        h.max()
    );
    for (i, (bound, count)) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if bound == u64::MAX {
            let _ = write!(out, "[\"inf\",{count}]");
        } else {
            let _ = write!(out, "[{bound},{count}]");
        }
    }
    out.push_str("]}");
}

/// The merged execution profile of one query run: the machine-readable
/// superset of the legacy one-line `--stats` output.
///
/// Built by appending [`ClusterProfile`]s **in cluster order** (the same
/// deterministic merge the executor applies to `EvalCounter` totals), so
/// every field except the wall-clock [`PhaseNanos`] is bit-identical for
/// every thread count.
#[derive(Clone, Debug, Default)]
pub struct ExecutionProfile {
    /// Engine name (`naive`, `backtrack`, `ops`, `shift-only`).
    pub engine: String,
    /// Worker threads configured.
    pub threads: usize,
    /// Per-cluster breakdowns, in cluster order.
    pub clusters: Vec<ClusterProfile>,
    /// Merged metrics across clusters (cluster-order accumulation).
    pub totals: ClusterMetrics,
    /// Total input tuples scanned.
    pub tuples: u64,
    /// Per-phase wall clock (excluded from bit-identity guarantees).
    pub phases: PhaseNanos,
    /// The folded compile-time optimizer report.
    pub optimizer: Option<OptimizerReport>,
}

impl ExecutionProfile {
    /// A profile shell for `engine` running with `threads` workers.
    pub fn new(engine: impl Into<String>, threads: usize) -> ExecutionProfile {
        ExecutionProfile {
            engine: engine.into(),
            threads,
            ..ExecutionProfile::default()
        }
    }

    /// Append one cluster's profile, folding it into the totals.  Must be
    /// called in cluster order to reproduce the sequential merge.
    pub fn push_cluster(&mut self, cluster: ClusterProfile) {
        self.totals.merge(&cluster.metrics);
        self.tuples += cluster.tuples;
        self.clusters.push(cluster);
    }

    /// Total predicate tests — equals the legacy `--stats` number bit for
    /// bit.
    pub fn predicate_tests(&self) -> u64 {
        self.totals.total_tests()
    }

    /// Total matches retained.
    pub fn matches(&self) -> u64 {
        self.totals.matches
    }

    /// The merged event stream: every cluster's retained events, in
    /// cluster order, tagged with the cluster index.
    pub fn merged_events(&self) -> impl Iterator<Item = (usize, &TraceEvent)> {
        self.clusters
            .iter()
            .flat_map(|c| c.events.iter().map(move |e| (c.index, e)))
    }

    /// Human-readable per-cluster breakdown (the `--stats`/`--profile`
    /// text view).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: engine={} threads={} clusters={} tuples={}",
            self.engine,
            self.threads,
            self.clusters.len(),
            self.tuples
        );
        let _ = writeln!(
            out,
            "  total: {} predicate tests, {} matches",
            self.predicate_tests(),
            self.matches()
        );
        let _ = writeln!(
            out,
            "  tests per position: {:?}",
            self.totals.tests_per_position
        );
        if !self.totals.shifts.is_empty() {
            let _ = writeln!(
                out,
                "  shifts: {} taken, mean dist {:.2}, max {}",
                self.totals.shifts.count(),
                self.totals.shifts.mean(),
                self.totals.shifts.max()
            );
        }
        if !self.totals.backtracks.is_empty() {
            let _ = writeln!(
                out,
                "  backtracks: {} episodes, mean depth {:.2}, max {}",
                self.totals.backtracks.count(),
                self.totals.backtracks.mean(),
                self.totals.backtracks.max()
            );
        }
        if self.totals.governor_flushes > 0 {
            let _ = writeln!(out, "  governor flushes: {}", self.totals.governor_flushes);
        }
        if let Some(trip) = self.totals.trip {
            let _ = writeln!(out, "  governor trip: {trip}");
        }
        let p = &self.phases;
        if *p != PhaseNanos::default() {
            let _ = writeln!(
                out,
                "  phases: parse {:.3}ms, bind {:.3}ms, plan {:.3}ms, execute {:.3}ms",
                p.parse as f64 / 1e6,
                p.bind as f64 / 1e6,
                p.plan as f64 / 1e6,
                p.execute as f64 / 1e6
            );
        }
        for c in &self.clusters {
            let key = if c.key.is_empty() {
                String::new()
            } else {
                format!(" ({})", c.key)
            };
            let _ = writeln!(
                out,
                "  cluster {}{}: {} tuples, {} tests {:?}, {} matches{}",
                c.index,
                key,
                c.tuples,
                c.metrics.total_tests(),
                c.metrics.tests_per_position,
                c.metrics.matches,
                match c.metrics.trip {
                    Some(t) => format!(", tripped: {t}"),
                    None => String::new(),
                }
            );
        }
        out
    }

    /// The whole profile as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"engine\":\"");
        json_escape(&self.engine, &mut out);
        let _ = write!(
            &mut out,
            "\",\"threads\":{},\"clusters\":{},\"tuples\":{},\"predicate_tests\":{},\
             \"tests_per_position\":{:?},\"matches\":{},\"governor_flushes\":{}",
            self.threads,
            self.clusters.len(),
            self.tuples,
            self.predicate_tests(),
            self.totals.tests_per_position,
            self.matches(),
            self.totals.governor_flushes,
        );
        write_hist_json(&mut out, "shift_distances", &self.totals.shifts);
        write_hist_json(&mut out, "backtrack_depths", &self.totals.backtracks);
        if let Some(trip) = self.totals.trip {
            let _ = write!(&mut out, ",\"trip\":\"{trip}\"");
        }
        out.push_str(",\"phases\":");
        self.phases.write_json(&mut out);
        if let Some(opt) = &self.optimizer {
            out.push_str(",\"optimizer\":");
            opt.write_json(&mut out);
        }
        out.push_str(",\"cluster_profiles\":[");
        for (i, c) in self.clusters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// The merged event stream as JSON-lines (one event object per line,
    /// each tagged with its cluster index) — the `--trace FILE.jsonl`
    /// format.
    ///
    /// The stream always ends with a `{"dropped":N}` trailer summing the
    /// events the bounded recorders discarded.  Without it a truncated
    /// trace is indistinguishable from a complete one — silently wrong in
    /// exactly the runs (long, busy) where tracing matters most.  Readers
    /// treat the trailer as metadata, not an event; `sqlts trace-agg`
    /// surfaces it in the cost tree.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for (cluster, event) in self.merged_events() {
            let _ = write!(out, "{{\"cluster\":{cluster},");
            let mut body = String::new();
            event.write_json(&mut body);
            out.push_str(&body[1..]); // splice into the cluster-tagged object
            out.push('\n');
        }
        let dropped: u64 = self.clusters.iter().map(|c| c.events_dropped).sum();
        let _ = writeln!(out, "{{\"dropped\":{dropped}}}");
        out
    }

    /// Prometheus text exposition (metric names are stable API; see the
    /// README's Observability section).
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_labeled(&[])
    }

    /// Prometheus exposition with a base label set attached to every
    /// sample — the server mode uses `[("tenant", id)]` so one scrape can
    /// carry many subscriptions' profiles side by side.  With an empty
    /// slice the output is byte-identical to [`to_prometheus`]; label
    /// values are escaped per the text-format rules.
    ///
    /// [`to_prometheus`]: ExecutionProfile::to_prometheus
    pub fn to_prometheus_labeled(&self, labels: &[(&str, &str)]) -> String {
        let base = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect::<Vec<_>>()
            .join(",");
        let ls = |extra: &str| label_set(&base, extra);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# TYPE sqlts_predicate_tests_total counter\n\
             sqlts_predicate_tests_total{} {}",
            ls(""),
            self.predicate_tests()
        );
        out.push_str("# TYPE sqlts_predicate_tests_by_position counter\n");
        for (j, n) in self.totals.tests_per_position.iter().enumerate() {
            let _ = writeln!(
                out,
                "sqlts_predicate_tests_by_position{} {n}",
                ls(&format!("position=\"{}\"", j + 1))
            );
        }
        let _ = writeln!(
            out,
            "# TYPE sqlts_matches_total counter\nsqlts_matches_total{} {}",
            ls(""),
            self.matches()
        );
        let _ = writeln!(
            out,
            "# TYPE sqlts_tuples_total counter\nsqlts_tuples_total{} {}",
            ls(""),
            self.tuples
        );
        let _ = writeln!(
            out,
            "# TYPE sqlts_clusters_total counter\nsqlts_clusters_total{} {}",
            ls(""),
            self.clusters.len()
        );
        let _ = writeln!(
            out,
            "# TYPE sqlts_governor_flushes_total counter\nsqlts_governor_flushes_total{} {}",
            ls(""),
            self.totals.governor_flushes
        );
        write_prometheus_histogram(&mut out, "sqlts_shift_distance", &base, &self.totals.shifts);
        write_prometheus_histogram(
            &mut out,
            "sqlts_backtrack_depth",
            &base,
            &self.totals.backtracks,
        );
        for (phase, ns) in [
            ("parse", self.phases.parse),
            ("bind", self.phases.bind),
            ("plan", self.phases.plan),
            ("execute", self.phases.execute),
        ] {
            let _ = writeln!(
                out,
                "sqlts_phase_seconds{} {}",
                ls(&format!("phase=\"{phase}\"")),
                ns as f64 / 1e9
            );
        }
        if let Some(trip) = self.totals.trip {
            let _ = writeln!(
                out,
                "sqlts_governor_tripped{} 1",
                ls(&format!("cause=\"{trip}\""))
            );
        }
        out
    }
}

/// Join a pre-rendered base label list with a per-sample label into one
/// `{...}` block, or nothing when both are empty (keeps the unlabeled
/// exposition byte-identical to the historical format).
fn label_set(base: &str, extra: &str) -> String {
    match (base.is_empty(), extra.is_empty()) {
        (true, true) => String::new(),
        (false, true) => format!("{{{base}}}"),
        (true, false) => format!("{{{extra}}}"),
        (false, false) => format!("{{{base},{extra}}}"),
    }
}

/// Escape a label value per the Prometheus text format: backslash,
/// double-quote and newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Write one [`BoundedHistogram`] in Prometheus histogram exposition:
/// a `# TYPE` line, cumulative `_bucket{le=...}` samples ending at
/// `+Inf`, then `_sum` and `_count`.  `base` is a pre-rendered label
/// list (may be empty) attached to every sample.  Public so the server
/// exports its latency histograms in exactly the same shape as the
/// query-profile histograms here.
pub fn write_prometheus_histogram(out: &mut String, name: &str, base: &str, h: &BoundedHistogram) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (bound, count) in h.nonzero_buckets() {
        if bound == u64::MAX {
            break; // folded into the +Inf bucket below
        }
        cumulative += count;
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_set(base, &format!("le=\"{bound}\""))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        label_set(base, "le=\"+Inf\""),
        h.count()
    );
    let _ = writeln!(out, "{name}_sum{} {}", label_set(base, ""), h.sum());
    let _ = writeln!(out, "{name}_count{} {}", label_set(base, ""), h.count());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn sample_profile() -> ExecutionProfile {
        let mut p = ExecutionProfile::new("ops", 2);
        let mut m = ClusterMetrics::new(2);
        m.tests_per_position = vec![4, 2];
        m.matches = 1;
        m.shifts.record(1);
        p.push_cluster(ClusterProfile {
            index: 0,
            key: "IBM".into(),
            tuples: 5,
            metrics: m,
            events: vec![
                TraceEvent::Advance { i: 1, j: 1 },
                TraceEvent::MatchEmitted { start: 1, end: 2 },
            ],
            events_dropped: 0,
        });
        let mut m2 = ClusterMetrics::new(2);
        m2.tests_per_position = vec![3, 0];
        p.push_cluster(ClusterProfile {
            index: 1,
            key: "MSFT".into(),
            tuples: 3,
            metrics: m2,
            events: vec![TraceEvent::Fail { i: 1, j: 1 }],
            events_dropped: 0,
        });
        p
    }

    #[test]
    fn totals_accumulate_in_cluster_order() {
        let p = sample_profile();
        assert_eq!(p.predicate_tests(), 9);
        assert_eq!(p.totals.tests_per_position, vec![7, 2]);
        assert_eq!(p.matches(), 1);
        assert_eq!(p.tuples, 8);
    }

    #[test]
    fn json_has_required_keys_and_balances() {
        let p = sample_profile();
        let json = p.to_json();
        for key in [
            "\"engine\":\"ops\"",
            "\"predicate_tests\":9",
            "\"tests_per_position\":[7, 2]",
            "\"cluster_profiles\":[",
            "\"phases\":",
            "\"key\":\"IBM\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON: {json}");
    }

    #[test]
    fn jsonl_tags_events_with_cluster() {
        let p = sample_profile();
        let jsonl = p.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], r#"{"cluster":0,"ev":"advance","i":1,"j":1}"#);
        assert_eq!(lines[2], r#"{"cluster":1,"ev":"fail","i":1,"j":1}"#);
        assert_eq!(
            lines[3], r#"{"dropped":0}"#,
            "drop trailer is always present"
        );
    }

    #[test]
    fn jsonl_drop_trailer_sums_cluster_drops() {
        let mut p = sample_profile();
        p.clusters[0].events_dropped = 7;
        p.clusters[1].events_dropped = 5;
        let jsonl = p.events_jsonl();
        assert_eq!(jsonl.lines().last().unwrap(), r#"{"dropped":12}"#);
    }

    #[test]
    fn prometheus_label_escaping_edge_cases() {
        let p = sample_profile();
        // Backslash and newline in a tenant id must survive as the
        // two-character escapes the text exposition requires; a raw
        // newline would split the sample line and corrupt the scrape.
        let prom = p.to_prometheus_labeled(&[("tenant", "a\\b\nc\"d")]);
        assert!(
            prom.contains("sqlts_matches_total{tenant=\"a\\\\b\\nc\\\"d\"} 1"),
            "bad escaping in {prom}"
        );
        for line in prom.lines() {
            assert!(
                !line.is_empty(),
                "raw newline leaked into exposition: {prom}"
            );
        }
    }

    #[test]
    fn empty_profile_exports_are_well_formed() {
        let p = ExecutionProfile::new("ops", 1);
        let prom = p.to_prometheus();
        assert!(prom.contains("sqlts_predicate_tests_total 0"));
        assert!(prom.contains("sqlts_shift_distance_count 0"));
        // Histogram blocks still end with +Inf/sum/count even when empty.
        assert!(prom.contains("sqlts_shift_distance_bucket{le=\"+Inf\"} 0"));
        let json = p.to_json();
        assert_eq!(
            json.matches(['{', '[']).count(),
            json.matches(['}', ']']).count(),
            "unbalanced empty-profile JSON: {json}"
        );
        assert_eq!(p.events_jsonl(), "{\"dropped\":0}\n");
    }

    #[test]
    fn public_histogram_writer_matches_profile_output() {
        let p = sample_profile();
        let mut out = String::new();
        write_prometheus_histogram(&mut out, "sqlts_shift_distance", "", &p.totals.shifts);
        assert!(
            p.to_prometheus().contains(&out),
            "public writer diverged from the exposition:\n{out}"
        );
    }

    #[test]
    fn prometheus_exposition_names() {
        let p = sample_profile();
        let prom = p.to_prometheus();
        for needle in [
            "sqlts_predicate_tests_total 9",
            "sqlts_predicate_tests_by_position{position=\"1\"} 7",
            "sqlts_matches_total 1",
            "sqlts_shift_distance_sum 1",
            "sqlts_phase_seconds{phase=\"execute\"}",
        ] {
            assert!(prom.contains(needle), "missing {needle} in {prom}");
        }
    }

    #[test]
    fn prometheus_labeled_exposition() {
        let p = sample_profile();
        // An empty label set must stay byte-identical to the historical
        // unlabeled exposition — dashboards depend on those exact names.
        assert_eq!(p.to_prometheus_labeled(&[]), p.to_prometheus());
        let prom = p.to_prometheus_labeled(&[("tenant", "acme \"1\"")]);
        for needle in [
            "sqlts_predicate_tests_total{tenant=\"acme \\\"1\\\"\"} 9",
            "sqlts_predicate_tests_by_position{tenant=\"acme \\\"1\\\"\",position=\"1\"} 7",
            "sqlts_shift_distance_bucket{tenant=\"acme \\\"1\\\"\",le=\"+Inf\"} 1",
            "sqlts_shift_distance_count{tenant=\"acme \\\"1\\\"\"} 1",
            "sqlts_phase_seconds{tenant=\"acme \\\"1\\\"\",phase=\"execute\"}",
        ] {
            assert!(prom.contains(needle), "missing {needle} in {prom}");
        }
    }

    #[test]
    fn text_report_mentions_clusters() {
        let p = sample_profile();
        let text = p.to_text();
        assert!(text.contains("cluster 0 (IBM)"), "{text}");
        assert!(text.contains("9 predicate tests"), "{text}");
    }

    #[test]
    fn json_escape_controls() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
